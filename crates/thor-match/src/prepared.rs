//! The frozen output of THOR's Preparation phase, reusable across τ.
//!
//! [`PreparedMatcher`] holds everything `fine_tune` computes that does
//! *not* depend on which τ the serve path finally asks for: the
//! embedded seed clusters and the **untruncated** competitive-expansion
//! candidate list per concept, scored at the lowest τ the preparation
//! was run with. Deriving a [`SimilarityMatcher`] at any τ′ ≥ τ_base is
//! then a filter-and-truncate over the candidate lists — no vocabulary
//! scan, no re-embedding — and is bit-identical to a fresh
//! `fine_tune` at τ′ because both paths share [`PreparedMatcher::matcher_at`]:
//!
//! * the competitive best-concept choice per vocabulary word is
//!   τ-independent (the word goes to its most-similar concept; τ only
//!   gates whether it joins at all), and
//! * candidate lists are kept sorted by the total order
//!   `(sim desc, word asc)`, so filtering `sim ≥ τ′` then truncating to
//!   `max_expansion` equals sorting the τ′-filtered set from scratch.
//!
//! This is the τ-monotonicity the paper's precision/recall sweep relies
//! on: representative sets at higher τ are similarity-filtered subsets
//! of the sets at lower τ.

use std::sync::Arc;

use thor_embed::{slice_norm, Vector, VectorStore};
use thor_fault::{FrozenPool, FrozenSlice};
use thor_index::{PruneIndex, PruneStats, VectorIndex, VectorIndexBuilder};
use thor_obs::PipelineMetrics;
use thor_text::SeedSyntax;

use crate::cluster::ConceptCluster;
use crate::matcher::{MatcherConfig, SimilarityMatcher, TAU_RANGE};

/// Frozen fine-tuning state: seeds + untruncated τ-expansion
/// candidates, valid for every τ′ ≥ the base config's τ.
#[derive(Debug, Clone)]
pub struct PreparedMatcher {
    store: Arc<VectorStore>,
    names: Vec<String>,
    seeds: Vec<Vec<(String, Vector)>>,
    /// Per concept: candidate expansion words with their best-concept
    /// similarity, every entry ≥ `base.tau`, sorted by
    /// `(sim desc, word asc)`, **not** truncated to `max_expansion`.
    /// Owned after preparation; zero-copy artifact views after a
    /// mapped load.
    candidates: CandidateBacking,
    /// Refinement syntax (lowercase word sets + char arrays) of every
    /// embedded seed instance, computed once per preparation. τ only
    /// filters the *expansion*, so one table serves every derived
    /// matcher.
    seed_syntax: Arc<SeedSyntax>,
    base: MatcherConfig,
}

/// Candidate-list storage: per-concept `Vec`s after a fresh
/// preparation, or flat artifact views after a (possibly mapped)
/// engine load. The flat form is a CSR over all concepts' entries:
/// concept `ci`'s candidates are entries `starts[ci]..starts[ci + 1]`,
/// entry `k`'s word is `words.get_str(k)` and its similarity `sims[k]`.
#[derive(Debug, Clone)]
enum CandidateBacking {
    Owned(Vec<Vec<(String, f64)>>),
    Frozen {
        starts: FrozenSlice<u64>,
        words: FrozenPool,
        sims: FrozenSlice<f64>,
    },
}

/// The per-seed refinement syntax table for a preparation's embedded
/// seeds — every string a derived matcher can emit as
/// `matched_instance`.
fn build_seed_syntax(seeds: &[Vec<(String, Vector)>]) -> Arc<SeedSyntax> {
    Arc::new(SeedSyntax::build(
        seeds.iter().flatten().map(|(word, _)| word.as_str()),
    ))
}

impl PreparedMatcher {
    /// Run the Preparation phase once: embed each concept's seeds and
    /// collect the full competitive τ-expansion candidate lists at
    /// `base.tau`. The result serves every τ′ ∈ [`base.tau`, 1].
    pub fn prepare(
        concepts: &[(String, Vec<String>)],
        store: impl Into<Arc<VectorStore>>,
        base: MatcherConfig,
    ) -> Self {
        let store = store.into();
        let seeds: Vec<Vec<(String, Vector)>> = concepts
            .iter()
            .map(|(_, instances)| ConceptCluster::embed_seeds(instances, &store))
            .collect();

        // Competitive expansion: word → its best concept. Seed scoring
        // runs over a seeds-only index so each vocabulary word's norm is
        // computed once instead of once per (word, seed) pair.
        let mut candidates: Vec<Vec<(String, f64)>> = vec![Vec::new(); concepts.len()];
        if base.tau < 1.0 {
            let seed_index = {
                let mut builder = VectorIndexBuilder::new(store.dim());
                for ((name, _), cluster_seeds) in concepts.iter().zip(&seeds) {
                    builder.add_concept(
                        name,
                        cluster_seeds.len(),
                        cluster_seeds
                            .iter()
                            .map(|(w, v)| (w.as_str(), v.as_slice())),
                    );
                }
                builder.build()
            };
            // Bound-pruned competitive scan. `base.tau` is passed as the
            // argmax floor: words whose best similarity falls below τ are
            // discarded by the record filter anyway, so pruning their
            // concept scans cannot change which candidates are collected,
            // and above the floor `best_concept` is bit-identical to the
            // exhaustive fold.
            let prune = PruneIndex::build(&seed_index);
            store.for_each_row(|word, row| {
                let qn = slice_norm(row);
                let mut stats = PruneStats::default();
                if let Some((ci, sim)) =
                    prune.best_concept(&seed_index, row, qn, base.tau, &mut stats)
                {
                    if sim >= base.tau && !seeds[ci].iter().any(|(s, _)| s == word) {
                        candidates[ci].push((word.to_string(), sim));
                    }
                }
            });
            // Keep each list in the total order fine-tuning sorts by, so
            // deriving a matcher at τ′ is a pure filter + truncate.
            for list in &mut candidates {
                list.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            }
        }

        Self {
            seed_syntax: build_seed_syntax(&seeds),
            store,
            names: concepts.iter().map(|(name, _)| name.clone()).collect(),
            seeds,
            candidates: CandidateBacking::Owned(candidates),
            base,
        }
    }

    /// Reassemble a prepared matcher from persisted candidate lists
    /// (the expensive vocabulary scan) plus the concept seed instances,
    /// which are re-embedded from `store` — the same constructor path
    /// [`PreparedMatcher::prepare`] uses, so a loaded matcher is
    /// indistinguishable from a freshly prepared one.
    ///
    /// `candidates` must be one list per concept, in concept order,
    /// exactly as [`PreparedMatcher::candidates`] returned them.
    pub fn from_parts(
        concepts: &[(String, Vec<String>)],
        store: impl Into<Arc<VectorStore>>,
        base: MatcherConfig,
        candidates: Vec<Vec<(String, f64)>>,
    ) -> Self {
        assert_eq!(
            candidates.len(),
            concepts.len(),
            "one candidate list per concept"
        );
        let store = store.into();
        let seeds: Vec<Vec<(String, Vector)>> = concepts
            .iter()
            .map(|(_, instances)| ConceptCluster::embed_seeds(instances, &store))
            .collect();
        Self {
            seed_syntax: build_seed_syntax(&seeds),
            store,
            names: concepts.iter().map(|(name, _)| name.clone()).collect(),
            seeds,
            candidates: CandidateBacking::Owned(candidates),
            base,
        }
    }

    /// Reassemble a prepared matcher from flat CSR candidate arrays —
    /// the artifact load path, where the arrays may be zero-copy views
    /// into a mapped file. Layout invariants are validated up front so
    /// corrupt metadata yields a named error, never a panic.
    pub fn from_frozen_candidates(
        concepts: &[(String, Vec<String>)],
        store: impl Into<Arc<VectorStore>>,
        base: MatcherConfig,
        starts: FrozenSlice<u64>,
        words: FrozenPool,
        sims: FrozenSlice<f64>,
    ) -> Result<Self, String> {
        if starts.len() != concepts.len() + 1 {
            return Err(format!(
                "candidate CSR has {} offsets for {} concepts",
                starts.len(),
                concepts.len()
            ));
        }
        if starts.first() != Some(&0) || starts.windows(2).any(|w| w[0] > w[1]) {
            return Err("candidate CSR offsets are not monotone from zero".into());
        }
        let total = *starts.last().expect("non-empty") as usize;
        if total != sims.len() || total != words.len() {
            return Err(format!(
                "candidate CSR claims {total} entries but has {} sims and {} words",
                sims.len(),
                words.len()
            ));
        }
        let store = store.into();
        let seeds: Vec<Vec<(String, Vector)>> = concepts
            .iter()
            .map(|(_, instances)| ConceptCluster::embed_seeds(instances, &store))
            .collect();
        Ok(Self {
            seed_syntax: build_seed_syntax(&seeds),
            store,
            names: concepts.iter().map(|(name, _)| name.clone()).collect(),
            seeds,
            candidates: CandidateBacking::Frozen {
                starts,
                words,
                sims,
            },
            base,
        })
    }

    /// Concept `ci`'s expansion words at `tau`, best first, capped at
    /// `cap` — the filter-and-truncate step of τ-derivation, on either
    /// candidate backing.
    fn filtered_words(&self, ci: usize, tau: f64, cap: usize) -> Vec<String> {
        match &self.candidates {
            CandidateBacking::Owned(lists) => lists[ci]
                .iter()
                .filter(|(_, sim)| *sim >= tau)
                .take(cap)
                .map(|(w, _)| w.clone())
                .collect(),
            CandidateBacking::Frozen {
                starts,
                words,
                sims,
            } => {
                let lo = starts[ci] as usize;
                let hi = starts[ci + 1] as usize;
                let sims = &sims[lo..hi];
                let mut out = Vec::new();
                for (k, sim) in sims.iter().enumerate() {
                    if out.len() >= cap {
                        break;
                    }
                    if *sim >= tau {
                        // Invalid UTF-8 only appears in corrupt lazily
                        // verified artifacts; skip defensively.
                        if let Some(w) = words.get_str(lo + k) {
                            out.push(w.to_string());
                        }
                    }
                }
                out
            }
        }
    }

    /// Derive the fine-tuned matcher for `config`. This is the single
    /// construction path for every `SimilarityMatcher` in the workspace
    /// — `fine_tune` itself is `prepare(τ)` + `matcher_at(τ)` — which is
    /// what makes engine-reuse sweeps bit-identical to per-τ rebuilds.
    ///
    /// Panics if `config.tau` is outside [`TAU_RANGE`] or below the τ
    /// this preparation was run at (candidates below the base τ were
    /// never collected).
    pub fn matcher_at(
        &self,
        config: MatcherConfig,
        metrics: Option<PipelineMetrics>,
    ) -> SimilarityMatcher {
        let clusters = self.clusters_at(&config, metrics.as_ref());
        SimilarityMatcher::from_clusters(
            Arc::clone(&self.store),
            clusters,
            Arc::clone(&self.seed_syntax),
            config,
            metrics,
        )
    }

    /// The fine-tuned concept clusters `config` derives — the shared
    /// first half of [`PreparedMatcher::matcher_at`] and
    /// [`PreparedMatcher::matcher_with_index`], exposed so callers
    /// that already hold a frozen index (the artifact load and
    /// delta-apply paths) can derive clusters without freezing a
    /// second, redundant index.
    ///
    /// Panics if `config.tau` is outside [`TAU_RANGE`] or below the τ
    /// this preparation was run at.
    pub fn clusters_at(
        &self,
        config: &MatcherConfig,
        metrics: Option<&PipelineMetrics>,
    ) -> Vec<ConceptCluster> {
        assert!(
            TAU_RANGE.contains(&config.tau),
            "tau must be in [0, 1] (TAU_RANGE)"
        );
        assert!(
            config.tau >= self.base.tau,
            "matcher_at(tau={}) below prepared base tau {}: candidates were only collected at the base tau",
            config.tau,
            self.base.tau
        );
        self.names
            .iter()
            .zip(&self.seeds)
            .enumerate()
            .map(|(ci, (name, seeds))| {
                // At τ ≥ 1 fine-tuning skips the vocabulary scan
                // entirely, so the expansion is empty by definition.
                let words: Vec<String> = if config.tau >= 1.0 {
                    Vec::new()
                } else {
                    self.filtered_words(ci, config.tau, config.max_expansion)
                };
                if let Some(m) = metrics {
                    m.expansion_words.add(words.len() as u64);
                }
                ConceptCluster::from_parts(name, seeds.clone(), &words, &self.store)
            })
            .collect()
    }

    /// The frozen refinement syntax of the embedded seed instances.
    pub fn seed_syntax(&self) -> &Arc<SeedSyntax> {
        &self.seed_syntax
    }

    /// The config the preparation ran with; its `tau` is the lowest τ
    /// [`PreparedMatcher::matcher_at`] accepts.
    pub fn base(&self) -> &MatcherConfig {
        &self.base
    }

    /// The shared vector store.
    pub fn store(&self) -> &Arc<VectorStore> {
        &self.store
    }

    /// Concept names, in preparation order.
    pub fn concept_names(&self) -> &[String] {
        &self.names
    }

    /// Per-concept untruncated expansion candidates `(word, sim)`,
    /// sorted `(sim desc, word asc)` — the persistable part of the
    /// preparation (seeds are re-embedded from the store on load).
    /// Materialized from either backing.
    pub fn candidates(&self) -> Vec<Vec<(String, f64)>> {
        match &self.candidates {
            CandidateBacking::Owned(lists) => lists.clone(),
            CandidateBacking::Frozen {
                starts,
                words,
                sims,
            } => (0..self.names.len())
                .map(|ci| {
                    let lo = starts[ci] as usize;
                    let hi = starts[ci + 1] as usize;
                    (lo..hi)
                        .filter_map(|k| Some((words.get_str(k)?.to_string(), sims[k])))
                        .collect()
                })
                .collect(),
        }
    }

    /// Flatten the candidate lists into the CSR arrays the artifact
    /// stores: `(starts, sims, word bytes pool)` with one global entry
    /// index across concepts, matching
    /// [`PreparedMatcher::from_frozen_candidates`].
    pub fn candidate_parts(&self) -> (Vec<u64>, Vec<f64>, FrozenPool) {
        let lists = self.candidates();
        let mut starts = Vec::with_capacity(lists.len() + 1);
        starts.push(0u64);
        let mut sims = Vec::new();
        let mut items: Vec<&[u8]> = Vec::new();
        for list in &lists {
            for (w, sim) in list {
                sims.push(*sim);
                items.push(w.as_bytes());
            }
            starts.push(sims.len() as u64);
        }
        (starts, sims, FrozenPool::from_items(items))
    }

    /// [`PreparedMatcher::matcher_at`] with a prebuilt [`VectorIndex`]
    /// (deserialized from an artifact) instead of re-freezing one from
    /// the derived clusters. The index must describe exactly the
    /// clusters `config` derives — validated against the derived
    /// layout, since a mismatched index would silently mis-score.
    ///
    /// `prune` is the persisted pruning index when the artifact carried
    /// one; `None` rebuilds it from `index` (a pure deterministic
    /// function of the index, so both paths are indistinguishable).
    pub fn matcher_with_index(
        &self,
        config: MatcherConfig,
        metrics: Option<PipelineMetrics>,
        index: VectorIndex,
        prune: Option<Arc<PruneIndex>>,
    ) -> Result<SimilarityMatcher, String> {
        let clusters = self.clusters_at(&config, None);
        if index.dim() != self.store.dim() {
            return Err(format!(
                "persisted index dim {} != store dim {}",
                index.dim(),
                self.store.dim()
            ));
        }
        if index.concept_count() != clusters.len() {
            return Err(format!(
                "persisted index has {} concepts, derivation produced {}",
                index.concept_count(),
                clusters.len()
            ));
        }
        let mut expect_start = 0usize;
        for (ci, cluster) in clusters.iter().enumerate() {
            let (name, start, rows, seed_rows) = index
                .concept_layout()
                .nth(ci)
                .expect("concept_count checked");
            if name != cluster.concept
                || start != expect_start
                || rows != cluster.representative_count()
                || seed_rows != cluster.seed_count()
            {
                return Err(format!(
                    "persisted index concept `{name}` layout ({start}, {rows}, {seed_rows}) \
                     disagrees with the derived cluster `{}`",
                    cluster.concept
                ));
            }
            expect_start += rows;
        }
        Ok(SimilarityMatcher::from_clusters_prebuilt(
            Arc::clone(&self.store),
            clusters,
            index,
            prune,
            Arc::clone(&self.seed_syntax),
            config,
            metrics,
        ))
    }

    /// Incrementally evolve the preparation with additional seed
    /// instances and appended concepts — the engine delta-apply path.
    ///
    /// `concepts` is the **full** new concept list: every existing
    /// concept in its original position (with a superset of its
    /// instance list) plus any new concepts appended at the end.
    /// Returns the evolved preparation and the sorted set of *touched*
    /// concept indices — new concepts, concepts that gained seeds, and
    /// concepts whose candidate list changed (a word can migrate into
    /// or out of a list whose own seeds did not change) — i.e. the
    /// concepts whose frozen index blocks a caller cannot block-copy.
    ///
    /// The result is bit-identical to [`PreparedMatcher::prepare`] over
    /// `concepts`. This exploits the same τ-monotonic total order
    /// `(sim desc, word asc)` the per-τ derivation relies on: because
    /// seed vectors are only ever *added*, a vocabulary word's best
    /// concept can only be displaced by a newly added seed vector, so
    /// each word is re-scored against the small added-seed index
    /// instead of the full seed set. The exception is words that are
    /// string-equal to a seed instance of the new state ("shadowed"):
    /// the candidate record rule consults seed membership of the
    /// winning concept, so membership flips force a from-scratch
    /// re-score of those words against the full new seed index.
    pub fn with_additions(
        &self,
        concepts: &[(String, Vec<String>)],
    ) -> Result<(Self, Vec<usize>), String> {
        use std::collections::{BTreeSet, HashMap, HashSet};

        if concepts.len() < self.names.len() {
            return Err(format!(
                "additions shrink the concept list from {} to {}",
                self.names.len(),
                concepts.len()
            ));
        }
        for (ci, name) in self.names.iter().enumerate() {
            if concepts[ci].0 != *name {
                return Err(format!(
                    "concept {ci} renamed from `{name}` to `{}`; deltas may only add",
                    concepts[ci].0
                ));
            }
        }

        let seeds_new: Vec<Vec<(String, Vector)>> = concepts
            .iter()
            .map(|(_, instances)| ConceptCluster::embed_seeds(instances, &self.store))
            .collect();

        // Per concept, the embedded seed rows added relative to the
        // current preparation. Existing seed lists must be
        // order-preserving subsequences of the new ones (instance lists
        // come from sorted column values, so pure additions always are).
        let mut added: Vec<Vec<(String, Vector)>> = Vec::with_capacity(concepts.len());
        for (ci, new_seeds) in seeds_new.iter().enumerate() {
            let old_seeds: &[(String, Vector)] = if ci < self.seeds.len() {
                &self.seeds[ci]
            } else {
                &[]
            };
            let mut old = old_seeds.iter().peekable();
            let mut adds = Vec::new();
            for (word, vector) in new_seeds {
                match old.peek() {
                    Some((ow, _)) if ow == word => {
                        old.next();
                    }
                    _ => adds.push((word.clone(), vector.clone())),
                }
            }
            if old.next().is_some() {
                return Err(format!(
                    "concept `{}` lost seed instances; deltas may only add",
                    concepts[ci].0
                ));
            }
            added.push(adds);
        }

        let mut touched: BTreeSet<usize> = (self.names.len()..concepts.len()).collect();
        for (ci, adds) in added.iter().enumerate() {
            if !adds.is_empty() {
                touched.insert(ci);
            }
        }

        let mut lists = self.candidates();
        lists.resize(concepts.len(), Vec::new());

        let any_adds = added.iter().any(|a| !a.is_empty());
        if self.base.tau < 1.0 && any_adds {
            // Mini index over the newly added seed rows only — the only
            // vectors that can displace an incumbent best concept.
            // Concepts appear in ascending index order so challenger
            // tie-breaks mirror the fresh scan's first-wins rule.
            let mut mini_map: Vec<usize> = Vec::new();
            let mut mini = VectorIndexBuilder::new(self.store.dim());
            for (ci, adds) in added.iter().enumerate() {
                if adds.is_empty() {
                    continue;
                }
                mini.add_concept(
                    &concepts[ci].0,
                    adds.len(),
                    adds.iter().map(|(w, v)| (w.as_str(), v.as_slice())),
                );
                mini_map.push(ci);
            }
            let mini = mini.build();

            // Full seeds-only index over the new state, for shadowed
            // words.
            let mut full = VectorIndexBuilder::new(self.store.dim());
            for (ci, cluster_seeds) in seeds_new.iter().enumerate() {
                full.add_concept(
                    &concepts[ci].0,
                    cluster_seeds.len(),
                    cluster_seeds
                        .iter()
                        .map(|(w, v)| (w.as_str(), v.as_slice())),
                );
            }
            let full = full.build();

            let shadow: HashSet<&str> = seeds_new
                .iter()
                .flatten()
                .map(|(w, _)| w.as_str())
                .collect();
            let mut incumbent: HashMap<String, (usize, f64)> = HashMap::new();
            for (ci, list) in lists.iter().enumerate() {
                for (word, sim) in list {
                    incumbent.insert(word.clone(), (ci, *sim));
                }
            }

            let mut removals: Vec<(usize, String, f64)> = Vec::new();
            let mut insertions: Vec<(usize, String, f64)> = Vec::new();
            self.store.for_each_row(|word, row| {
                let orig = incumbent.get(word).copied();
                let qn = slice_norm(row);
                let cur = if shadow.contains(word) {
                    // Full re-score, mirroring `prepare` exactly.
                    let mut best: Option<(usize, f64)> = None;
                    for scores in full.scan(row, qn) {
                        let sim = scores.max.unwrap_or(f64::MIN);
                        if sim.is_finite() && best.is_none_or(|(_, b)| sim > b) {
                            best = Some((scores.concept, sim));
                        }
                    }
                    best.filter(|&(ci, sim)| {
                        sim >= self.base.tau && !seeds_new[ci].iter().any(|(s, _)| s == word)
                    })
                } else {
                    // Challenger pass. A challenger's score is its
                    // concept's max over *added* rows; it wins on a
                    // strictly higher score, or an equal score from an
                    // earlier concept (the fresh scan's first-wins
                    // tie-break). Because similarities never decrease
                    // under additions, the surviving value equals the
                    // winning concept's full new max.
                    let mut cur = orig;
                    for scores in mini.scan(row, qn) {
                        let sim = scores.max.unwrap_or(f64::MIN);
                        if !sim.is_finite() {
                            continue;
                        }
                        let ci = mini_map[scores.concept];
                        let replace = match cur {
                            None => true,
                            Some((bc, bs)) => sim > bs || (sim == bs && ci < bc),
                        };
                        if replace {
                            cur = Some((ci, sim));
                        }
                    }
                    // Non-shadowed words are never seeds of any concept
                    // in the new state, so only the τ gate applies.
                    cur.filter(|&(_, sim)| sim >= self.base.tau)
                };
                if cur != orig {
                    if let Some((ci, sim)) = orig {
                        removals.push((ci, word.to_string(), sim));
                    }
                    if let Some((ci, sim)) = cur {
                        insertions.push((ci, word.to_string(), sim));
                    }
                }
            });

            // Surgical merge into the sorted lists: binary search on
            // the `(sim desc, word asc)` total order.
            for (ci, word, sim) in removals {
                let list = &mut lists[ci];
                match list
                    .binary_search_by(|(w, s)| sim.total_cmp(s).then_with(|| w.as_str().cmp(&word)))
                {
                    Ok(i) => {
                        list.remove(i);
                    }
                    Err(_) => {
                        return Err(format!(
                            "candidate `{word}` missing from concept {ci} during delta merge"
                        ))
                    }
                }
                touched.insert(ci);
            }
            for (ci, word, sim) in insertions {
                let list = &mut lists[ci];
                match list
                    .binary_search_by(|(w, s)| sim.total_cmp(s).then_with(|| w.as_str().cmp(&word)))
                {
                    Ok(_) => {
                        return Err(format!(
                            "candidate `{word}` already present in concept {ci} during delta merge"
                        ))
                    }
                    Err(i) => list.insert(i, (word, sim)),
                }
                touched.insert(ci);
            }
        }

        let seed_syntax = Arc::new(
            self.seed_syntax
                .extend(added.iter().flatten().map(|(w, _)| w.as_str())),
        );
        Ok((
            Self {
                store: Arc::clone(&self.store),
                names: concepts.iter().map(|(name, _)| name.clone()).collect(),
                seeds: seeds_new,
                candidates: CandidateBacking::Owned(lists),
                seed_syntax,
                base: self.base.clone(),
            },
            touched.into_iter().collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_embed::SemanticSpaceBuilder;

    fn space() -> (VectorStore, Vec<(String, Vec<String>)>) {
        let store = SemanticSpaceBuilder::new(24, 11)
            .topic("anatomy")
            .correlated_topic("complication", "anatomy", 0.3)
            .words("anatomy", ["brain", "nerve", "lung", "spine", "ear"])
            .words("complication", ["cancer", "tumor", "stroke", "clot"])
            .generic_words(["walk", "green", "people"])
            .build()
            .into_store();
        let concepts = vec![
            (
                "Anatomy".to_string(),
                vec!["nervous system".to_string(), "ear".to_string()],
            ),
            (
                "Complication".to_string(),
                vec!["skin cancer".to_string(), "stroke".to_string()],
            ),
        ];
        (store, concepts)
    }

    #[test]
    fn derived_matcher_equals_fresh_fine_tune() {
        let (store, concepts) = space();
        let prep = PreparedMatcher::prepare(&concepts, store.clone(), MatcherConfig::with_tau(0.5));
        for tau in [0.5, 0.6, 0.75, 0.9, 1.0] {
            let derived = prep.matcher_at(MatcherConfig::with_tau(tau), None);
            let fresh = SimilarityMatcher::fine_tune(
                &concepts,
                store.clone(),
                MatcherConfig::with_tau(tau),
            );
            for (d, f) in derived.clusters().iter().zip(fresh.clusters()) {
                assert_eq!(
                    d.representative_words().collect::<Vec<_>>(),
                    f.representative_words().collect::<Vec<_>>(),
                    "tau {tau}"
                );
            }
            for phrase in ["brain tumor", "the ear", "green walk", "stroke risk"] {
                assert_eq!(
                    derived.match_phrase(phrase),
                    fresh.match_phrase(phrase),
                    "tau {tau}, phrase {phrase:?}"
                );
            }
        }
    }

    #[test]
    fn candidates_are_sorted_and_above_base_tau() {
        let (store, concepts) = space();
        let base = MatcherConfig::with_tau(0.4);
        let prep = PreparedMatcher::prepare(&concepts, store, base.clone());
        for list in prep.candidates() {
            assert!(list.iter().all(|(_, sim)| *sim >= base.tau));
            assert!(list
                .windows(2)
                .all(|w| w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)));
        }
    }

    #[test]
    fn from_parts_round_trips_the_preparation() {
        let (store, concepts) = space();
        let prep = PreparedMatcher::prepare(&concepts, store.clone(), MatcherConfig::with_tau(0.5));
        let rebuilt =
            PreparedMatcher::from_parts(&concepts, store, prep.base().clone(), prep.candidates());
        for tau in [0.5, 0.8] {
            let a = prep.matcher_at(MatcherConfig::with_tau(tau), None);
            let b = rebuilt.matcher_at(MatcherConfig::with_tau(tau), None);
            for phrase in ["brain tumor", "the ear"] {
                assert_eq!(a.match_phrase(phrase), b.match_phrase(phrase));
            }
        }
    }

    #[test]
    fn frozen_candidates_derive_identical_matchers() {
        let (store, concepts) = space();
        let store = Arc::new(store);
        let base = MatcherConfig::with_tau(0.5);
        let prep = PreparedMatcher::prepare(&concepts, Arc::clone(&store), base.clone());
        let (starts, sims, words) = prep.candidate_parts();
        let frozen = PreparedMatcher::from_frozen_candidates(
            &concepts,
            store,
            base,
            starts.into(),
            words,
            sims.into(),
        )
        .expect("valid CSR");
        assert_eq!(prep.candidates(), frozen.candidates());
        for tau in [0.5, 0.7, 1.0] {
            let a = prep.matcher_at(MatcherConfig::with_tau(tau), None);
            let b = frozen.matcher_at(MatcherConfig::with_tau(tau), None);
            for phrase in ["brain tumor", "the ear", "stroke risk"] {
                assert_eq!(a.match_phrase(phrase), b.match_phrase(phrase), "tau {tau}");
            }
        }
    }

    #[test]
    fn frozen_candidates_reject_bad_layout() {
        let (store, concepts) = space();
        let store = Arc::new(store);
        let base = MatcherConfig::with_tau(0.5);
        let prep = PreparedMatcher::prepare(&concepts, Arc::clone(&store), base.clone());
        let (starts, sims, words) = prep.candidate_parts();
        let attempt = |st: Vec<u64>, si: Vec<f64>| {
            PreparedMatcher::from_frozen_candidates(
                &concepts,
                Arc::clone(&store),
                base.clone(),
                st.into(),
                words.clone(),
                si.into(),
            )
        };
        assert!(attempt(starts[..starts.len() - 1].to_vec(), sims.clone()).is_err());
        let mut non_mono = starts.clone();
        non_mono[1] = u64::MAX;
        assert!(attempt(non_mono, sims.clone()).is_err());
        assert!(attempt(starts.clone(), sims[..sims.len() - 1].to_vec()).is_err());
    }

    #[test]
    fn matcher_with_index_round_trips_and_validates() {
        let (store, concepts) = space();
        let prep = PreparedMatcher::prepare(&concepts, store, MatcherConfig::with_tau(0.5));
        let cfg = MatcherConfig::with_tau(0.6);
        let derived = prep.matcher_at(cfg.clone(), None);
        let ix = derived.index();
        let rebuilt_ix = VectorIndex::from_parts(
            ix.dim(),
            ix.data().to_vec().into(),
            ix.norms().to_vec().into(),
            ix.rep_sums().to_vec().into(),
            (0..ix.row_count())
                .map(|r| ix.row_word(r).to_string())
                .collect(),
            ix.concept_layout()
                .map(|(n, s, r, k)| (n.to_string(), s, r, k))
                .collect(),
        )
        .expect("valid index parts");
        let via_prebuilt = prep
            .matcher_with_index(cfg.clone(), None, rebuilt_ix, None)
            .expect("layout matches");
        for phrase in ["brain tumor", "the ear"] {
            assert_eq!(
                derived.match_phrase(phrase),
                via_prebuilt.match_phrase(phrase)
            );
        }
        // An index derived at a different tau has a different layout.
        let other = prep.matcher_at(MatcherConfig::with_tau(1.0), None);
        let other_ix = other.index().clone();
        assert!(prep.matcher_with_index(cfg, None, other_ix, None).is_err());
    }

    #[test]
    fn with_additions_matches_fresh_prepare() {
        let (store, concepts) = space();
        let store = Arc::new(store);
        for base_tau in [0.0, 0.4, 0.6, 1.0] {
            let base = MatcherConfig::with_tau(base_tau);
            let prep = PreparedMatcher::prepare(&concepts, Arc::clone(&store), base.clone());
            // Merged state: "brain" (a vocabulary word, likely already
            // a candidate) becomes an Anatomy seed, Complication gains
            // "clot" mid-list, and a brand-new concept is appended.
            let mut merged = concepts.clone();
            merged[0].1.push("brain".to_string());
            merged[1].1.insert(0, "clot".to_string());
            merged.push(("Generic".to_string(), vec!["people".to_string()]));

            let (inc, touched) = prep.with_additions(&merged).expect("additive evolution");
            let fresh = PreparedMatcher::prepare(&merged, Arc::clone(&store), base.clone());
            assert_eq!(inc.candidates(), fresh.candidates(), "base tau {base_tau}");
            assert_eq!(inc.concept_names(), fresh.concept_names());
            assert_eq!(
                inc.seed_syntax().instances(),
                fresh.seed_syntax().instances()
            );
            assert!(touched.contains(&2), "new concepts are always touched");
            assert!(touched.windows(2).all(|w| w[0] < w[1]), "touched is sorted");

            for tau in [base_tau, 0.8_f64.max(base_tau), 1.0] {
                let a = inc.matcher_at(MatcherConfig::with_tau(tau), None);
                let b = fresh.matcher_at(MatcherConfig::with_tau(tau), None);
                for phrase in ["brain tumor", "the ear", "green walk", "stroke risk"] {
                    assert_eq!(
                        a.match_phrase(phrase),
                        b.match_phrase(phrase),
                        "base {base_tau}, tau {tau}, phrase {phrase:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn with_additions_chain_equals_one_shot() {
        let (store, concepts) = space();
        let store = Arc::new(store);
        let base = MatcherConfig::with_tau(0.4);
        let prep = PreparedMatcher::prepare(&concepts, Arc::clone(&store), base.clone());

        let mut step1 = concepts.clone();
        step1[0].1.push("spine".to_string());
        let mut step2 = step1.clone();
        step2[1].1.push("tumor".to_string());
        step2.push(("Generic".to_string(), vec!["walk".to_string()]));

        let (after1, _) = prep.with_additions(&step1).unwrap();
        let (after2, _) = after1.with_additions(&step2).unwrap();
        let fresh = PreparedMatcher::prepare(&step2, Arc::clone(&store), base);
        assert_eq!(after2.candidates(), fresh.candidates());
        assert_eq!(
            after2.seed_syntax().instances(),
            fresh.seed_syntax().instances()
        );
    }

    #[test]
    fn with_additions_rejects_non_additive_changes() {
        let (store, concepts) = space();
        let store = Arc::new(store);
        let prep =
            PreparedMatcher::prepare(&concepts, Arc::clone(&store), MatcherConfig::with_tau(0.5));

        let mut shrunk = concepts.clone();
        shrunk.pop();
        assert!(prep.with_additions(&shrunk).unwrap_err().contains("shrink"));

        let mut renamed = concepts.clone();
        renamed[0].0 = "Renamed".to_string();
        assert!(prep
            .with_additions(&renamed)
            .unwrap_err()
            .contains("renamed"));

        let mut lost = concepts.clone();
        lost[1].1.remove(0);
        assert!(prep
            .with_additions(&lost)
            .unwrap_err()
            .contains("lost seed instances"));
    }

    #[test]
    #[should_panic(expected = "below prepared base tau")]
    fn matcher_below_base_tau_is_rejected() {
        let (store, concepts) = space();
        let prep = PreparedMatcher::prepare(&concepts, store, MatcherConfig::with_tau(0.7));
        let _ = prep.matcher_at(MatcherConfig::with_tau(0.5), None);
    }
}
