//! Per-concept clusters of representative vectors.

use thor_embed::{cosine, slice_cosine, Vector, VectorStore};
use thor_text::normalize_phrase;

/// Both similarity views of a cluster against one query, computed in a
/// single pass (the max over representatives plus the O(d) mean via the
/// cached representative sum — previously two full scans).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterScore {
    /// Highest similarity between the query and any representative.
    pub max: f64,
    /// Mean pairwise similarity between the query and the cluster.
    pub mean: f64,
}

/// The representative instances of one concept: seeds (known table
/// instances) plus τ-expanded vocabulary words, each with its embedding.
#[derive(Debug, Clone)]
pub struct ConceptCluster {
    /// Concept name (display form).
    pub concept: String,
    /// Seed instances (normalized) with their phrase embeddings. These
    /// are the table values `R.C`; `c_m` is always chosen among them.
    seeds: Vec<(String, Vector)>,
    /// Expanded representative words (normalized) with embeddings;
    /// includes a copy of the seed vectors so that "the collection of
    /// representative vectors … acts as a cluster".
    representatives: Vec<(String, Vector)>,
    /// Cached sum of representative vectors (all unit length), for O(d)
    /// mean-pairwise-similarity queries.
    rep_sum: Vector,
}

impl ConceptCluster {
    /// Embed a concept's known instances as seeds (instances with no
    /// in-vocabulary word are skipped).
    pub fn embed_seeds(instances: &[String], store: &VectorStore) -> Vec<(String, Vector)> {
        let mut seeds: Vec<(String, Vector)> = Vec::new();
        for instance in instances {
            let norm = normalize_phrase(instance);
            if norm.is_empty() {
                continue;
            }
            if let Some(mut v) = store.embed_phrase(&norm) {
                v.normalize();
                seeds.push((norm, v));
            }
        }
        seeds
    }

    /// Assemble a cluster from seeds plus expanded representative words
    /// (already selected by the matcher's cross-concept τ-expansion).
    pub fn from_parts(
        concept: &str,
        seeds: Vec<(String, Vector)>,
        expansion: &[String],
        store: &VectorStore,
    ) -> Self {
        let mut representatives = seeds.clone();
        for word in expansion {
            // Expansion words are exact store keys (they came from a
            // store scan), so look them up raw on either backing.
            if let Some(row) = store.row_raw(word) {
                let mut v = Vector(row.to_vec());
                v.normalize();
                representatives.push((word.clone(), v));
            }
        }
        let mut rep_sum = Vector::zeros(store.dim());
        for (_, v) in &representatives {
            rep_sum += v;
        }
        Self {
            concept: concept.to_string(),
            seeds,
            representatives,
            rep_sum,
        }
    }

    /// Fine-tune a cluster for `concept` from its known instances, in
    /// isolation (no cross-concept competition — used by unit tests and
    /// single-concept callers; [`crate::SimilarityMatcher::fine_tune`]
    /// uses the competitive variant).
    ///
    /// Every instance with at least one in-vocabulary word becomes a
    /// seed. Vocabulary words whose cosine similarity to any seed vector
    /// is ≥ `tau` are added as expanded representatives (capped at
    /// `max_expansion` per concept, best first).
    pub fn fine_tune(
        concept: &str,
        instances: &[String],
        store: &VectorStore,
        tau: f64,
        max_expansion: usize,
    ) -> Self {
        let seeds = Self::embed_seeds(instances, store);

        // τ-expansion: vocabulary words similar to any seed.
        let mut expanded: Vec<(String, f64)> = Vec::new();
        if tau < 1.0 {
            store.for_each_row(|word, row| {
                let best = seeds
                    .iter()
                    .map(|(_, s)| slice_cosine(row, s.as_slice()))
                    .fold(f64::MIN, f64::max);
                if best >= tau && !seeds.iter().any(|(s, _)| s == word) {
                    expanded.push((word.to_string(), best));
                }
            });
            expanded.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            expanded.truncate(max_expansion);
        }
        let expansion: Vec<String> = expanded.into_iter().map(|(w, _)| w).collect();
        Self::from_parts(concept, seeds, &expansion, store)
    }

    /// Number of seed instances.
    pub fn seed_count(&self) -> usize {
        self.seeds.len()
    }

    /// Number of representative vectors (seeds + expansion).
    pub fn representative_count(&self) -> usize {
        self.representatives.len()
    }

    /// Iterate representative words (normalized).
    pub fn representative_words(&self) -> impl Iterator<Item = &str> {
        self.representatives.iter().map(|(w, _)| w.as_str())
    }

    /// Iterate representative `(word, vector)` pairs in insertion order
    /// (the seeds come first), for structure-of-arrays export into a
    /// `thor_index::VectorIndex`.
    pub fn representative_vectors(&self) -> impl Iterator<Item = (&str, &Vector)> {
        self.representatives.iter().map(|(w, v)| (w.as_str(), v))
    }

    /// Max and mean similarity between `query` and the cluster in one
    /// pass over the representatives; `None` for an empty cluster.
    /// Equal to `(max_similarity, mean_similarity)` bit for bit.
    pub fn score(&self, query: &Vector) -> Option<ClusterScore> {
        if self.representatives.is_empty() {
            return None;
        }
        let max = self
            .representatives
            .iter()
            .map(|(_, v)| cosine(query, v))
            .fold(f64::MIN, f64::max);
        let qn = query.norm();
        let mean = if qn == 0.0 {
            0.0
        } else {
            query.dot(&self.rep_sum) / (qn * self.representatives.len() as f64)
        };
        Some(ClusterScore { max, mean })
    }

    /// Mean pairwise cosine similarity between `query` and the cluster's
    /// representative vectors; `None` for an empty cluster.
    pub fn mean_similarity(&self, query: &Vector) -> Option<f64> {
        if self.representatives.is_empty() {
            return None;
        }
        // All representatives are unit vectors, so
        // mean_i cos(q, r_i) = cos-like dot(q̂, Σr_i) / n.
        let qn = query.norm();
        if qn == 0.0 {
            return Some(0.0);
        }
        Some(query.dot(&self.rep_sum) / (qn * self.representatives.len() as f64))
    }

    /// Highest similarity between `query` and any representative vector.
    pub fn max_similarity(&self, query: &Vector) -> Option<f64> {
        self.representatives
            .iter()
            .map(|(_, v)| cosine(query, v))
            .fold(None, |acc, s| Some(acc.map_or(s, |a: f64| a.max(s))))
    }

    /// The seed instance most similar to `query`: `(instance, sim)`.
    pub fn best_seed(&self, query: &Vector) -> Option<(&str, f64)> {
        self.seeds
            .iter()
            .map(|(w, v)| (w.as_str(), cosine(query, v)))
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(a.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_embed::SemanticSpaceBuilder;

    fn store() -> VectorStore {
        SemanticSpaceBuilder::new(24, 3)
            .topic("anatomy")
            .topic("medicine")
            .words("anatomy", ["brain", "nerve", "lung", "spine", "ear"])
            .words("medicine", ["aspirin", "ibuprofen", "antibiotic"])
            .generic_words(["walk", "green", "chair"])
            .build()
            .into_store()
    }

    fn instances(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn seeds_from_known_instances() {
        let s = store();
        let c = ConceptCluster::fine_tune("Anatomy", &instances(&["brain", "nerve"]), &s, 1.0, 100);
        assert_eq!(c.seed_count(), 2);
        assert_eq!(c.representative_count(), 2, "tau=1.0 adds nothing");
    }

    #[test]
    fn oov_instances_skipped() {
        let s = store();
        let c = ConceptCluster::fine_tune("Anatomy", &instances(&["brain", "xyzzy"]), &s, 1.0, 100);
        assert_eq!(c.seed_count(), 1);
    }

    #[test]
    fn expansion_adds_same_topic_words() {
        let s = store();
        let c = ConceptCluster::fine_tune("Anatomy", &instances(&["brain", "nerve"]), &s, 0.5, 100);
        assert!(c.representative_count() > c.seed_count());
        let words: Vec<&str> = c.representative_words().collect();
        // Other anatomy words should be pulled in before medicine words.
        assert!(words.contains(&"lung") || words.contains(&"spine") || words.contains(&"ear"));
        assert!(!words.contains(&"aspirin"));
    }

    #[test]
    fn expansion_capped() {
        let s = store();
        let c = ConceptCluster::fine_tune("Anatomy", &instances(&["brain"]), &s, 0.0, 2);
        assert_eq!(c.representative_count(), 1 + 2);
    }

    #[test]
    fn mean_similarity_prefers_own_topic() {
        let s = store();
        let anatomy = ConceptCluster::fine_tune(
            "Anatomy",
            &instances(&["brain", "nerve", "lung"]),
            &s,
            0.6,
            50,
        );
        let medicine = ConceptCluster::fine_tune(
            "Medicine",
            &instances(&["aspirin", "ibuprofen"]),
            &s,
            0.6,
            50,
        );
        let q = s.embed_phrase("spine").unwrap();
        assert!(anatomy.mean_similarity(&q).unwrap() > medicine.mean_similarity(&q).unwrap());
    }

    #[test]
    fn best_seed_identity() {
        let s = store();
        let c = ConceptCluster::fine_tune("Anatomy", &instances(&["brain", "nerve"]), &s, 1.0, 100);
        let q = s.embed_phrase("brain").unwrap();
        let (seed, sim) = c.best_seed(&q).unwrap();
        assert_eq!(seed, "brain");
        assert!((sim - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_cluster_returns_none() {
        let s = store();
        let c = ConceptCluster::fine_tune("Ghost", &instances(&["xyzzy"]), &s, 0.9, 10);
        let q = s.embed_phrase("brain").unwrap();
        assert!(c.mean_similarity(&q).is_none());
        assert!(c.best_seed(&q).is_none());
        assert!(c.max_similarity(&q).is_none());
    }

    #[test]
    fn score_matches_separate_passes() {
        let s = store();
        let c = ConceptCluster::fine_tune("Anatomy", &instances(&["brain", "nerve"]), &s, 0.6, 50);
        let q = s.embed_phrase("spine ear").unwrap();
        let score = c.score(&q).unwrap();
        assert_eq!(score.max, c.max_similarity(&q).unwrap());
        assert_eq!(score.mean, c.mean_similarity(&q).unwrap());

        let ghost = ConceptCluster::fine_tune("Ghost", &instances(&["xyzzy"]), &s, 0.9, 10);
        assert!(ghost.score(&q).is_none());
    }

    #[test]
    fn mean_similarity_matches_naive_average() {
        let s = store();
        let c = ConceptCluster::fine_tune(
            "Anatomy",
            &instances(&["brain", "nerve", "ear"]),
            &s,
            0.7,
            50,
        );
        let q = s.embed_phrase("lung spine").unwrap();
        let fast = c.mean_similarity(&q).unwrap();
        let naive: f64 = c
            .representatives
            .iter()
            .map(|(_, v)| cosine(&q, v))
            .sum::<f64>()
            / c.representatives.len() as f64;
        // f32 storage + different accumulation orders ⇒ loose tolerance.
        assert!((fast - naive).abs() < 1e-5, "fast {fast} vs naive {naive}");
    }
}
