//! Property: the candidate-generation engine — structure-of-arrays
//! [`thor_match::VectorIndex`] scan plus [`thor_match::PhraseCache`] —
//! is observationally identical to the retained brute-force reference
//! (`match_phrase_reference`, a per-cluster rescan with no index and no
//! cache). Same candidate lists, same order, scores within 1e-9 (in
//! fact bit-identical: the index stores the very same `f32` bits and
//! accumulates in the same element order), across random semantic
//! spaces, every τ of the paper's sweep, and whether one thread or
//! four share a single matcher (one shared cache, concurrent lookups).

use proptest::prelude::*;

use thor_embed::SemanticSpaceBuilder;
use thor_match::{CandidateEntity, MatcherConfig, SimilarityMatcher};

fn space(seed: u64) -> thor_embed::VectorStore {
    SemanticSpaceBuilder::new(24, seed)
        .spread(0.5)
        .topic("alpha")
        .topic("beta")
        .correlated_topic("gamma", "beta", 0.3)
        .words("alpha", ["ape", "ant", "asp", "auk"])
        .words("beta", ["bee", "bat", "boa", "bug"])
        .words("gamma", ["gnu", "gar", "goa"])
        .generic_words(["elk", "owl"])
        .build()
        .into_store()
}

fn concepts() -> Vec<(String, Vec<String>)> {
    vec![
        (
            "Alpha".to_string(),
            vec!["ape".to_string(), "ant".to_string()],
        ),
        (
            "Beta".to_string(),
            vec!["bee".to_string(), "bat".to_string()],
        ),
        ("Gamma".to_string(), vec!["gnu".to_string()]),
    ]
}

fn matcher(tau: f64, seed: u64) -> SimilarityMatcher {
    SimilarityMatcher::fine_tune(&concepts(), space(seed), MatcherConfig::with_tau(tau))
}

/// Match every phrase `rounds` times over `threads` workers sharing the
/// one matcher (and therefore the one cache); the repeat guarantees the
/// comparison also covers cache-hit replays, not just first scans.
fn matched_concurrently(
    m: &SimilarityMatcher,
    phrases: &[String],
    threads: usize,
    rounds: usize,
) -> Vec<Vec<CandidateEntity>> {
    let mut out: Vec<Vec<Vec<CandidateEntity>>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for _ in 0..rounds {
                        for (i, phrase) in phrases.iter().enumerate() {
                            if i % threads == w {
                                mine.push((i, m.match_phrase(phrase)));
                            }
                        }
                    }
                    mine
                })
            })
            .collect();
        let mut results = vec![Vec::new(); phrases.len()];
        for worker in workers {
            for (i, candidates) in worker.join().expect("worker panicked") {
                results[i].push(candidates);
            }
        }
        results
    });
    // Every round of every phrase must agree with itself before we
    // compare against the reference at all.
    out.iter_mut()
        .map(|rounds| {
            let first = rounds.remove(0);
            for later in rounds {
                assert_eq!(&first, later, "cache made a repeat diverge");
            }
            first
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Index+cache candidates equal brute-force candidates: same list,
    /// same order, scores within 1e-9, for random spaces, every τ in
    /// the paper's sweep {0.5..1.0}, and 1 or 4 threads on one cache.
    #[test]
    fn engine_equals_brute_force(
        words in prop::collection::vec(
            prop::collection::vec("(ape|ant|asp|auk|bee|bat|boa|bug|gnu|gar|goa|elk|owl|zzz)", 1..5),
            1..6,
        ),
        seed in 0u64..25,
        tau10 in 5u32..=10,
        four_threads in (0u8..2).prop_map(|b| b == 1),
    ) {
        let m = matcher(tau10 as f64 / 10.0, seed);
        let phrases: Vec<String> = words.iter().map(|w| w.join(" ")).collect();
        let expected: Vec<Vec<CandidateEntity>> = phrases
            .iter()
            .map(|p| m.match_phrase_reference(p, |_| true))
            .collect();

        let threads = if four_threads { 4 } else { 1 };
        let got = matched_concurrently(&m, &phrases, threads, 2);

        for ((phrase, exp), act) in phrases.iter().zip(&expected).zip(&got) {
            prop_assert_eq!(
                exp.len(), act.len(),
                "candidate count diverged on `{}`", phrase
            );
            for (e, a) in exp.iter().zip(act) {
                prop_assert_eq!(&e.phrase, &a.phrase);
                prop_assert_eq!(&e.concept, &a.concept);
                prop_assert_eq!(&e.matched_instance, &a.matched_instance);
                prop_assert!((e.semantic_score - a.semantic_score).abs() <= 1e-9);
                prop_assert!((e.cluster_score - a.cluster_score).abs() <= 1e-9);
            }
            // The design guarantee is stronger than the 1e-9 contract:
            // the two paths are bit-identical.
            prop_assert_eq!(exp, act, "paths diverged on `{}`", phrase);
        }
    }

    /// A cache-disabled matcher (capacity 0) agrees with the default
    /// cached one on every phrase — caching is invisible to results.
    #[test]
    fn disabled_cache_is_invisible(
        words in prop::collection::vec("(ape|bee|gnu|elk|zzz)", 1..5),
        seed in 0u64..25,
        tau10 in 5u32..=10,
    ) {
        let tau = tau10 as f64 / 10.0;
        let cached = matcher(tau, seed);
        let uncached = SimilarityMatcher::fine_tune(
            &concepts(),
            space(seed),
            MatcherConfig {
                cache_capacity: 0,
                ..MatcherConfig::with_tau(tau)
            },
        );
        let phrase = words.join(" ");
        prop_assert_eq!(cached.match_phrase(&phrase), uncached.match_phrase(&phrase));
        prop_assert_eq!(uncached.cache_stats().hits + uncached.cache_stats().misses, 0);
    }
}
