//! Property: the prepare-once/derive-many split is **invisible**.
//! For every random semantic space and every τ_base ≤ τ pair,
//! `PreparedMatcher::prepare(τ_base).matcher_at(τ)` is observationally
//! identical to a fresh `SimilarityMatcher::fine_tune(τ)` — the same
//! representative words per concept, the same vector bits, and the same
//! candidate lists for every phrase. This is the τ-monotonicity
//! contract the engine's sweep serving rests on: candidates collected
//! at the lowest τ, kept sorted by `(sim desc, word asc)`, filter +
//! truncate to exactly what a per-τ vocabulary rescan would find.

use proptest::prelude::*;

use thor_embed::SemanticSpaceBuilder;
use thor_match::{MatcherConfig, PreparedMatcher, SimilarityMatcher};

fn space(seed: u64, spread: f32) -> thor_embed::VectorStore {
    SemanticSpaceBuilder::new(24, seed)
        .spread(spread)
        .topic("alpha")
        .topic("beta")
        .correlated_topic("gamma", "beta", 0.3)
        .words("alpha", ["ape", "ant", "asp", "auk", "axolotl"])
        .words("beta", ["bee", "bat", "boa", "bug", "bison"])
        .words("gamma", ["gnu", "gar", "goa"])
        .generic_words(["elk", "owl", "old growth"])
        .build()
        .into_store()
}

fn concepts() -> Vec<(String, Vec<String>)> {
    vec![
        (
            "Alpha".to_string(),
            vec!["ape".to_string(), "ant".to_string()],
        ),
        (
            "Beta".to_string(),
            vec!["bee".to_string(), "bat".to_string()],
        ),
        ("Gamma".to_string(), vec!["gnu".to_string()]),
    ]
}

/// Exact (bit-level) equality of two fine-tuned matchers, observed
/// through clusters and phrase matching.
fn assert_matchers_identical(derived: &SimilarityMatcher, fresh: &SimilarityMatcher, ctx: &str) {
    assert_eq!(derived.clusters().len(), fresh.clusters().len(), "{ctx}");
    for (d, f) in derived.clusters().iter().zip(fresh.clusters()) {
        assert_eq!(d.representative_count(), f.representative_count(), "{ctx}");
        for ((dw, dv), (fw, fv)) in d.representative_vectors().zip(f.representative_vectors()) {
            assert_eq!(dw, fw, "{ctx}: representative words");
            let d_bits: Vec<u32> = dv.as_slice().iter().map(|x| x.to_bits()).collect();
            let f_bits: Vec<u32> = fv.as_slice().iter().map(|x| x.to_bits()).collect();
            assert_eq!(d_bits, f_bits, "{ctx}: vector bits for {dw}");
        }
    }
    for phrase in [
        "ape",
        "bee and boa",
        "gnu",
        "elk",
        "old growth",
        "unknown words here",
        "bison gar",
    ] {
        assert_eq!(
            derived.match_phrase(phrase),
            fresh.match_phrase(phrase),
            "{ctx}: match_phrase({phrase:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// matcher_at(τ) off a τ_base preparation == fresh fine_tune(τ),
    /// for every τ_base ≤ τ over random spaces, spreads, and expansion
    /// caps (truncation must agree too, so small caps are included).
    #[test]
    fn derived_matcher_equals_fresh_fine_tune(
        seed in 0u64..200,
        spread in 0.3f32..0.8,
        lo in 0usize..=10,
        hi_off in 0usize..=10,
        cap_idx in 0usize..4,
    ) {
        let max_expansion = [1usize, 2, 5, 200][cap_idx];
        let tau_base = lo as f64 / 10.0;
        let tau = ((lo + hi_off).min(10)) as f64 / 10.0;
        let store = std::sync::Arc::new(space(seed, spread));
        let base = MatcherConfig { tau: tau_base, max_expansion, ..MatcherConfig::default() };
        let at = MatcherConfig { tau, max_expansion, ..MatcherConfig::default() };

        let prep = PreparedMatcher::prepare(&concepts(), std::sync::Arc::clone(&store), base);
        let derived = prep.matcher_at(at.clone(), None);
        let fresh = SimilarityMatcher::fine_tune(&concepts(), store, at);
        assert_matchers_identical(
            &derived,
            &fresh,
            &format!("seed={seed} spread={spread:.2} base={tau_base} tau={tau} cap={max_expansion}"),
        );
    }

    /// One preparation at the sweep's lowest τ serves the whole paper
    /// grid {0.5 … 1.0} identically to six independent fine-tunes.
    #[test]
    fn one_preparation_serves_the_whole_sweep(seed in 0u64..100) {
        let store = std::sync::Arc::new(space(seed, 0.5));
        let prep = PreparedMatcher::prepare(
            &concepts(),
            std::sync::Arc::clone(&store),
            MatcherConfig::with_tau(0.5),
        );
        for t in 5..=10 {
            let tau = t as f64 / 10.0;
            let derived = prep.matcher_at(MatcherConfig::with_tau(tau), None);
            let fresh = SimilarityMatcher::fine_tune(
                &concepts(),
                std::sync::Arc::clone(&store),
                MatcherConfig::with_tau(tau),
            );
            assert_matchers_identical(&derived, &fresh, &format!("seed={seed} tau={tau}"));
        }
    }

    /// Persist-shaped round trip at the matcher layer: rebuilding via
    /// `from_parts` with the serialized candidate lists yields the same
    /// derivations as the original preparation (what `PreparedEngine`
    /// save/load does, minus the bytes).
    #[test]
    fn from_parts_round_trip_preserves_derivations(seed in 0u64..100, t in 5usize..=10) {
        let tau = t as f64 / 10.0;
        let store = std::sync::Arc::new(space(seed, 0.5));
        let prep = PreparedMatcher::prepare(
            &concepts(),
            std::sync::Arc::clone(&store),
            MatcherConfig::with_tau(0.5),
        );
        let rebuilt = PreparedMatcher::from_parts(
            &concepts(),
            std::sync::Arc::clone(&store),
            prep.base().clone(),
            prep.candidates().to_vec(),
        );
        let a = prep.matcher_at(MatcherConfig::with_tau(tau), None);
        let b = rebuilt.matcher_at(MatcherConfig::with_tau(tau), None);
        assert_matchers_identical(&a, &b, &format!("seed={seed} tau={tau}"));
    }
}

/// Below-base derivation is a contract violation and must panic loudly
/// (the engine layer handles it by re-preparing instead).
#[test]
#[should_panic(expected = "below prepared base tau")]
fn matcher_at_below_base_tau_panics() {
    let store = space(1, 0.5);
    let prep = PreparedMatcher::prepare(&concepts(), store, MatcherConfig::with_tau(0.7));
    let _ = prep.matcher_at(MatcherConfig::with_tau(0.5), None);
}
