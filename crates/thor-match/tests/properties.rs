//! Property tests for the semantic matcher: threshold monotonicity and
//! structural guarantees of the candidate set.

use proptest::prelude::*;

use thor_embed::{SemanticSpaceBuilder, VectorStore};
use thor_match::{MatcherConfig, SimilarityMatcher};

fn store(seed: u64) -> VectorStore {
    SemanticSpaceBuilder::new(16, seed)
        .spread(0.6)
        .topic("alpha")
        .topic("beta")
        .words("alpha", ["ape", "ant", "asp", "auk"])
        .words("beta", ["bee", "bat", "boa", "bug"])
        .generic_words(["gnu", "elk"])
        .build()
        .into_store()
}

fn matcher(tau: f64, seed: u64) -> SimilarityMatcher {
    let concepts = vec![
        (
            "Alpha".to_string(),
            vec!["ape".to_string(), "ant".to_string()],
        ),
        (
            "Beta".to_string(),
            vec!["bee".to_string(), "bat".to_string()],
        ),
    ];
    SimilarityMatcher::fine_tune(&concepts, store(seed), MatcherConfig::with_tau(tau))
}

proptest! {
    /// Lowering τ never removes candidates for any phrase.
    #[test]
    fn candidate_count_monotone_in_tau(
        words in prop::collection::vec("(ape|ant|asp|auk|bee|bat|boa|bug|gnu|elk|zzz)", 1..4),
        seed in 0u64..20,
    ) {
        let phrase = words.join(" ");
        let lo = matcher(0.4, seed).match_phrase(&phrase).len();
        let hi = matcher(0.9, seed).match_phrase(&phrase).len();
        prop_assert!(lo >= hi, "phrase `{phrase}`: lo {lo} < hi {hi}");
    }

    /// Every candidate's phrase is a contiguous subphrase of the input,
    /// its concept is a schema concept, and scores are in range.
    #[test]
    fn candidates_structurally_valid(
        words in prop::collection::vec("(ape|bee|gnu|zzz)", 1..5),
        seed in 0u64..20,
        tau10 in 4u32..10,
    ) {
        let phrase = words.join(" ");
        let m = matcher(tau10 as f64 / 10.0, seed);
        for c in m.match_phrase(&phrase) {
            prop_assert!(
                phrase.contains(&c.phrase),
                "candidate `{}` not in `{phrase}`", c.phrase
            );
            prop_assert!(matches!(c.concept.as_str(), "Alpha" | "Beta"));
            prop_assert!((0.0..=1.0).contains(&c.semantic_score));
            prop_assert!(!c.matched_instance.is_empty());
        }
    }

    /// The matcher assigns a single best-fitting concept per subphrase
    /// text: the same subphrase (even repeated at different positions)
    /// never carries two different concepts.
    #[test]
    fn one_concept_per_subphrase(
        words in prop::collection::vec("(ape|ant|bee|bat|gnu)", 1..4),
        seed in 0u64..20,
    ) {
        let phrase = words.join(" ");
        let m = matcher(0.4, seed);
        let mut by_phrase: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
        for c in &m.match_phrase(&phrase) {
            if let Some(prev) = by_phrase.insert(&c.phrase, &c.concept) {
                prop_assert_eq!(
                    prev, c.concept.as_str(),
                    "subphrase `{}` mapped to two concepts", c.phrase
                );
            }
        }
    }

    /// Matching is deterministic.
    #[test]
    fn deterministic(seed in 0u64..20) {
        let m = matcher(0.5, seed);
        let a = m.match_phrase("ape bat gnu");
        let b = m.match_phrase("ape bat gnu");
        prop_assert_eq!(a, b);
    }
}
