//! Part-of-speech taggers.
//!
//! Two implementations behind one trait:
//!
//! * [`RuleTagger`] — deterministic lexicon + morphology, no training.
//!   This is the pipeline default: the generated corpora are templated
//!   prose where the closed-class lexicon and suffix rules recover the
//!   tags the chunker needs.
//! * [`HmmTagger`] — a bigram hidden-Markov tagger trained from tagged
//!   sentences, add-k smoothed, decoded with Viterbi. The test suite
//!   verifies Viterbi against exhaustive enumeration on short inputs,
//!   and that supervision beats the rule tagger on a corpus with
//!   ambiguous words.

use std::collections::HashMap;

use crate::lexicon::Lexicon;
use crate::pos::Pos;

/// Assigns a POS tag to every token of a sentence.
pub trait Tagger {
    /// Tag the words of one sentence.
    fn tag(&self, words: &[&str]) -> Vec<Pos>;
}

/// Deterministic lexicon/morphology tagger with one context repair pass.
#[derive(Debug, Clone)]
pub struct RuleTagger {
    lexicon: Lexicon,
}

impl Default for RuleTagger {
    fn default() -> Self {
        Self::new(Lexicon::english())
    }
}

impl RuleTagger {
    /// Create a rule tagger over the given lexicon.
    pub fn new(lexicon: Lexicon) -> Self {
        Self { lexicon }
    }

    /// Access the underlying lexicon (e.g., to add domain words).
    pub fn lexicon_mut(&mut self) -> &mut Lexicon {
        &mut self.lexicon
    }
}

impl Tagger for RuleTagger {
    fn tag(&self, words: &[&str]) -> Vec<Pos> {
        let mut tags: Vec<Pos> = words
            .iter()
            .enumerate()
            .map(|(i, w)| self.lexicon.tag_of(w, i == 0))
            .collect();
        // Context repairs (Brill-style):
        for i in 0..tags.len() {
            // DET _ : a noun-guessed word directly after a determiner
            // sitting before another noun is more likely an ADJ...
            // but only if it's not the last nominal of the run; keep
            // simple: "that"/"as" ambiguity — after a DET, a CONJ-tagged
            // "that" is a DET complementizer; leave as-is.
            //
            // NOUN followed by sentence-initial guess: the first word was
            // conservatively tagged NOUN; if it is followed by a verb and
            // capitalized, it is acting as the subject name — PROPN
            // improves downstream subject matching but NOUN is fine too.
            //
            // Repair: word tagged NOUN that ends in "s" directly after a
            // nominal and followed by a DET is almost surely a verb
            // ("Tuberculosis damages the lungs").
            if tags[i] == Pos::Noun
                && i + 1 < tags.len()
                && matches!(tags[i + 1], Pos::Det | Pos::Pron)
                && words[i].to_lowercase().ends_with('s')
            {
                // Previous non-adverb tag must be nominal.
                let prev_nominal = (0..i)
                    .rev()
                    .map(|j| tags[j])
                    .find(|t| *t != Pos::Adv)
                    .is_some_and(Pos::is_nominal);
                if prev_nominal {
                    tags[i] = Pos::Verb;
                }
            }
        }
        tags
    }
}

/// A trained bigram HMM tagger.
#[derive(Debug, Clone)]
pub struct HmmTagger {
    /// `transition[prev][next]` = log P(next | prev); index `N` (last
    /// row) is the start state.
    transition: Vec<[f64; Pos::ALL.len()]>,
    /// word → per-tag log emission probabilities.
    emission: HashMap<String, [f64; Pos::ALL.len()]>,
    /// Fallback guesser for out-of-vocabulary words.
    lexicon: Lexicon,
}

impl HmmTagger {
    /// Train from tagged sentences with add-k smoothing (`k = 0.1`).
    pub fn train(corpus: &[Vec<(String, Pos)>]) -> Self {
        const N: usize = Pos::ALL.len();
        const K: f64 = 0.1;
        let mut trans_counts = vec![[0.0f64; N]; N + 1];
        let mut emit_counts: HashMap<String, [f64; N]> = HashMap::new();
        let mut tag_totals = [0.0f64; N];

        for sent in corpus {
            let mut prev = N; // start state
            for (word, pos) in sent {
                let t = pos.index();
                trans_counts[prev][t] += 1.0;
                let row = emit_counts.entry(word.to_lowercase()).or_insert([0.0; N]);
                row[t] += 1.0;
                tag_totals[t] += 1.0;
                prev = t;
            }
        }

        let transition = trans_counts
            .into_iter()
            .map(|row| {
                let total: f64 = row.iter().sum::<f64>() + K * N as f64;
                let mut out = [0.0f64; N];
                for (o, c) in out.iter_mut().zip(row) {
                    *o = ((c + K) / total).ln();
                }
                out
            })
            .collect();

        let emission = emit_counts
            .into_iter()
            .map(|(word, row)| {
                let mut out = [0.0f64; N];
                for t in 0..N {
                    out[t] = ((row[t] + K) / (tag_totals[t] + K * 1000.0)).ln();
                }
                (word, out)
            })
            .collect();

        Self {
            transition,
            emission,
            lexicon: Lexicon::english(),
        }
    }

    /// Log emission scores of `word` for every tag.
    fn emit(&self, word: &str, sentence_initial: bool) -> [f64; Pos::ALL.len()] {
        if let Some(row) = self.emission.get(&word.to_lowercase()) {
            return *row;
        }
        // OOV: concentrate mass on the morphological guess, leave a
        // small floor elsewhere.
        let mut row = [(0.01f64 / Pos::ALL.len() as f64).ln(); Pos::ALL.len()];
        let guess = self.lexicon.tag_of(word, sentence_initial);
        row[guess.index()] = 0.99f64.ln();
        row
    }

    /// Exhaustive maximum-probability decode; exponential, test-only.
    #[doc(hidden)]
    pub fn brute_force(&self, words: &[&str]) -> Vec<Pos> {
        const N: usize = Pos::ALL.len();
        assert!(words.len() <= 4, "brute force is exponential");
        let mut best: (f64, Vec<Pos>) = (f64::NEG_INFINITY, vec![]);
        let mut assignment = vec![0usize; words.len()];
        loop {
            let mut score = 0.0;
            let mut prev = N;
            for (i, w) in words.iter().enumerate() {
                let t = assignment[i];
                score += self.transition[prev][t] + self.emit(w, i == 0)[t];
                prev = t;
            }
            if score > best.0 {
                best = (score, assignment.iter().map(|&t| Pos::ALL[t]).collect());
            }
            // increment odometer
            let mut pos = 0;
            loop {
                if pos == assignment.len() {
                    return best.1;
                }
                assignment[pos] += 1;
                if assignment[pos] < N {
                    break;
                }
                assignment[pos] = 0;
                pos += 1;
            }
        }
    }
}

impl Tagger for HmmTagger {
    /// Viterbi decode.
    #[allow(clippy::needless_range_loop)] // trellis indices mirror the textbook algorithm
    fn tag(&self, words: &[&str]) -> Vec<Pos> {
        const N: usize = Pos::ALL.len();
        if words.is_empty() {
            return vec![];
        }
        let mut delta = vec![[f64::NEG_INFINITY; N]; words.len()];
        let mut back = vec![[0usize; N]; words.len()];

        let e0 = self.emit(words[0], true);
        for t in 0..N {
            delta[0][t] = self.transition[N][t] + e0[t];
        }
        for i in 1..words.len() {
            let e = self.emit(words[i], false);
            for t in 0..N {
                let (mut best_p, mut best_s) = (f64::NEG_INFINITY, 0usize);
                for p in 0..N {
                    let s = delta[i - 1][p] + self.transition[p][t];
                    if s > best_p {
                        best_p = s;
                        best_s = p;
                    }
                }
                delta[i][t] = best_p + e[t];
                back[i][t] = best_s;
            }
        }
        let mut last = (0..N)
            .max_by(|&a, &b| delta[words.len() - 1][a].total_cmp(&delta[words.len() - 1][b]))
            .unwrap();
        let mut tags = vec![Pos::X; words.len()];
        for i in (0..words.len()).rev() {
            tags[i] = Pos::ALL[last];
            if i > 0 {
                last = back[i][last];
            }
        }
        tags
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule() -> RuleTagger {
        RuleTagger::default()
    }

    #[test]
    fn rule_tagger_running_example() {
        // "Tuberculosis generally damages the lungs"
        let words = ["Tuberculosis", "generally", "damages", "the", "lungs"];
        let tags = rule().tag(&words);
        assert_eq!(tags[1], Pos::Adv);
        assert_eq!(tags[3], Pos::Det);
        assert_eq!(tags[4], Pos::Noun);
        assert!(tags[0].is_nominal());
    }

    #[test]
    fn rule_tagger_noun_phrase_with_modifiers() {
        let words = ["a", "slow-growing", "non-cancerous", "brain", "tumor"];
        let tags = rule().tag(&words);
        assert_eq!(tags, [Pos::Det, Pos::Adj, Pos::Adj, Pos::Noun, Pos::Noun]);
    }

    #[test]
    fn rule_tagger_verb_repair() {
        let words = ["Tuberculosis", "damages", "the", "lungs"];
        let tags = rule().tag(&words);
        assert_eq!(tags[1], Pos::Verb, "noun-Verb-det repair should fire");
    }

    #[test]
    fn rule_tagger_empty() {
        assert!(rule().tag(&[]).is_empty());
    }

    fn tiny_corpus() -> Vec<Vec<(String, Pos)>> {
        let s = |pairs: &[(&str, Pos)]| {
            pairs
                .iter()
                .map(|&(w, p)| (w.to_string(), p))
                .collect::<Vec<_>>()
        };
        vec![
            s(&[
                ("tuberculosis", Pos::Noun),
                ("damages", Pos::Verb),
                ("the", Pos::Det),
                ("lungs", Pos::Noun),
            ]),
            s(&[
                ("the", Pos::Det),
                ("tumor", Pos::Noun),
                ("damages", Pos::Verb),
                ("nerves", Pos::Noun),
            ]),
            s(&[
                ("damages", Pos::Noun),
                ("are", Pos::Verb),
                ("severe", Pos::Adj),
            ]),
            s(&[
                ("the", Pos::Det),
                ("severe", Pos::Adj),
                ("tumor", Pos::Noun),
                ("grows", Pos::Verb),
            ]),
        ]
    }

    #[test]
    fn hmm_learns_context_disambiguation() {
        let tagger = HmmTagger::train(&tiny_corpus());
        // "damages" after a noun is a verb; sentence-initial it is a noun.
        let t1 = tagger.tag(&["tuberculosis", "damages", "the", "lungs"]);
        assert_eq!(t1[1], Pos::Verb);
        let t2 = tagger.tag(&["damages", "are", "severe"]);
        assert_eq!(t2[0], Pos::Noun);
    }

    #[test]
    fn hmm_handles_oov_via_morphology() {
        let tagger = HmmTagger::train(&tiny_corpus());
        let t = tagger.tag(&["the", "cancerous", "growth"]);
        assert_eq!(t[0], Pos::Det);
        assert_eq!(t[1], Pos::Adj);
        assert_eq!(t[2], Pos::Noun);
    }

    #[test]
    fn viterbi_matches_brute_force() {
        let tagger = HmmTagger::train(&tiny_corpus());
        let sentences: Vec<Vec<&str>> = vec![
            vec!["the", "tumor"],
            vec!["damages", "are", "severe"],
            vec!["the", "severe", "tumor", "grows"],
            vec!["tumor", "damages", "nerves"],
        ];
        for words in sentences {
            assert_eq!(
                tagger.tag(&words),
                tagger.brute_force(&words),
                "decode mismatch on {words:?}"
            );
        }
    }

    #[test]
    fn hmm_empty_sentence() {
        let tagger = HmmTagger::train(&tiny_corpus());
        assert!(tagger.tag(&[]).is_empty());
    }
}
