//! Rule-based dependency parsing.
//!
//! Produces the head/label tree of the paper's Fig. 3 ("Tuberculosis
//! generally damages the lungs": *damages* is root, *Tuberculosis* its
//! `nsubj`, *lungs* its `obj` with *the* attached via `det`). THOR only
//! consumes the tree to enumerate noun phrases and subject/object roles,
//! so the parser is a deterministic head-finder over POS tags — the same
//! class of shallow parser classic IE systems used before statistical
//! parsing, and exact on the templated prose of the generated corpora.

use crate::pos::Pos;

/// Dependency relation labels (Universal Dependencies subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepLabel {
    /// Sentence root.
    Root,
    /// Nominal subject.
    Nsubj,
    /// Direct object.
    Obj,
    /// Determiner.
    Det,
    /// Adjectival modifier.
    Amod,
    /// Numeric modifier.
    Nummod,
    /// Noun compound modifier.
    Compound,
    /// Nominal modifier (incl. oblique/prepositional attachment).
    Nmod,
    /// Adposition marking a nominal.
    Case,
    /// Adverbial modifier.
    Advmod,
    /// Conjoined element.
    Conj,
    /// Coordinating conjunction.
    Cc,
    /// Punctuation.
    Punct,
    /// Unclassified dependency.
    Dep,
}

/// A dependency tree over one sentence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepTree {
    /// `heads[i]` is the index of token `i`'s head; `None` for the root.
    pub heads: Vec<Option<usize>>,
    /// `labels[i]` is the relation between token `i` and its head.
    pub labels: Vec<DepLabel>,
}

impl DepTree {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.heads.len()
    }

    /// True for the empty sentence.
    pub fn is_empty(&self) -> bool {
        self.heads.is_empty()
    }

    /// Index of the root token, if any.
    pub fn root(&self) -> Option<usize> {
        self.heads.iter().position(Option::is_none)
    }

    /// Direct dependents of token `head`.
    pub fn dependents(&self, head: usize) -> impl Iterator<Item = usize> + '_ {
        self.heads
            .iter()
            .enumerate()
            .filter_map(move |(i, h)| (*h == Some(head)).then_some(i))
    }

    /// True if following `heads` from every node reaches the root
    /// without cycles (structural well-formedness).
    pub fn is_forest_rooted(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return true;
        }
        if self.root().is_none() {
            return false;
        }
        for start in 0..n {
            let mut seen = 0usize;
            let mut cur = start;
            while let Some(h) = self.heads[cur] {
                cur = h;
                seen += 1;
                if seen > n {
                    return false; // cycle
                }
            }
        }
        true
    }
}

/// Find the next index `>= from` whose tag is nominal, skipping only NP
/// material (DET/ADJ/NUM/nominal runs); returns the *head* of that NP,
/// i.e. the last token of the nominal run.
fn np_head_right(tags: &[Pos], from: usize) -> Option<usize> {
    let mut i = from;
    // Skip pre-modifiers.
    while i < tags.len() && matches!(tags[i], Pos::Det | Pos::Adj | Pos::Num | Pos::Adv) {
        i += 1;
    }
    if i >= tags.len() || !tags[i].is_nominal() {
        return None;
    }
    // Advance through the nominal run; head is its last element.
    let mut head = i;
    while head + 1 < tags.len() && tags[head + 1].is_nominal() && tags[head + 1] != Pos::Pron {
        head += 1;
    }
    Some(head)
}

/// Parse one tagged sentence into a [`DepTree`].
///
/// The grammar, in priority order:
/// * the **root** is the first VERB, else the first nominal, else token 0;
/// * DET/ADJ/NUM attach rightward to the head of the next noun run
///   (`det`/`amod`/`nummod`);
/// * inside a noun run every noun attaches to the run's last noun
///   (`compound`);
/// * an ADP attaches to the following NP head (`case`); that NP head
///   attaches to the nearest nominal or verb on the left (`nmod`);
/// * the NP head left of the root verb is its `nsubj`; the first NP head
///   right of it is `obj`; later NP heads chain to the previous NP via
///   `conj` (coordination) when a CONJ/comma intervenes, else `nmod`;
/// * ADV attaches to the nearest verb (`advmod`), CONJ to the following
///   NP (`cc`), punctuation and the rest to the root.
pub fn parse_dependencies(words: &[&str], tags: &[Pos]) -> DepTree {
    assert_eq!(words.len(), tags.len(), "words/tags length mismatch");
    let n = words.len();
    let mut heads: Vec<Option<usize>> = vec![None; n];
    let mut labels: Vec<DepLabel> = vec![DepLabel::Dep; n];
    if n == 0 {
        return DepTree { heads, labels };
    }

    // ---- root selection ----
    // Verbless sentences root at the *head* of the first nominal run
    // (not its first token — a mid-compound root would split the NP).
    let root = tags
        .iter()
        .position(|&t| t == Pos::Verb)
        .unwrap_or_else(|| match tags.iter().position(|&t| t.is_nominal()) {
            Some(first) => {
                let mut head = first;
                while head + 1 < n && tags[head + 1].is_nominal() && tags[head + 1] != Pos::Pron {
                    head += 1;
                }
                head
            }
            None => 0,
        });
    labels[root] = DepLabel::Root;

    // Identify NP heads: last token of each maximal nominal run (PRON is
    // always its own NP).
    let mut np_heads: Vec<usize> = Vec::new();
    {
        let mut i = 0;
        while i < n {
            if tags[i] == Pos::Pron {
                np_heads.push(i);
                i += 1;
            } else if tags[i].is_nominal() {
                let mut head = i;
                while head + 1 < n && tags[head + 1].is_nominal() && tags[head + 1] != Pos::Pron {
                    head += 1;
                }
                np_heads.push(head);
                i = head + 1;
            } else {
                i += 1;
            }
        }
    }

    // ---- attach everything ----
    let mut prev_np_after_verb: Option<usize> = None;
    for i in 0..n {
        if i == root {
            continue;
        }
        match tags[i] {
            Pos::Det | Pos::Adj | Pos::Num => {
                if let Some(h) = np_head_right(tags, i + 1).filter(|&h| h != i) {
                    heads[i] = Some(h);
                    labels[i] = match tags[i] {
                        Pos::Det => DepLabel::Det,
                        Pos::Adj => DepLabel::Amod,
                        _ => DepLabel::Nummod,
                    };
                } else {
                    heads[i] = Some(root);
                    labels[i] = DepLabel::Dep;
                }
            }
            Pos::Noun | Pos::Propn | Pos::Pron => {
                if np_heads.contains(&i) {
                    // An NP head: find its governor.
                    let preceded_by_adp = {
                        // Look left past NP-internal material for an ADP.
                        let mut j = i;
                        let mut found = false;
                        while j > 0 {
                            j -= 1;
                            match tags[j] {
                                Pos::Det | Pos::Adj | Pos::Num | Pos::Noun | Pos::Propn => continue,
                                Pos::Adp => {
                                    found = true;
                                    break;
                                }
                                _ => break,
                            }
                        }
                        found
                    };
                    if preceded_by_adp {
                        // PP: attach to nearest nominal-or-verb to the left
                        // of the preposition.
                        let gov = (0..i)
                            .rev()
                            .find(|&j| {
                                tags[j] == Pos::Verb
                                    || (tags[j].is_nominal() && np_heads.contains(&j))
                            })
                            .filter(|&j| j != i)
                            .unwrap_or(root);
                        heads[i] = Some(if gov == i { root } else { gov });
                        labels[i] = DepLabel::Nmod;
                    } else if i < root {
                        heads[i] = Some(root);
                        labels[i] = DepLabel::Nsubj;
                    } else {
                        // After the root verb.
                        match prev_np_after_verb {
                            None => {
                                heads[i] = Some(root);
                                labels[i] = DepLabel::Obj;
                            }
                            Some(prev) => {
                                heads[i] = Some(prev);
                                // coordination if a CONJ or comma lies between
                                let coordinated =
                                    (prev + 1..i).any(|j| tags[j] == Pos::Conj || words[j] == ",");
                                labels[i] = if coordinated {
                                    DepLabel::Conj
                                } else {
                                    DepLabel::Nmod
                                };
                            }
                        }
                    }
                    if i > root {
                        prev_np_after_verb = Some(i);
                    }
                } else {
                    // Inside a noun run: compound to the run head.
                    let mut h = i;
                    while h + 1 < n && tags[h + 1].is_nominal() && tags[h + 1] != Pos::Pron {
                        h += 1;
                    }
                    heads[i] = Some(h);
                    labels[i] = DepLabel::Compound;
                }
            }
            Pos::Adp => {
                if let Some(h) = np_head_right(tags, i + 1).filter(|&h| h != i) {
                    heads[i] = Some(h);
                    labels[i] = DepLabel::Case;
                } else {
                    heads[i] = Some(root);
                    labels[i] = DepLabel::Dep;
                }
            }
            Pos::Adv => {
                let verb = (0..n)
                    .filter(|&j| tags[j] == Pos::Verb && j != i)
                    .min_by_key(|&j| i.abs_diff(j));
                heads[i] = Some(verb.unwrap_or(root));
                labels[i] = DepLabel::Advmod;
                if heads[i] == Some(i) {
                    heads[i] = Some(root);
                }
            }
            Pos::Conj => {
                if let Some(h) = np_head_right(tags, i + 1).filter(|&h| h != i) {
                    heads[i] = Some(h);
                    labels[i] = DepLabel::Cc;
                } else {
                    heads[i] = Some(root);
                    labels[i] = DepLabel::Cc;
                }
            }
            Pos::Punct => {
                heads[i] = Some(root);
                labels[i] = DepLabel::Punct;
            }
            Pos::Verb | Pos::Part | Pos::X => {
                heads[i] = Some(root);
                labels[i] = DepLabel::Dep;
            }
        }
        // Safety: no self-loops.
        if heads[i] == Some(i) {
            heads[i] = Some(root);
        }
    }

    let mut tree = DepTree { heads, labels };
    // Break any residual cycle conservatively by re-rooting offenders.
    if !tree.is_forest_rooted() {
        for i in 0..n {
            if i != root {
                let mut cur = i;
                let mut steps = 0;
                while let Some(h) = tree.heads[cur] {
                    cur = h;
                    steps += 1;
                    if steps > n {
                        tree.heads[i] = Some(root);
                        tree.labels[i] = DepLabel::Dep;
                        break;
                    }
                }
            }
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tagger::{RuleTagger, Tagger};
    use proptest::prelude::*;

    fn parse(sentence: &str) -> (Vec<String>, Vec<Pos>, DepTree) {
        let words: Vec<String> = thor_text::tokenize(sentence)
            .into_iter()
            .map(|t| t.text)
            .collect();
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let tags = RuleTagger::default().tag(&refs);
        let tree = parse_dependencies(&refs, &tags);
        (words, tags, tree)
    }

    #[test]
    fn fig3_running_example() {
        // "Tuberculosis generally damages the lungs"
        let (words, _tags, tree) = parse("Tuberculosis generally damages the lungs");
        let idx = |w: &str| words.iter().position(|x| x == w).unwrap();
        let damages = idx("damages");
        assert_eq!(tree.root(), Some(damages));
        assert_eq!(tree.heads[idx("Tuberculosis")], Some(damages));
        assert_eq!(tree.labels[idx("Tuberculosis")], DepLabel::Nsubj);
        assert_eq!(tree.heads[idx("lungs")], Some(damages));
        assert_eq!(tree.labels[idx("lungs")], DepLabel::Obj);
        assert_eq!(tree.heads[idx("the")], Some(idx("lungs")));
        assert_eq!(tree.labels[idx("the")], DepLabel::Det);
        assert_eq!(tree.labels[idx("generally")], DepLabel::Advmod);
    }

    #[test]
    fn compound_noun_run() {
        let (words, _t, tree) = parse("the brain tumor grows");
        let idx = |w: &str| words.iter().position(|x| x == w).unwrap();
        assert_eq!(tree.heads[idx("brain")], Some(idx("tumor")));
        assert_eq!(tree.labels[idx("brain")], DepLabel::Compound);
        assert_eq!(tree.labels[idx("tumor")], DepLabel::Nsubj);
    }

    #[test]
    fn prepositional_attachment() {
        let (words, _t, tree) = parse("it causes damage in the lungs");
        let idx = |w: &str| words.iter().position(|x| x == w).unwrap();
        assert_eq!(tree.labels[idx("in")], DepLabel::Case);
        assert_eq!(tree.heads[idx("in")], Some(idx("lungs")));
        assert_eq!(tree.labels[idx("lungs")], DepLabel::Nmod);
    }

    #[test]
    fn coordination_chain() {
        let (words, _t, tree) = parse("it causes headaches , dizziness and nausea");
        let idx = |w: &str| words.iter().position(|x| x == w).unwrap();
        assert_eq!(tree.labels[idx("headaches")], DepLabel::Obj);
        assert_eq!(tree.labels[idx("dizziness")], DepLabel::Conj);
        assert_eq!(tree.labels[idx("nausea")], DepLabel::Conj);
    }

    #[test]
    fn no_verb_sentence_roots_at_nominal() {
        let (words, _t, tree) = parse("severe hearing loss");
        let idx = |w: &str| words.iter().position(|x| x == w).unwrap();
        // Root is the first nominal ("hearing" or the run); tree is rooted.
        assert!(tree.is_forest_rooted());
        assert!(tree.root().is_some());
        let _ = idx; // silence if unused
    }

    #[test]
    fn empty_sentence() {
        let tree = parse_dependencies(&[], &[]);
        assert!(tree.is_empty());
        assert!(tree.is_forest_rooted());
    }

    proptest! {
        /// Any random tag sequence must yield a rooted, acyclic tree.
        #[test]
        fn always_rooted_and_acyclic(tags_idx in prop::collection::vec(0usize..13, 1..12)) {
            let tags: Vec<Pos> = tags_idx.iter().map(|&i| Pos::ALL[i]).collect();
            let words: Vec<String> = (0..tags.len()).map(|i| format!("w{i}")).collect();
            let refs: Vec<&str> = words.iter().map(String::as_str).collect();
            let tree = parse_dependencies(&refs, &tags);
            prop_assert!(tree.is_forest_rooted(), "tags {tags:?} produced a malformed tree");
            prop_assert_eq!(tree.heads.iter().filter(|h| h.is_none()).count(), 1);
        }
    }
}
