//! Metered sentence analysis: the tag → parse → chunk pipeline as one
//! call, instrumented with [`PipelineMetrics`].
//!
//! The extraction pipeline runs this per segmented sentence; routing it
//! through one helper keeps the `sentences` / `noun_phrases` counters
//! and the `stage.chunk` span attached to every caller (batch, parallel
//! workers, streaming sessions) without each re-implementing the
//! bookkeeping.

use thor_obs::PipelineMetrics;

use crate::chunker::{noun_phrases, NounPhrase};
use crate::dep::parse_dependencies;
use crate::tagger::Tagger;

/// Tag, dependency-parse, and chunk one tokenized sentence.
pub fn chunk_sentence(words: &[&str], tagger: &impl Tagger) -> Vec<NounPhrase> {
    let tags = tagger.tag(words);
    let tree = parse_dependencies(words, &tags);
    noun_phrases(words, &tags, &tree)
}

/// [`chunk_sentence`] with observability: records one `sentences`
/// count, the extracted `noun_phrases` count, and a `stage.chunk` span
/// covering tagging, parsing, and chunking together.
pub fn chunk_sentence_metered(
    words: &[&str],
    tagger: &impl Tagger,
    metrics: &PipelineMetrics,
) -> Vec<NounPhrase> {
    let _span = metrics.chunk.start();
    metrics.sentences.inc();
    let phrases = chunk_sentence(words, tagger);
    metrics.noun_phrases.add(phrases.len() as u64);
    phrases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tagger::RuleTagger;

    #[test]
    fn metered_matches_plain() {
        let words = ["the", "brain", "tumor", "causes", "severe", "deafness"];
        let tagger = RuleTagger::default();
        let metrics = PipelineMetrics::new();
        let plain = chunk_sentence(&words, &tagger);
        let metered = chunk_sentence_metered(&words, &tagger, &metrics);
        assert_eq!(plain, metered);
        assert!(!metered.is_empty());
        let snap = metrics.snapshot();
        assert_eq!(snap.count("sentences"), 1);
        assert_eq!(snap.count("noun_phrases"), metered.len() as u64);
    }

    #[test]
    fn empty_sentence_counts_zero_phrases() {
        let metrics = PipelineMetrics::new();
        let phrases = chunk_sentence_metered(&[], &RuleTagger::default(), &metrics);
        assert!(phrases.is_empty());
        assert_eq!(metrics.snapshot().count("sentences"), 1);
        assert_eq!(metrics.snapshot().count("noun_phrases"), 0);
    }
}
