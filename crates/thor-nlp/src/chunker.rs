//! Noun-phrase extraction over the dependency tree.
//!
//! Per the paper: "THOR uses the dependency parse tree to extract *noun
//! phrases*. A noun phrase is a subtree that has at its root a noun
//! (NOUN), pronoun (PRON), or proper noun (PROPN), and might also include
//! leading or trailing modifiers, such as adjectives (ADJ) and
//! determiners (DET). THOR strips from noun phrases any leading or
//! trailing stop-words."
//!
//! A [`NounPhrase`] records both the stop-word-stripped surface text and
//! its token span, so downstream spans can be mapped back to the source.

use thor_text::strip_stopwords;

use crate::dep::{DepLabel, DepTree};
use crate::pos::Pos;

/// An extracted noun phrase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NounPhrase {
    /// Stop-word-trimmed surface text.
    pub text: String,
    /// Index of the head token.
    pub head: usize,
    /// First token index of the (untrimmed) span.
    pub start: usize,
    /// One past the last token index of the span.
    pub end: usize,
}

/// Extract noun phrases from a parsed sentence.
///
/// For every NP head (a nominal token not attached via `compound` to
/// another nominal), the span covers the head plus all dependents
/// reachable through NP-internal relations (`det`, `amod`, `nummod`,
/// `compound`). Spans are contiguous by construction of the parser's
/// attachment rules. Phrases that are empty after stop-word stripping
/// (e.g. a bare pronoun `it`) are dropped.
#[allow(clippy::needless_range_loop)]
pub fn noun_phrases(words: &[&str], tags: &[Pos], tree: &DepTree) -> Vec<NounPhrase> {
    assert_eq!(words.len(), tags.len());
    assert_eq!(words.len(), tree.len());
    let n = words.len();
    let mut phrases = Vec::new();

    let np_internal = |label: DepLabel| {
        matches!(
            label,
            DepLabel::Det | DepLabel::Amod | DepLabel::Nummod | DepLabel::Compound
        )
    };

    for head in 0..n {
        if !tags[head].is_nominal() {
            continue;
        }
        // Skip non-head members of a compound run.
        if tree.labels[head] == DepLabel::Compound {
            continue;
        }
        // Gather NP-internal dependents transitively.
        let mut members = vec![head];
        let mut stack = vec![head];
        while let Some(h) = stack.pop() {
            for d in tree.dependents(h) {
                if np_internal(tree.labels[d]) {
                    members.push(d);
                    stack.push(d);
                }
            }
        }
        let start = *members.iter().min().expect("non-empty");
        let end = *members.iter().max().expect("non-empty") + 1;
        let raw = words[start..end].join(" ");
        let text = strip_stopwords(&raw);
        if text.is_empty() {
            continue;
        }
        phrases.push(NounPhrase {
            text,
            head,
            start,
            end,
        });
    }
    phrases.sort_by_key(|p| p.start);
    phrases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::parse_dependencies;
    use crate::tagger::{RuleTagger, Tagger};

    fn nps(sentence: &str) -> Vec<String> {
        let tokens = thor_text::tokenize(sentence);
        let words: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
        let tags = RuleTagger::default().tag(&words);
        let tree = parse_dependencies(&words, &tags);
        noun_phrases(&words, &tags, &tree)
            .into_iter()
            .map(|p| p.text)
            .collect()
    }

    #[test]
    fn running_example_fig3() {
        // Paper: "{Tuberculosis, lungs}" from "Tuberculosis generally
        // damages the lungs" (after stop-word stripping of "the").
        assert_eq!(
            nps("Tuberculosis generally damages the lungs"),
            ["Tuberculosis", "lungs"]
        );
    }

    #[test]
    fn modifier_rich_np() {
        let got = nps("It is a slow-growing non-cancerous brain tumor");
        assert!(
            got.contains(&"slow-growing non-cancerous brain tumor".to_string()),
            "{got:?}"
        );
    }

    #[test]
    fn pronoun_only_np_dropped() {
        // "It" strips to empty and must not be emitted.
        let got = nps("It damages the lungs");
        assert_eq!(got, ["lungs"]);
    }

    #[test]
    fn coordination_yields_separate_phrases() {
        let got = nps("Symptoms include headaches , dizziness and nausea");
        assert!(got.contains(&"headaches".to_string()));
        assert!(got.contains(&"dizziness".to_string()));
        assert!(got.contains(&"nausea".to_string()));
    }

    #[test]
    fn prepositional_np() {
        let got = nps("It causes damage in the nervous system");
        assert!(got.contains(&"nervous system".to_string()), "{got:?}");
    }

    #[test]
    fn empty_sentence() {
        assert!(nps("").is_empty());
    }

    #[test]
    fn spans_cover_heads() {
        let tokens = thor_text::tokenize("the brain tumor damages the auditory nerve");
        let words: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
        let tags = RuleTagger::default().tag(&words);
        let tree = parse_dependencies(&words, &tags);
        for np in noun_phrases(&words, &tags, &tree) {
            assert!(np.start <= np.head && np.head < np.end);
            assert!(np.end <= words.len());
        }
    }
}
