//! English lexicon: closed-class word lists plus open-class guessing.
//!
//! Closed-class words (determiners, prepositions, pronouns, auxiliaries,
//! conjunctions) are a small, stable inventory — we enumerate them. For
//! open-class words the lexicon falls back to morphology: suffix and
//! shape heuristics in the style of classic rule-based taggers
//! (Brill 1992). The [`crate::tagger::HmmTagger`] uses the same guesser
//! as its out-of-vocabulary emission model.

use std::collections::HashMap;

use crate::pos::Pos;

/// Word → tag lexicon with a morphological guesser.
#[derive(Debug, Clone, Default)]
pub struct Lexicon {
    entries: HashMap<String, Pos>,
}

const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "each", "every", "either", "neither",
    "some", "any", "no", "another", "such", "both", "all",
];

const PREPOSITIONS: &[&str] = &[
    "of", "in", "on", "at", "by", "for", "with", "about", "against", "between", "into", "through",
    "during", "before", "after", "above", "below", "from", "up", "down", "out", "off", "over",
    "under", "within", "without", "along", "across", "behind", "beyond", "near", "among", "upon",
    "via", "per",
];

const PRONOUNS: &[&str] = &[
    "i",
    "you",
    "he",
    "she",
    "it",
    "we",
    "they",
    "me",
    "him",
    "her",
    "us",
    "them",
    "who",
    "whom",
    "which",
    "itself",
    "himself",
    "herself",
    "themselves",
    "something",
    "anything",
    "nothing",
    "everything",
    "someone",
    "anyone",
];

const CONJUNCTIONS: &[&str] = &[
    "and", "or", "but", "nor", "so", "yet", "if", "because", "while", "although", "though",
    "unless", "until", "when", "whereas", "since", "as", "than", "that",
];

const AUXILIARIES: &[&str] = &[
    "am", "is", "are", "was", "were", "be", "been", "being", "do", "does", "did", "have", "has",
    "had", "having", "will", "would", "shall", "should", "may", "might", "must", "can", "could",
];

const COMMON_ADVERBS: &[&str] = &[
    "not",
    "very",
    "also",
    "often",
    "sometimes",
    "usually",
    "commonly",
    "typically",
    "generally",
    "too",
    "then",
    "there",
    "here",
    "however",
    "early",
    "late",
    "soon",
    "never",
    "always",
    "rarely",
    "quickly",
    "slowly",
];

const PARTICLES: &[&str] = &["to", "'s"];

/// Common content verbs (base + 3rd-person forms) that morphology alone
/// cannot separate from plural nouns. The inventory covers the verbs the
/// generated corpora and the paper's running examples use.
const COMMON_VERBS: &[&str] = &[
    "damage",
    "damages",
    "cause",
    "causes",
    "include",
    "includes",
    "involve",
    "involves",
    "affect",
    "affects",
    "require",
    "requires",
    "lead",
    "leads",
    "occur",
    "occurs",
    "develop",
    "develops",
    "grow",
    "grows",
    "treat",
    "treats",
    "diagnose",
    "diagnoses",
    "present",
    "presents",
    "show",
    "shows",
    "recommend",
    "recommends",
    "use",
    "uses",
    "prevent",
    "prevents",
    "reduce",
    "reduces",
    "increase",
    "increases",
    "help",
    "helps",
    "work",
    "works",
    "study",
    "studies",
    "hold",
    "holds",
    "earn",
    "earns",
    "receive",
    "receives",
    "speak",
    "speaks",
    "know",
    "knows",
    "live",
    "lives",
    "manage",
    "manages",
    "spread",
    "spreads",
    "produce",
    "produces",
    "result",
    "results",
    "report",
    "reports",
    "experience",
    "experiences",
    "suffer",
    "suffers",
    "take",
    "takes",
    "need",
    "needs",
    "become",
    "becomes",
    "remain",
    "remains",
    "appear",
    "appears",
    "begin",
    "begins",
    "make",
    "makes",
    "arise",
    "arises",
    "worsen",
    "worsens",
    "improve",
    "improves",
];

impl Lexicon {
    /// Build the default English closed-class lexicon.
    pub fn english() -> Self {
        let mut entries = HashMap::new();
        let mut add = |words: &[&str], pos: Pos| {
            for &w in words {
                entries.insert(w.to_string(), pos);
            }
        };
        add(DETERMINERS, Pos::Det);
        add(PREPOSITIONS, Pos::Adp);
        add(PRONOUNS, Pos::Pron);
        add(CONJUNCTIONS, Pos::Conj);
        add(AUXILIARIES, Pos::Verb);
        add(COMMON_ADVERBS, Pos::Adv);
        add(PARTICLES, Pos::Part);
        add(COMMON_VERBS, Pos::Verb);
        Self { entries }
    }

    /// Add or override an entry (lowercased key).
    pub fn insert(&mut self, word: &str, pos: Pos) {
        self.entries.insert(word.to_lowercase(), pos);
    }

    /// Exact lookup (case-insensitive).
    pub fn lookup(&self, word: &str) -> Option<Pos> {
        self.entries.get(&word.to_lowercase()).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the lexicon is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Guess the tag of an open-class word from morphology and shape.
    ///
    /// `sentence_initial` suppresses the capitalization→PROPN rule at the
    /// start of a sentence, where capitalization is uninformative.
    pub fn guess(&self, word: &str, sentence_initial: bool) -> Pos {
        if word.chars().all(|c| c.is_ascii_punctuation()) && !word.is_empty() {
            return Pos::Punct;
        }
        if word.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return Pos::Num;
        }
        let lower = word.to_lowercase();
        // Capitalized mid-sentence → proper noun.
        if !sentence_initial && word.chars().next().is_some_and(char::is_uppercase) {
            return Pos::Propn;
        }
        // Number words.
        const NUM_WORDS: &[&str] = &[
            "one", "two", "three", "four", "five", "six", "seven", "eight", "nine", "ten",
        ];
        if NUM_WORDS.contains(&lower.as_str()) {
            return Pos::Num;
        }
        // Adverbs: -ly.
        if lower.len() > 3 && lower.ends_with("ly") {
            return Pos::Adv;
        }
        // Adjective suffixes.
        const ADJ_SUFFIXES: &[&str] = &[
            "ous", "ive", "able", "ible", "al", "ic", "ful", "less", "ant", "ent", "ary",
        ];
        if lower.len() > 4 && ADJ_SUFFIXES.iter().any(|s| lower.ends_with(s)) {
            return Pos::Adj;
        }
        // Hyphenated modifiers (`slow-growing`, `non-cancerous`).
        if lower.contains('-')
            && (lower.ends_with("ing") || lower.ends_with("ed") || lower.starts_with("non-"))
        {
            return Pos::Adj;
        }
        // Verb morphology.
        if lower.len() > 4 && (lower.ends_with("izes") || lower.ends_with("ises")) {
            return Pos::Verb;
        }
        if lower.len() > 3 && (lower.ends_with("ing") || lower.ends_with("ed")) {
            return Pos::Verb;
        }
        // 3rd-person -s on a verb is indistinguishable from a plural noun
        // without context; the HMM learns this, the rule tagger defaults
        // to NOUN, which the dependency rules tolerate.
        Pos::Noun
    }

    /// Lookup, falling back to the guesser.
    pub fn tag_of(&self, word: &str, sentence_initial: bool) -> Pos {
        self.lookup(word)
            .unwrap_or_else(|| self.guess(word, sentence_initial))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_class_lookups() {
        let lex = Lexicon::english();
        assert_eq!(lex.lookup("the"), Some(Pos::Det));
        assert_eq!(lex.lookup("The"), Some(Pos::Det));
        assert_eq!(lex.lookup("of"), Some(Pos::Adp));
        assert_eq!(lex.lookup("it"), Some(Pos::Pron));
        assert_eq!(lex.lookup("and"), Some(Pos::Conj));
        assert_eq!(lex.lookup("is"), Some(Pos::Verb));
        assert_eq!(lex.lookup("lungs"), None);
    }

    #[test]
    fn guesses_adjectives() {
        let lex = Lexicon::english();
        assert_eq!(lex.guess("cancerous", false), Pos::Adj);
        assert_eq!(lex.guess("non-cancerous", false), Pos::Adj);
        assert_eq!(lex.guess("slow-growing", false), Pos::Adj);
        assert_eq!(lex.guess("surgical", false), Pos::Adj);
    }

    #[test]
    fn guesses_verbs_and_adverbs() {
        let lex = Lexicon::english();
        assert_eq!(lex.guess("damaging", false), Pos::Verb);
        assert_eq!(lex.guess("treated", false), Pos::Verb);
        assert_eq!(lex.guess("generally", false), Pos::Adv);
    }

    #[test]
    fn guesses_numbers_and_punct() {
        let lex = Lexicon::english();
        assert_eq!(lex.guess("12.5", false), Pos::Num);
        assert_eq!(lex.guess("three", false), Pos::Num);
        assert_eq!(lex.guess(".", false), Pos::Punct);
    }

    #[test]
    fn capitalization_rule() {
        let lex = Lexicon::english();
        assert_eq!(lex.guess("Tuberculosis", false), Pos::Propn);
        // Sentence-initial capitalization is ignored; falls to NOUN.
        assert_eq!(lex.guess("Tuberculosis", true), Pos::Noun);
    }

    #[test]
    fn default_is_noun() {
        let lex = Lexicon::english();
        assert_eq!(lex.guess("lungs", false), Pos::Noun);
        assert_eq!(lex.guess("tumor", false), Pos::Noun);
    }

    #[test]
    fn insert_overrides() {
        let mut lex = Lexicon::english();
        lex.insert("damages", Pos::Verb);
        assert_eq!(lex.tag_of("damages", false), Pos::Verb);
    }
}
