#![warn(missing_docs)]
//! # thor-nlp
//!
//! The linguistic substrate THOR's entity-extraction phase runs on.
//!
//! The paper uses spaCy's statistical pipeline for part-of-speech tagging
//! and dependency parsing, then extracts *noun phrases* — subtrees rooted
//! at a NOUN/PROPN/PRON with leading/trailing modifiers — as candidate
//! entity carriers. We rebuild that stack from scratch:
//!
//! * [`pos`] — the Universal-POS-style tag set;
//! * [`lexicon`] — a closed-class English lexicon plus suffix/shape
//!   heuristics for open-class words;
//! * [`tagger`] — two interchangeable taggers: a deterministic
//!   [`tagger::RuleTagger`] and a trainable bigram [`tagger::HmmTagger`]
//!   decoded with Viterbi (verified against exhaustive search);
//! * [`dep`] — a rule-based dependency parser producing the head/label
//!   tree of Fig. 3 (nsubj/obj/det/amod/compound/...);
//! * [`chunker`] — noun-phrase extraction over the parse, the direct
//!   input of THOR's semantic matching.

pub mod analyze;
pub mod chunker;
pub mod dep;
pub mod lexicon;
pub mod pos;
pub mod tagger;

pub use analyze::{chunk_sentence, chunk_sentence_metered};
pub use chunker::{noun_phrases, NounPhrase};
pub use dep::{parse_dependencies, DepLabel, DepTree};
pub use lexicon::Lexicon;
pub use pos::Pos;
pub use tagger::{HmmTagger, RuleTagger, Tagger};
