//! Part-of-speech tag set (Universal POS subset).
//!
//! The paper's parser performs "part-of-speech tagging, associating with
//! each word their grammatical function (e.g., VERB, ADJECTIVE, NOUN)"
//! and defines noun phrases over NOUN/PRON/PROPN heads with ADJ/DET
//! modifiers. We use the Universal Dependencies tag inventory restricted
//! to the classes those rules reference.

use std::fmt;

/// Universal part-of-speech tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pos {
    /// Common noun (`lungs`, `tumor`).
    Noun,
    /// Proper noun (`Tuberculosis` as a name, `WHO`).
    Propn,
    /// Pronoun (`it`, `they`).
    Pron,
    /// Verb, including auxiliaries (`damages`, `is`).
    Verb,
    /// Adjective (`non-cancerous`).
    Adj,
    /// Adverb (`generally`).
    Adv,
    /// Determiner (`the`, `a`).
    Det,
    /// Adposition / preposition (`of`, `in`).
    Adp,
    /// Numeral (`12.5`, `three`).
    Num,
    /// Coordinating or subordinating conjunction (`and`, `because`).
    Conj,
    /// Particle (`to` of infinitives, `'s`).
    Part,
    /// Punctuation.
    Punct,
    /// Anything else / unknown.
    X,
}

impl Pos {
    /// All tags, in a fixed order (used for dense indexing in the HMM).
    pub const ALL: [Pos; 13] = [
        Pos::Noun,
        Pos::Propn,
        Pos::Pron,
        Pos::Verb,
        Pos::Adj,
        Pos::Adv,
        Pos::Det,
        Pos::Adp,
        Pos::Num,
        Pos::Conj,
        Pos::Part,
        Pos::Punct,
        Pos::X,
    ];

    /// Dense index of the tag in [`Pos::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&t| t == self)
            .expect("tag in ALL")
    }

    /// Can this tag head a noun phrase? (NOUN, PROPN, PRON.)
    pub fn is_nominal(self) -> bool {
        matches!(self, Pos::Noun | Pos::Propn | Pos::Pron)
    }

    /// Can this tag modify a noun inside an NP? (ADJ, DET, NUM, NOUN
    /// compounds, PROPN compounds.)
    pub fn is_np_modifier(self) -> bool {
        matches!(
            self,
            Pos::Adj | Pos::Det | Pos::Num | Pos::Noun | Pos::Propn
        )
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Pos::Noun => "NOUN",
            Pos::Propn => "PROPN",
            Pos::Pron => "PRON",
            Pos::Verb => "VERB",
            Pos::Adj => "ADJ",
            Pos::Adv => "ADV",
            Pos::Det => "DET",
            Pos::Adp => "ADP",
            Pos::Num => "NUM",
            Pos::Conj => "CONJ",
            Pos::Part => "PART",
            Pos::Punct => "PUNCT",
            Pos::X => "X",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, t) in Pos::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn nominal_classes() {
        assert!(Pos::Noun.is_nominal());
        assert!(Pos::Propn.is_nominal());
        assert!(Pos::Pron.is_nominal());
        assert!(!Pos::Verb.is_nominal());
        assert!(!Pos::Adj.is_nominal());
    }

    #[test]
    fn modifier_classes() {
        assert!(Pos::Adj.is_np_modifier());
        assert!(Pos::Det.is_np_modifier());
        assert!(Pos::Noun.is_np_modifier());
        assert!(!Pos::Verb.is_np_modifier());
        assert!(!Pos::Punct.is_np_modifier());
    }

    #[test]
    fn display_names() {
        assert_eq!(Pos::Noun.to_string(), "NOUN");
        assert_eq!(Pos::Propn.to_string(), "PROPN");
    }
}
