//! Fuzz tests for the linguistic substrate: arbitrary text through the
//! tokenize → tag → parse → chunk stack.

use proptest::prelude::*;

use thor_nlp::{noun_phrases, parse_dependencies, HmmTagger, Pos, RuleTagger, Tagger};
use thor_text::tokenize;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The full stack never panics and produces structurally valid
    /// output for arbitrary unicode input.
    #[test]
    fn stack_handles_arbitrary_text(text in "\\PC{0,200}") {
        let tokens = tokenize(&text);
        let words: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
        let tags = RuleTagger::default().tag(&words);
        prop_assert_eq!(tags.len(), words.len());
        let tree = parse_dependencies(&words, &tags);
        prop_assert!(tree.is_forest_rooted());
        let nps = noun_phrases(&words, &tags, &tree);
        for np in &nps {
            prop_assert!(np.start <= np.head && np.head < np.end);
            prop_assert!(np.end <= words.len());
            prop_assert!(!np.text.is_empty());
        }
    }

    /// NP spans never overlap (each token belongs to at most one NP).
    #[test]
    fn noun_phrases_disjoint(text in "[a-z ]{0,120}") {
        let tokens = tokenize(&text);
        let words: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
        let tags = RuleTagger::default().tag(&words);
        let tree = parse_dependencies(&words, &tags);
        let nps = noun_phrases(&words, &tags, &tree);
        for w in nps.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }

    /// An HMM trained on tiny random data still decodes every sentence
    /// to a full tag sequence.
    #[test]
    fn hmm_always_decodes(
        train_words in prop::collection::vec("[a-c]{1,3}", 1..6),
        query_words in prop::collection::vec("[a-d]{1,3}", 0..6),
    ) {
        let corpus: Vec<Vec<(String, Pos)>> = vec![train_words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), if i % 2 == 0 { Pos::Noun } else { Pos::Verb }))
            .collect()];
        let tagger = HmmTagger::train(&corpus);
        let refs: Vec<&str> = query_words.iter().map(String::as_str).collect();
        let tags = tagger.tag(&refs);
        prop_assert_eq!(tags.len(), refs.len());
    }
}
