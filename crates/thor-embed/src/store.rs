//! The vector store — the only embedding interface the pipeline sees.
//!
//! Mirrors how spaCy exposes its static table: word → vector lookup,
//! out-of-vocabulary words have no vector, and a multi-word span is
//! embedded as the mean of its in-vocabulary word vectors (spaCy's
//! `Span.vector`). The store also answers the nearest-neighbour queries
//! the matcher's τ-expansion needs.
//!
//! Since the zero-copy artifact work the store has two backings:
//!
//! * **Owned** — the mutable `HashMap<String, Vector>` every build path
//!   uses (training, `from_text`, tests).
//! * **Frozen** — an immutable structure-of-arrays view: a sorted word
//!   pool plus one contiguous `f32` row per word, both of which may
//!   borrow a memory-mapped v2 engine artifact. Lookups are binary
//!   searches over the pool; no per-word heap allocation exists at all.
//!
//! The scoring surface (`row`, `embed_phrase`, `coverage`,
//! `neighbors_above`, `nearest`, `to_text`) works identically — and
//! bit-identically, via the slice twin kernels in
//! [`vector`](crate::vector) — on both backings. The mutation and
//! owned-iteration surface (`insert`, `get`, `iter`) is owned-only and
//! panics on a frozen store: those calls exist only on build paths,
//! which never see a frozen store.

use std::collections::HashMap;

use thor_fault::{FrozenPool, FrozenSlice, ThorError};
use thor_text::normalize_phrase;

use crate::vector::{cosine, mean_of_rows, slice_cosine, Vector};

#[derive(Debug, Clone)]
enum Backing {
    Owned(HashMap<String, Vector>),
    Frozen {
        /// Normalized vocabulary words, sorted ascending by byte order.
        words: FrozenPool,
        /// Row `i` of the vocabulary lives at `rows[i*dim .. (i+1)*dim]`.
        rows: FrozenSlice<f32>,
    },
}

/// A word-embedding table: owned and mutable, or a frozen zero-copy
/// view over an engine artifact. See the module docs.
#[derive(Debug, Clone)]
pub struct VectorStore {
    dim: usize,
    backing: Backing,
}

impl Default for VectorStore {
    fn default() -> Self {
        Self::new(0)
    }
}

impl VectorStore {
    /// Create an empty owned store with dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            backing: Backing::Owned(HashMap::new()),
        }
    }

    /// Assemble a frozen store from its artifact sections: a sorted
    /// word pool and the concatenated `f32` rows. Validates the O(1)
    /// structural invariant `rows == words × dim`; the contents are
    /// covered by the artifact's checksum policy.
    pub fn from_frozen(
        dim: usize,
        words: FrozenPool,
        rows: FrozenSlice<f32>,
    ) -> Result<Self, ThorError> {
        if rows.len() != words.len() * dim {
            return Err(ThorError::validation(format!(
                "vector store sections inconsistent: {} words × dim {} != {} row values",
                words.len(),
                dim,
                rows.len()
            )));
        }
        Ok(Self {
            dim,
            backing: Backing::Frozen { words, rows },
        })
    }

    /// Re-encode this store as a frozen one (owned arrays, same layout
    /// the artifact writer produces). Build paths use it to exercise
    /// the frozen surface without a round trip through disk.
    pub fn freeze(&self) -> VectorStore {
        let mut words: Vec<String> = Vec::with_capacity(self.len());
        let mut rows: Vec<f32> = Vec::with_capacity(self.len() * self.dim);
        self.for_each_sorted(|w, r| {
            words.push(w.to_string());
            rows.extend_from_slice(r);
        });
        VectorStore::from_frozen(self.dim, FrozenPool::from_items(words), rows.into())
            .expect("freeze of a consistent store cannot fail")
    }

    /// Whether this store is a frozen (immutable, possibly mapped) view.
    pub fn is_frozen(&self) -> bool {
        matches!(self.backing, Backing::Frozen { .. })
    }

    /// Dimensionality of the stored vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of words in the vocabulary.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Owned(m) => m.len(),
            Backing::Frozen { words, .. } => words.len(),
        }
    }

    /// True if the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert (or replace) the vector for `word`. The word is normalized
    /// (lowercased, outer punctuation stripped) before insertion.
    ///
    /// # Panics
    /// If the vector dimension does not match the store's, or the store
    /// is frozen (frozen stores are immutable by construction).
    pub fn insert(&mut self, word: &str, vector: Vector) {
        assert_eq!(vector.dim(), self.dim, "vector dimension mismatch");
        match &mut self.backing {
            Backing::Owned(m) => {
                m.insert(normalize_phrase(word), vector);
            }
            Backing::Frozen { .. } => panic!("cannot insert into a frozen vector store"),
        }
    }

    /// Look up the vector for a single word (normalized).
    ///
    /// # Panics
    /// On a frozen store — frozen rows have no `Vector` to borrow; use
    /// [`row`](Self::row) instead (all serve paths do).
    pub fn get(&self, word: &str) -> Option<&Vector> {
        match &self.backing {
            Backing::Owned(m) => m.get(&normalize_phrase(word)),
            Backing::Frozen { .. } => panic!("VectorStore::get on a frozen store; use row()"),
        }
    }

    /// The raw `f32` row for a single word (normalized), on either
    /// backing.
    pub fn row(&self, word: &str) -> Option<&[f32]> {
        self.row_raw(&normalize_phrase(word))
    }

    /// Row lookup for an *already normalized* word (the per-token path
    /// of `embed_phrase`, which normalizes the whole phrase once, and
    /// of exact-key callers holding words read back from the store).
    pub fn row_raw(&self, word: &str) -> Option<&[f32]> {
        match &self.backing {
            Backing::Owned(m) => m.get(word).map(|v| v.as_slice()),
            Backing::Frozen { words, rows } => {
                let i = words.binary_search_bytes(word.as_bytes()).ok()?;
                rows.as_slice().get(i * self.dim..(i + 1) * self.dim)
            }
        }
    }

    /// Does the (normalized) word have a vector?
    pub fn contains(&self, word: &str) -> bool {
        self.row(word).is_some()
    }

    /// Iterate over `(word, vector)` pairs (hash order).
    ///
    /// # Panics
    /// On a frozen store — callers that must handle both backings use
    /// [`for_each_row`](Self::for_each_row).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Vector)> {
        match &self.backing {
            Backing::Owned(m) => m.iter().map(|(w, v)| (w.as_str(), v)),
            Backing::Frozen { .. } => {
                panic!("VectorStore::iter on a frozen store; use for_each_row()")
            }
        }
    }

    /// Visit every `(word, row)` pair on either backing. Visit order is
    /// backing-dependent (hash order vs sorted) — callers must be
    /// order-independent, which every τ-expansion pass is (per-word
    /// decisions followed by a totally ordered sort).
    pub fn for_each_row<'a>(&'a self, mut f: impl FnMut(&'a str, &'a [f32])) {
        match &self.backing {
            Backing::Owned(m) => {
                for (w, v) in m {
                    f(w.as_str(), v.as_slice());
                }
            }
            Backing::Frozen { words, rows } => {
                let rows = rows.as_slice();
                for i in 0..words.len() {
                    // Invalid UTF-8 or short rows can only appear in a
                    // corrupt unverified (mapped, lazy) artifact; skip
                    // defensively rather than panic.
                    let Some(w) = words.get_str(i) else { continue };
                    let Some(r) = rows.get(i * self.dim..(i + 1) * self.dim) else {
                        continue;
                    };
                    f(w, r);
                }
            }
        }
    }

    /// Visit every `(word, row)` pair in ascending word order on either
    /// backing — the artifact serialization order.
    pub fn for_each_sorted<'a>(&'a self, mut f: impl FnMut(&'a str, &'a [f32])) {
        match &self.backing {
            Backing::Owned(m) => {
                let mut words: Vec<&String> = m.keys().collect();
                words.sort();
                for w in words {
                    f(w.as_str(), m[w].as_slice());
                }
            }
            Backing::Frozen { .. } => self.for_each_row(f),
        }
    }

    /// Embed a phrase as the mean of its in-vocabulary word vectors
    /// (spaCy span semantics). Returns `None` when *no* word of the
    /// phrase is in the vocabulary.
    pub fn embed_phrase(&self, phrase: &str) -> Option<Vector> {
        let normalized = normalize_phrase(phrase);
        let rows: Vec<&[f32]> = normalized
            .split_whitespace()
            .filter_map(|w| self.row_raw(w))
            .collect();
        mean_of_rows(rows)
    }

    /// Cosine similarity between two phrases' mean vectors; `None` if
    /// either phrase is fully out-of-vocabulary.
    pub fn phrase_similarity(&self, a: &str, b: &str) -> Option<f64> {
        let va = self.embed_phrase(a)?;
        let vb = self.embed_phrase(b)?;
        Some(cosine(&va, &vb))
    }

    /// Fraction of a phrase's words that have vectors (coverage drives
    /// the generalizability experiment).
    pub fn coverage(&self, phrase: &str) -> f64 {
        let normalized = normalize_phrase(phrase);
        let words: Vec<&str> = normalized.split_whitespace().collect();
        if words.is_empty() {
            return 0.0;
        }
        let known = words.iter().filter(|w| self.row_raw(w).is_some()).count();
        known as f64 / words.len() as f64
    }

    /// All vocabulary words whose cosine similarity to `query` is at
    /// least `threshold`, sorted by descending similarity.
    pub fn neighbors_above(&self, query: &Vector, threshold: f64) -> Vec<(&str, f64)> {
        let mut out: Vec<(&str, f64)> = Vec::new();
        self.for_each_row(|w, r| {
            let s = slice_cosine(query.as_slice(), r);
            if s >= threshold {
                out.push((w, s));
            }
        });
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        out
    }

    /// The `k` nearest vocabulary words to `query` by cosine similarity.
    pub fn nearest(&self, query: &Vector, k: usize) -> Vec<(&str, f64)> {
        let mut all: Vec<(&str, f64)> = Vec::new();
        self.for_each_row(|w, r| all.push((w, slice_cosine(query.as_slice(), r))));
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        all.truncate(k);
        all
    }

    /// Serialize as word2vec-style text: first line `<count> <dim>`,
    /// then one `word<TAB>v1 v2 …` line per word, sorted by word.
    /// Identical output on both backings.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} {}", self.len(), self.dim);
        self.for_each_sorted(|w, r| {
            let values: Vec<String> = r.iter().map(|x| format!("{x}")).collect();
            let _ = writeln!(out, "{w}\t{}", values.join(" "));
        });
        out
    }

    /// Load a vector file from disk: [`VectorStore::from_text`] with
    /// contextual errors naming the offending path (and line, for parse
    /// failures), behind the `read_vectors` failpoint.
    pub fn load_path(path: &std::path::Path) -> Result<Self, thor_fault::ThorError> {
        thor_fault::fail_point("read_vectors")
            .map_err(|e| e.context(format!("loading vectors from {}", path.display())))?;
        let text = thor_fault::read_to_string(path)?;
        Self::from_text(&text).map_err(|e| e.context(path.display().to_string()))
    }

    /// Parse the format written by [`VectorStore::to_text`]. Failures
    /// are [`thor_fault::ErrorKind::Parse`] errors naming the offending
    /// 1-based line.
    pub fn from_text(text: &str) -> Result<Self, thor_fault::ThorError> {
        use thor_fault::ThorError;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| ThorError::parse("empty vector file"))?;
        let mut parts = header.split_whitespace();
        let count: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ThorError::parse("bad header count"))?;
        let dim: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ThorError::parse("bad header dim"))?;
        let mut store = VectorStore::new(dim);
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let (word, rest) = line
                .split_once('\t')
                .ok_or_else(|| ThorError::parse(format!("line {}: no tab", i + 2)))?;
            let values: Result<Vec<f32>, _> =
                rest.split_whitespace().map(str::parse::<f32>).collect();
            let values = values.map_err(|e| ThorError::parse(format!("line {}: {e}", i + 2)))?;
            if values.len() != dim {
                return Err(ThorError::parse(format!(
                    "line {}: expected {dim} values, got {}",
                    i + 2,
                    values.len()
                )));
            }
            store.insert(word, Vector(values));
        }
        if store.len() != count {
            return Err(ThorError::parse(format!(
                "header declared {count} words, found {}",
                store.len()
            )));
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> VectorStore {
        let mut s = VectorStore::new(3);
        s.insert("brain", Vector(vec![1.0, 0.0, 0.0]));
        s.insert("nerve", Vector(vec![0.9, 0.1, 0.0]));
        s.insert("cancer", Vector(vec![0.0, 1.0, 0.0]));
        s.insert("tumor", Vector(vec![0.1, 0.9, 0.0]));
        s
    }

    #[test]
    fn insert_and_lookup_normalized() {
        let s = store();
        assert!(s.contains("Brain"));
        assert!(s.contains("brain,"));
        assert!(!s.contains("kidney"));
        assert_eq!(s.len(), 4);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn insert_wrong_dim_panics() {
        let mut s = VectorStore::new(3);
        s.insert("x", Vector(vec![1.0]));
    }

    #[test]
    fn embed_phrase_mean() {
        let s = store();
        let v = s.embed_phrase("brain cancer").unwrap();
        assert!((v.0[0] - 0.5).abs() < 1e-6);
        assert!((v.0[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn embed_phrase_skips_oov() {
        let s = store();
        // "malignant" is OOV; the mean uses only "tumor".
        let v = s.embed_phrase("malignant tumor").unwrap();
        assert_eq!(v, s.get("tumor").cloned().unwrap());
        assert!(s.embed_phrase("fully unknown words").is_none());
        assert!(s.embed_phrase("").is_none());
    }

    #[test]
    fn phrase_similarity_clusters() {
        let s = store();
        let anatomy = s.phrase_similarity("brain", "nerve").unwrap();
        let cross = s.phrase_similarity("brain", "cancer").unwrap();
        assert!(anatomy > cross, "same-topic words should be closer");
    }

    #[test]
    fn coverage_fraction() {
        let s = store();
        assert_eq!(s.coverage("brain tumor"), 1.0);
        assert_eq!(s.coverage("brain xyzzy"), 0.5);
        assert_eq!(s.coverage("xyzzy"), 0.0);
        assert_eq!(s.coverage(""), 0.0);
    }

    #[test]
    fn neighbors_above_threshold_sorted() {
        let s = store();
        let q = s.get("brain").unwrap().clone();
        let n = s.neighbors_above(&q, 0.8);
        assert_eq!(n[0].0, "brain");
        assert!(n.iter().any(|(w, _)| *w == "nerve"));
        assert!(n.windows(2).all(|w| w[0].1 >= w[1].1), "descending order");
        assert!(!n.iter().any(|(w, _)| *w == "cancer"));
    }

    #[test]
    fn text_round_trip() {
        let s = store();
        let text = s.to_text();
        let back = VectorStore::from_text(&text).unwrap();
        assert_eq!(back.len(), s.len());
        assert_eq!(back.dim(), s.dim());
        assert_eq!(back.get("brain"), s.get("brain"));
        assert_eq!(back.get("tumor"), s.get("tumor"));
    }

    #[test]
    fn from_text_rejects_malformed() {
        assert!(VectorStore::from_text("").is_err());
        assert!(VectorStore::from_text("notanumber 3\n").is_err());
        assert!(
            VectorStore::from_text("1 3\nword\t1.0 2.0\n").is_err(),
            "dim mismatch"
        );
        assert!(
            VectorStore::from_text("2 2\nword\t1.0 2.0\n").is_err(),
            "count mismatch"
        );
        assert!(
            VectorStore::from_text("1 2\nword 1.0 2.0\n").is_err(),
            "missing tab"
        );
    }

    #[test]
    fn load_path_names_path_and_line() {
        let dir = std::env::temp_dir().join(format!("thor-embed-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.txt");
        std::fs::write(&good, store().to_text()).unwrap();
        assert_eq!(VectorStore::load_path(&good).unwrap().len(), 4);

        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "1 3\nword\tnot numbers here\n").unwrap();
        let err = VectorStore::load_path(&bad).unwrap_err();
        assert_eq!(err.kind(), thor_fault::ErrorKind::Parse);
        assert!(err.to_string().contains("bad.txt"), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");

        let missing = dir.join("missing.txt");
        let err = VectorStore::load_path(&missing).unwrap_err();
        assert_eq!(err.kind(), thor_fault::ErrorKind::Io);

        let _guard = thor_fault::scoped_failpoints("read_vectors:err");
        let err = VectorStore::load_path(&good).unwrap_err();
        assert_eq!(err.kind(), thor_fault::ErrorKind::Injected);
        drop(_guard);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nearest_k() {
        let s = store();
        let q = s.get("cancer").unwrap().clone();
        let n = s.nearest(&q, 2);
        assert_eq!(n.len(), 2);
        assert_eq!(n[0].0, "cancer");
        assert_eq!(n[1].0, "tumor");
    }

    // --- frozen backing equivalence ---------------------------------

    #[test]
    fn frozen_matches_owned_bit_for_bit() {
        let s = store();
        let f = s.freeze();
        assert!(f.is_frozen() && !s.is_frozen());
        assert_eq!(f.len(), s.len());
        assert_eq!(f.dim(), s.dim());

        for w in ["brain", "Brain", "tumor", "nerve", "xyzzy"] {
            assert_eq!(f.row(w), s.row(w), "row({w})");
            assert_eq!(f.contains(w), s.contains(w));
        }
        for phrase in ["brain cancer", "malignant tumor", "xyzzy", ""] {
            let a = s.embed_phrase(phrase);
            let b = f.embed_phrase(phrase);
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    let bits = |v: &Vector| v.0.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(&a), bits(&b), "embed({phrase})");
                }
                other => panic!("embed mismatch for {phrase}: {other:?}"),
            }
            assert_eq!(f.coverage(phrase), s.coverage(phrase));
        }
        assert_eq!(f.to_text(), s.to_text());

        let q = s.get("brain").unwrap().clone();
        assert_eq!(f.neighbors_above(&q, 0.5), s.neighbors_above(&q, 0.5));
        assert_eq!(f.nearest(&q, 3), s.nearest(&q, 3));
    }

    #[test]
    fn frozen_section_inconsistency_is_named() {
        let err = VectorStore::from_frozen(
            3,
            FrozenPool::from_items(["a", "b"]),
            vec![0.0f32; 5].into(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("inconsistent"), "{err}");
    }

    #[test]
    #[should_panic(expected = "frozen")]
    fn frozen_insert_panics() {
        let mut f = store().freeze();
        f.insert("new", Vector(vec![0.0, 0.0, 0.0]));
    }

    #[test]
    fn for_each_sorted_visits_in_word_order() {
        let s = store();
        let mut owned_order = Vec::new();
        s.for_each_sorted(|w, _| owned_order.push(w.to_string()));
        let mut frozen_order = Vec::new();
        s.freeze()
            .for_each_sorted(|w, _| frozen_order.push(w.to_string()));
        let mut expect: Vec<String> = ["brain", "cancer", "nerve", "tumor"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        expect.sort();
        assert_eq!(owned_order, expect);
        assert_eq!(frozen_order, expect);
    }
}
