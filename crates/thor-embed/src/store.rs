//! The vector store — the only embedding interface the pipeline sees.
//!
//! Mirrors how spaCy exposes its static table: word → vector lookup,
//! out-of-vocabulary words have no vector, and a multi-word span is
//! embedded as the mean of its in-vocabulary word vectors (spaCy's
//! `Span.vector`). The store also answers the nearest-neighbour queries
//! the matcher's τ-expansion needs.

use std::collections::HashMap;

use thor_text::normalize_phrase;

use crate::vector::{cosine, Vector};

/// An in-memory word-embedding table.
#[derive(Debug, Clone, Default)]
pub struct VectorStore {
    dim: usize,
    vectors: HashMap<String, Vector>,
}

impl VectorStore {
    /// Create an empty store with dimensionality `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            vectors: HashMap::new(),
        }
    }

    /// Dimensionality of the stored vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of words in the vocabulary.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Insert (or replace) the vector for `word`. The word is normalized
    /// (lowercased, outer punctuation stripped) before insertion.
    ///
    /// # Panics
    /// If the vector dimension does not match the store's.
    pub fn insert(&mut self, word: &str, vector: Vector) {
        assert_eq!(vector.dim(), self.dim, "vector dimension mismatch");
        self.vectors.insert(normalize_phrase(word), vector);
    }

    /// Look up the vector for a single word (normalized).
    pub fn get(&self, word: &str) -> Option<&Vector> {
        self.vectors.get(&normalize_phrase(word))
    }

    /// Does the (normalized) word have a vector?
    pub fn contains(&self, word: &str) -> bool {
        self.get(word).is_some()
    }

    /// Iterate over `(word, vector)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Vector)> {
        self.vectors.iter().map(|(w, v)| (w.as_str(), v))
    }

    /// Embed a phrase as the mean of its in-vocabulary word vectors
    /// (spaCy span semantics). Returns `None` when *no* word of the
    /// phrase is in the vocabulary.
    pub fn embed_phrase(&self, phrase: &str) -> Option<Vector> {
        let normalized = normalize_phrase(phrase);
        let vectors: Vec<&Vector> = normalized
            .split_whitespace()
            .filter_map(|w| self.vectors.get(w))
            .collect();
        Vector::mean(vectors)
    }

    /// Cosine similarity between two phrases' mean vectors; `None` if
    /// either phrase is fully out-of-vocabulary.
    pub fn phrase_similarity(&self, a: &str, b: &str) -> Option<f64> {
        let va = self.embed_phrase(a)?;
        let vb = self.embed_phrase(b)?;
        Some(cosine(&va, &vb))
    }

    /// Fraction of a phrase's words that have vectors (coverage drives
    /// the generalizability experiment).
    pub fn coverage(&self, phrase: &str) -> f64 {
        let normalized = normalize_phrase(phrase);
        let words: Vec<&str> = normalized.split_whitespace().collect();
        if words.is_empty() {
            return 0.0;
        }
        let known = words
            .iter()
            .filter(|w| self.vectors.contains_key(**w))
            .count();
        known as f64 / words.len() as f64
    }

    /// All vocabulary words whose cosine similarity to `query` is at
    /// least `threshold`, sorted by descending similarity.
    pub fn neighbors_above(&self, query: &Vector, threshold: f64) -> Vec<(&str, f64)> {
        let mut out: Vec<(&str, f64)> = self
            .vectors
            .iter()
            .filter_map(|(w, v)| {
                let s = cosine(query, v);
                (s >= threshold).then_some((w.as_str(), s))
            })
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        out
    }

    /// The `k` nearest vocabulary words to `query` by cosine similarity.
    pub fn nearest(&self, query: &Vector, k: usize) -> Vec<(&str, f64)> {
        let mut all: Vec<(&str, f64)> = self
            .vectors
            .iter()
            .map(|(w, v)| (w.as_str(), cosine(query, v)))
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        all.truncate(k);
        all
    }

    /// Serialize as word2vec-style text: first line `<count> <dim>`,
    /// then one `word<TAB>v1 v2 …` line per word, sorted by word.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} {}", self.vectors.len(), self.dim);
        let mut words: Vec<&String> = self.vectors.keys().collect();
        words.sort();
        for w in words {
            let v = &self.vectors[w];
            let values: Vec<String> = v.0.iter().map(|x| format!("{x}")).collect();
            let _ = writeln!(out, "{w}\t{}", values.join(" "));
        }
        out
    }

    /// Load a vector file from disk: [`VectorStore::from_text`] with
    /// contextual errors naming the offending path (and line, for parse
    /// failures), behind the `read_vectors` failpoint.
    pub fn load_path(path: &std::path::Path) -> Result<Self, thor_fault::ThorError> {
        thor_fault::fail_point("read_vectors")
            .map_err(|e| e.context(format!("loading vectors from {}", path.display())))?;
        let text = thor_fault::read_to_string(path)?;
        Self::from_text(&text).map_err(|e| e.context(path.display().to_string()))
    }

    /// Parse the format written by [`VectorStore::to_text`]. Failures
    /// are [`thor_fault::ErrorKind::Parse`] errors naming the offending
    /// 1-based line.
    pub fn from_text(text: &str) -> Result<Self, thor_fault::ThorError> {
        use thor_fault::ThorError;
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| ThorError::parse("empty vector file"))?;
        let mut parts = header.split_whitespace();
        let count: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ThorError::parse("bad header count"))?;
        let dim: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ThorError::parse("bad header dim"))?;
        let mut store = VectorStore::new(dim);
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let (word, rest) = line
                .split_once('\t')
                .ok_or_else(|| ThorError::parse(format!("line {}: no tab", i + 2)))?;
            let values: Result<Vec<f32>, _> =
                rest.split_whitespace().map(str::parse::<f32>).collect();
            let values = values.map_err(|e| ThorError::parse(format!("line {}: {e}", i + 2)))?;
            if values.len() != dim {
                return Err(ThorError::parse(format!(
                    "line {}: expected {dim} values, got {}",
                    i + 2,
                    values.len()
                )));
            }
            store.insert(word, Vector(values));
        }
        if store.len() != count {
            return Err(ThorError::parse(format!(
                "header declared {count} words, found {}",
                store.len()
            )));
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> VectorStore {
        let mut s = VectorStore::new(3);
        s.insert("brain", Vector(vec![1.0, 0.0, 0.0]));
        s.insert("nerve", Vector(vec![0.9, 0.1, 0.0]));
        s.insert("cancer", Vector(vec![0.0, 1.0, 0.0]));
        s.insert("tumor", Vector(vec![0.1, 0.9, 0.0]));
        s
    }

    #[test]
    fn insert_and_lookup_normalized() {
        let s = store();
        assert!(s.contains("Brain"));
        assert!(s.contains("brain,"));
        assert!(!s.contains("kidney"));
        assert_eq!(s.len(), 4);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn insert_wrong_dim_panics() {
        let mut s = VectorStore::new(3);
        s.insert("x", Vector(vec![1.0]));
    }

    #[test]
    fn embed_phrase_mean() {
        let s = store();
        let v = s.embed_phrase("brain cancer").unwrap();
        assert!((v.0[0] - 0.5).abs() < 1e-6);
        assert!((v.0[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn embed_phrase_skips_oov() {
        let s = store();
        // "malignant" is OOV; the mean uses only "tumor".
        let v = s.embed_phrase("malignant tumor").unwrap();
        assert_eq!(v, s.get("tumor").cloned().unwrap());
        assert!(s.embed_phrase("fully unknown words").is_none());
        assert!(s.embed_phrase("").is_none());
    }

    #[test]
    fn phrase_similarity_clusters() {
        let s = store();
        let anatomy = s.phrase_similarity("brain", "nerve").unwrap();
        let cross = s.phrase_similarity("brain", "cancer").unwrap();
        assert!(anatomy > cross, "same-topic words should be closer");
    }

    #[test]
    fn coverage_fraction() {
        let s = store();
        assert_eq!(s.coverage("brain tumor"), 1.0);
        assert_eq!(s.coverage("brain xyzzy"), 0.5);
        assert_eq!(s.coverage("xyzzy"), 0.0);
        assert_eq!(s.coverage(""), 0.0);
    }

    #[test]
    fn neighbors_above_threshold_sorted() {
        let s = store();
        let q = s.get("brain").unwrap().clone();
        let n = s.neighbors_above(&q, 0.8);
        assert_eq!(n[0].0, "brain");
        assert!(n.iter().any(|(w, _)| *w == "nerve"));
        assert!(n.windows(2).all(|w| w[0].1 >= w[1].1), "descending order");
        assert!(!n.iter().any(|(w, _)| *w == "cancer"));
    }

    #[test]
    fn text_round_trip() {
        let s = store();
        let text = s.to_text();
        let back = VectorStore::from_text(&text).unwrap();
        assert_eq!(back.len(), s.len());
        assert_eq!(back.dim(), s.dim());
        assert_eq!(back.get("brain"), s.get("brain"));
        assert_eq!(back.get("tumor"), s.get("tumor"));
    }

    #[test]
    fn from_text_rejects_malformed() {
        assert!(VectorStore::from_text("").is_err());
        assert!(VectorStore::from_text("notanumber 3\n").is_err());
        assert!(
            VectorStore::from_text("1 3\nword\t1.0 2.0\n").is_err(),
            "dim mismatch"
        );
        assert!(
            VectorStore::from_text("2 2\nword\t1.0 2.0\n").is_err(),
            "count mismatch"
        );
        assert!(
            VectorStore::from_text("1 2\nword 1.0 2.0\n").is_err(),
            "missing tab"
        );
    }

    #[test]
    fn load_path_names_path_and_line() {
        let dir = std::env::temp_dir().join(format!("thor-embed-load-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.txt");
        std::fs::write(&good, store().to_text()).unwrap();
        assert_eq!(VectorStore::load_path(&good).unwrap().len(), 4);

        let bad = dir.join("bad.txt");
        std::fs::write(&bad, "1 3\nword\tnot numbers here\n").unwrap();
        let err = VectorStore::load_path(&bad).unwrap_err();
        assert_eq!(err.kind(), thor_fault::ErrorKind::Parse);
        assert!(err.to_string().contains("bad.txt"), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");

        let missing = dir.join("missing.txt");
        let err = VectorStore::load_path(&missing).unwrap_err();
        assert_eq!(err.kind(), thor_fault::ErrorKind::Io);

        let _guard = thor_fault::scoped_failpoints("read_vectors:err");
        let err = VectorStore::load_path(&good).unwrap_err();
        assert_eq!(err.kind(), thor_fault::ErrorKind::Injected);
        drop(_guard);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nearest_k() {
        let s = store();
        let q = s.get("cancer").unwrap().clone();
        let n = s.nearest(&q, 2);
        assert_eq!(n.len(), 2);
        assert_eq!(n[0].0, "cancer");
        assert_eq!(n[1].0, "tumor");
    }
}
