//! Synthetic semantic space — the stand-in for pre-trained vectors.
//!
//! The paper's matcher runs on spaCy's static vectors, whose only
//! property THOR relies on is *geometry*: (1) words of the same concept
//! domain cluster, (2) related concepts partially overlap (the paper's
//! `blood` Anatomy vs `blood clot` Complication example), (3) unseen
//! instances of a concept land near its seeds, and (4) some words are
//! out-of-vocabulary. This builder manufactures a vector table with
//! exactly those properties, with each one exposed as a knob, so the
//! evaluation can reproduce the paper's precision/recall trade-offs
//! under controlled ambiguity.
//!
//! Everything is deterministic given the seed.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::store::VectorStore;
use crate::vector::Vector;

/// Specification of one topic (≈ one schema concept's lexical field).
#[derive(Debug, Clone)]
pub struct TopicSpec {
    /// Topic name (usually the concept name, lowercased).
    pub name: String,
    /// Optional correlation: the centroid is pulled toward another
    /// topic's centroid with the given weight in `[0, 1]`. This models
    /// semantically adjacent concepts (Anatomy vs Complication).
    pub correlate_with: Option<(String, f32)>,
}

/// A built semantic space: a vector table plus per-topic centroids.
#[derive(Debug, Clone)]
pub struct SemanticSpace {
    store: VectorStore,
    centroids: HashMap<String, Vector>,
}

impl SemanticSpace {
    /// The word-vector table.
    pub fn store(&self) -> &VectorStore {
        &self.store
    }

    /// Consume into the vector table.
    pub fn into_store(self) -> VectorStore {
        self.store
    }

    /// Centroid of a topic, if it exists.
    pub fn centroid(&self, topic: &str) -> Option<&Vector> {
        self.centroids.get(topic)
    }

    /// Topic names.
    pub fn topics(&self) -> impl Iterator<Item = &str> {
        self.centroids.keys().map(String::as_str)
    }
}

/// Builder for a [`SemanticSpace`].
#[derive(Debug, Clone)]
pub struct SemanticSpaceBuilder {
    dim: usize,
    seed: u64,
    /// Standard deviation of the noise around a topic centroid, relative
    /// to unit-length centroids. Smaller ⇒ tighter clusters ⇒ easier
    /// matching.
    spread: f32,
    topics: Vec<TopicSpec>,
    /// (topic, word, spread-override) assignments.
    words: Vec<(String, String, Option<f32>)>,
    /// Words placed between two topics: (word, topic_a, topic_b, mix).
    ambiguous: Vec<(String, String, String, f32)>,
    /// Words with no topic (uniform random direction).
    generic: Vec<String>,
}

impl SemanticSpaceBuilder {
    /// Start a builder for vectors of dimension `dim`, seeded for
    /// reproducibility.
    pub fn new(dim: usize, seed: u64) -> Self {
        Self {
            dim,
            seed,
            spread: 0.35,
            topics: Vec::new(),
            words: Vec::new(),
            ambiguous: Vec::new(),
            generic: Vec::new(),
        }
    }

    /// Set the intra-topic spread (noise σ around the centroid).
    pub fn spread(mut self, spread: f32) -> Self {
        assert!(spread >= 0.0, "spread must be non-negative");
        self.spread = spread;
        self
    }

    /// Declare an independent topic.
    pub fn topic(mut self, name: &str) -> Self {
        self.topics.push(TopicSpec {
            name: name.to_string(),
            correlate_with: None,
        });
        self
    }

    /// Declare a topic whose centroid is pulled toward `other`'s with
    /// weight `mix` (0 = independent, 1 = identical).
    pub fn correlated_topic(mut self, name: &str, other: &str, mix: f32) -> Self {
        assert!((0.0..=1.0).contains(&mix), "mix must be in [0, 1]");
        self.topics.push(TopicSpec {
            name: name.to_string(),
            correlate_with: Some((other.to_string(), mix)),
        });
        self
    }

    /// Assign a word to a topic's lexical field.
    pub fn word(mut self, topic: &str, word: &str) -> Self {
        self.words.push((topic.to_string(), word.to_string(), None));
        self
    }

    /// Assign many words to a topic.
    pub fn words<'a>(mut self, topic: &str, words: impl IntoIterator<Item = &'a str>) -> Self {
        for w in words {
            self.words.push((topic.to_string(), w.to_string(), None));
        }
        self
    }

    /// Assign words to a topic with a custom spread — larger values put
    /// them at the topic's *periphery* (semantic near-misses: plausible
    /// enough to fool a lenient matcher, far enough to be wrong).
    pub fn words_with_spread<'a>(
        mut self,
        topic: &str,
        words: impl IntoIterator<Item = &'a str>,
        spread: f32,
    ) -> Self {
        for w in words {
            self.words
                .push((topic.to_string(), w.to_string(), Some(spread)));
        }
        self
    }

    /// Place a word between two topics (lexical ambiguity): its vector is
    /// `mix * centroid_a + (1 - mix) * centroid_b` plus noise.
    pub fn ambiguous_word(mut self, word: &str, topic_a: &str, topic_b: &str, mix: f32) -> Self {
        self.ambiguous.push((
            word.to_string(),
            topic_a.to_string(),
            topic_b.to_string(),
            mix,
        ));
        self
    }

    /// Add topic-less words (random directions — realistic "everything
    /// else" vocabulary).
    pub fn generic_words<'a>(mut self, words: impl IntoIterator<Item = &'a str>) -> Self {
        self.generic.extend(words.into_iter().map(str::to_string));
        self
    }

    /// Build the space.
    ///
    /// # Panics
    /// If a word references an undeclared topic, or a correlated topic
    /// references a topic declared after it.
    pub fn build(self) -> SemanticSpace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut centroids: HashMap<String, Vector> = HashMap::new();

        for spec in &self.topics {
            let mut c = random_unit(&mut rng, self.dim);
            if let Some((other, mix)) = &spec.correlate_with {
                let base = centroids
                    .get(other)
                    .unwrap_or_else(|| {
                        panic!(
                            "correlated topic `{other}` not declared before `{}`",
                            spec.name
                        )
                    })
                    .clone();
                for (ci, bi) in c.0.iter_mut().zip(&base.0) {
                    *ci = *ci * (1.0 - mix) + bi * mix;
                }
                c.normalize();
            }
            centroids.insert(spec.name.clone(), c);
        }

        let mut store = VectorStore::new(self.dim);
        for (topic, word, spread) in &self.words {
            let centroid = centroids
                .get(topic)
                .unwrap_or_else(|| panic!("word `{word}` references undeclared topic `{topic}`"));
            // Per-word jitter: real embedding tables have heterogeneous
            // tightness (frequent words sit near the topic core, rare
            // ones drift). Without it, intra-topic similarities
            // concentrate around one value and a threshold sweep turns
            // into a cliff.
            let jitter = 0.5 + 1.1 * rng.random::<f32>();
            store.insert(
                word,
                perturb(&mut rng, centroid, spread.unwrap_or(self.spread) * jitter),
            );
        }
        for (word, ta, tb, mix) in &self.ambiguous {
            let ca = centroids.get(ta).unwrap_or_else(|| {
                panic!("ambiguous word `{word}` references undeclared topic `{ta}`")
            });
            let cb = centroids.get(tb).unwrap_or_else(|| {
                panic!("ambiguous word `{word}` references undeclared topic `{tb}`")
            });
            let mut v = Vector::zeros(self.dim);
            for ((vi, ai), bi) in v.0.iter_mut().zip(&ca.0).zip(&cb.0) {
                *vi = ai * mix + bi * (1.0 - mix);
            }
            v.normalize();
            store.insert(word, perturb(&mut rng, &v, self.spread * 0.5));
        }
        for word in &self.generic {
            store.insert(word, random_unit(&mut rng, self.dim));
        }

        SemanticSpace { store, centroids }
    }
}

/// Sample a standard normal via Box–Muller (rand's core API only ships
/// uniform sampling without the `rand_distr` crate).
fn gauss(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// A random unit vector (isotropic direction).
fn random_unit(rng: &mut StdRng, dim: usize) -> Vector {
    let mut v = Vector((0..dim).map(|_| gauss(rng)).collect());
    v.normalize();
    // A zero draw is astronomically unlikely; fall back to a basis vector.
    if v.norm() == 0.0 {
        v.0[0] = 1.0;
    }
    v
}

/// Centroid plus Gaussian noise, re-normalized. The per-dimension noise
/// is scaled by `1/√dim` so that the *total* noise norm is ≈ `sigma`
/// regardless of dimensionality; two words of the same topic then have
/// expected cosine ≈ `1 / (1 + sigma²)`.
fn perturb(rng: &mut StdRng, centroid: &Vector, sigma: f32) -> Vector {
    let mut v = centroid.clone();
    let scale = sigma / (v.dim() as f32).sqrt();
    for x in &mut v.0 {
        *x += scale * gauss(rng);
    }
    v.normalize();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::cosine;

    fn demo_space(seed: u64) -> SemanticSpace {
        SemanticSpaceBuilder::new(32, seed)
            .topic("anatomy")
            .correlated_topic("complication", "anatomy", 0.4)
            .topic("medicine")
            .words("anatomy", ["brain", "nerve", "lung", "heart", "spine"])
            .words(
                "complication",
                ["cancer", "stroke", "deafness", "paralysis"],
            )
            .words("medicine", ["aspirin", "ibuprofen", "antibiotic"])
            .ambiguous_word("blood", "anatomy", "complication", 0.6)
            .generic_words(["walk", "green", "table", "quick"])
            .build()
    }

    #[test]
    fn same_topic_words_cluster() {
        let space = demo_space(7);
        let s = space.store();
        let intra = s.phrase_similarity("brain", "nerve").unwrap();
        let inter = s.phrase_similarity("brain", "aspirin").unwrap();
        assert!(intra > inter, "intra {intra} should exceed inter {inter}");
    }

    #[test]
    fn correlated_topics_are_closer_than_independent() {
        let space = demo_space(7);
        let anat = space.centroid("anatomy").unwrap();
        let compl = space.centroid("complication").unwrap();
        let med = space.centroid("medicine").unwrap();
        assert!(cosine(anat, compl) > cosine(anat, med));
    }

    #[test]
    fn ambiguous_word_between_topics() {
        let space = demo_space(7);
        let blood = space.store().get("blood").unwrap();
        let anat = space.centroid("anatomy").unwrap();
        let med = space.centroid("medicine").unwrap();
        assert!(cosine(blood, anat) > cosine(blood, med));
        // But it is also meaningfully similar to complication.
        let compl = space.centroid("complication").unwrap();
        assert!(cosine(blood, compl) > 0.2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = demo_space(42);
        let b = demo_space(42);
        assert_eq!(a.store().get("brain"), b.store().get("brain"));
        let c = demo_space(43);
        assert_ne!(a.store().get("brain"), c.store().get("brain"));
    }

    #[test]
    fn oov_words_absent() {
        let space = demo_space(7);
        assert!(space.store().get("xylophone").is_none());
    }

    #[test]
    fn tighter_spread_means_tighter_clusters() {
        let build = |spread: f32| {
            SemanticSpaceBuilder::new(32, 5)
                .spread(spread)
                .topic("t")
                .words("t", ["a", "b", "c", "d", "e", "f"])
                .build()
        };
        let avg_sim = |space: &SemanticSpace| {
            let s = space.store();
            let words = ["a", "b", "c", "d", "e", "f"];
            let mut total = 0.0;
            let mut n = 0;
            for i in 0..words.len() {
                for j in (i + 1)..words.len() {
                    total += s.phrase_similarity(words[i], words[j]).unwrap();
                    n += 1;
                }
            }
            total / n as f64
        };
        assert!(avg_sim(&build(0.1)) > avg_sim(&build(0.8)));
    }

    #[test]
    fn peripheral_words_are_farther_from_centroid() {
        let space = SemanticSpaceBuilder::new(32, 13)
            .spread(0.3)
            .topic("t")
            .words("t", ["core1", "core2", "core3"])
            .words_with_spread("t", ["edge1", "edge2", "edge3"], 1.5)
            .build();
        let c = space.centroid("t").unwrap().clone();
        let avg = |words: &[&str]| {
            words
                .iter()
                .map(|w| cosine(space.store().get(w).unwrap(), &c))
                .sum::<f64>()
                / words.len() as f64
        };
        assert!(avg(&["core1", "core2", "core3"]) > avg(&["edge1", "edge2", "edge3"]));
    }

    #[test]
    #[should_panic(expected = "undeclared topic")]
    fn unknown_topic_panics() {
        SemanticSpaceBuilder::new(8, 1).word("ghost", "x").build();
    }

    #[test]
    fn all_vectors_unit_length() {
        let space = demo_space(11);
        for (_, v) in space.store().iter() {
            assert!((v.norm() - 1.0).abs() < 1e-5);
        }
    }
}
