//! 8-bit quantized vector storage.
//!
//! Production embedding tables are large (spaCy's `en_core_web_md`
//! vectors alone are ~40 MB); at 8 bits per dimension with a per-word
//! scale, memory drops 4× with negligible cosine error — quantized
//! cosine ranking is what real vector systems deploy. The THOR matcher
//! only consumes cosine similarities, so a [`QuantizedStore`] can stand
//! in for a [`VectorStore`] wherever memory matters.

use std::collections::HashMap;

use crate::store::VectorStore;
use crate::vector::Vector;

/// A word-embedding table quantized to `i8` codes with one `f32` scale
/// per word (symmetric linear quantization).
#[derive(Debug, Clone)]
pub struct QuantizedStore {
    dim: usize,
    /// word → (scale, codes).
    entries: HashMap<String, (f32, Vec<i8>)>,
}

impl QuantizedStore {
    /// Quantize every vector of `store`.
    pub fn from_store(store: &VectorStore) -> Self {
        let mut entries = HashMap::new();
        for (word, v) in store.iter() {
            entries.insert(word.to_string(), quantize(v));
        }
        Self {
            dim: store.dim(),
            entries,
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate bytes used by the quantized codes (excluding the word
    /// strings and map overhead) — the comparable figure for the f32
    /// table is `len × dim × 4`.
    pub fn code_bytes(&self) -> usize {
        self.entries.len() * (self.dim + std::mem::size_of::<f32>())
    }

    /// Dequantize one word's vector.
    pub fn get(&self, word: &str) -> Option<Vector> {
        let norm = thor_text::normalize_phrase(word);
        self.entries
            .get(&norm)
            .map(|(scale, codes)| dequantize(*scale, codes))
    }

    /// Reconstruct a full-precision [`VectorStore`] (with quantization
    /// error baked in).
    pub fn to_store(&self) -> VectorStore {
        let mut store = VectorStore::new(self.dim);
        for (word, (scale, codes)) in &self.entries {
            store.insert(word, dequantize(*scale, codes));
        }
        store
    }
}

/// Symmetric linear quantization: `scale = max|x| / 127`.
fn quantize(v: &Vector) -> (f32, Vec<i8>) {
    let max = v.0.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max == 0.0 {
        return (0.0, vec![0; v.dim()]);
    }
    let scale = max / 127.0;
    let codes =
        v.0.iter()
            .map(|&x| (x / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
    (scale, codes)
}

fn dequantize(scale: f32, codes: &[i8]) -> Vector {
    Vector(codes.iter().map(|&c| c as f32 * scale).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SemanticSpaceBuilder;
    use crate::vector::cosine;

    fn store() -> VectorStore {
        SemanticSpaceBuilder::new(32, 5)
            .topic("a")
            .topic("b")
            .words("a", ["ape", "ant", "asp"])
            .words("b", ["bee", "bat", "boa"])
            .build()
            .into_store()
    }

    #[test]
    fn round_trip_error_is_small() {
        let s = store();
        let q = QuantizedStore::from_store(&s);
        for (word, original) in s.iter() {
            let deq = q.get(word).expect("present");
            let sim = cosine(original, &deq);
            assert!(sim > 0.999, "{word}: quantized cosine {sim}");
        }
    }

    #[test]
    fn pairwise_similarities_preserved() {
        let s = store();
        let q = QuantizedStore::from_store(&s).to_store();
        let words = ["ape", "ant", "asp", "bee", "bat", "boa"];
        for a in words {
            for b in words {
                let orig = s.phrase_similarity(a, b).unwrap();
                let quant = q.phrase_similarity(a, b).unwrap();
                assert!(
                    (orig - quant).abs() < 0.01,
                    "{a}/{b}: {orig:.4} vs {quant:.4}"
                );
            }
        }
    }

    #[test]
    fn memory_is_quarter_of_f32() {
        let s = store();
        let q = QuantizedStore::from_store(&s);
        let f32_bytes = s.len() * s.dim() * 4;
        assert!(
            q.code_bytes() < f32_bytes / 2,
            "{} vs {f32_bytes}",
            q.code_bytes()
        );
    }

    #[test]
    fn zero_vector_survives() {
        let mut s = VectorStore::new(4);
        s.insert("zero", Vector::zeros(4));
        let q = QuantizedStore::from_store(&s);
        assert_eq!(q.get("zero").unwrap(), Vector::zeros(4));
    }

    #[test]
    fn missing_word_is_none() {
        let q = QuantizedStore::from_store(&store());
        assert!(q.get("zzz").is_none());
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
    }

    #[test]
    fn pipeline_runs_on_quantized_vectors() {
        // The matcher consumes a reconstructed store transparently.
        use thor_text::normalize_phrase;
        let s = store();
        let q = QuantizedStore::from_store(&s).to_store();
        let sim = q.phrase_similarity("ape", "ant").unwrap();
        assert!(sim > 0.0);
        let _ = normalize_phrase("ape"); // silence unused-import pedantry in some configs
    }
}
