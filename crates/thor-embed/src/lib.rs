#![warn(missing_docs)]
//! # thor-embed
//!
//! Static word-embedding substrate for the THOR reproduction.
//!
//! The paper's semantic matcher runs on pre-trained static word vectors
//! (spaCy `en_core_web_md`, trained on OntoNotes 5 and Wikipedia). Those
//! vectors are a proprietary binary asset we cannot ship, so this crate
//! provides two interchangeable sources that exercise the same code path
//! (cosine similarity between mean-pooled phrase vectors):
//!
//! * [`space`] — a **synthetic semantic space**: each schema concept owns a
//!   topic centroid in ℝ^d, words of that concept's domain are sampled
//!   around the centroid, and the builder exposes the knobs THOR's
//!   evaluation depends on (inter-concept correlation, lexical ambiguity,
//!   out-of-vocabulary rate);
//! * [`sgns`] — a from-scratch **skip-gram negative-sampling (word2vec)**
//!   trainer, demonstrating that the same cluster structure emerges from
//!   co-occurrence statistics of the generated corpus;
//! * [`ppmi`] — a count-based alternative: **PPMI co-occurrence matrix +
//!   truncated SVD** (randomized subspace iteration + Jacobi), the
//!   pre-neural static-embedding recipe.
//!
//! All fill a [`VectorStore`] (with text (de)serialization for
//! artifacts), the only interface the rest of the system sees.

pub mod ppmi;
pub mod quant;
pub mod sgns;
pub mod space;
pub mod store;
pub mod vector;

pub use ppmi::{PpmiConfig, PpmiSvdTrainer};
pub use quant::QuantizedStore;
pub use sgns::{SgnsConfig, SgnsTrainer};
pub use space::{SemanticSpace, SemanticSpaceBuilder, TopicSpec};
pub use store::VectorStore;
pub use vector::{cosine, mean_of_rows, slice_cosine, slice_norm, Vector};
