//! Count-based embeddings: PPMI + truncated SVD.
//!
//! The classic pre-neural way to build static word vectors (Levy &
//! Goldberg 2014 showed SGNS implicitly factorizes a shifted PMI
//! matrix): count word co-occurrences in a sliding window, weight them
//! by positive pointwise mutual information, and factorize with a
//! truncated SVD. We implement the factorization from scratch with
//! randomized subspace iteration (Halko et al. 2011) — no linear-algebra
//! dependencies.
//!
//! This gives the workspace a second *learned* embedding source next to
//! [`crate::sgns`], with very different mechanics; the pipeline must
//! work on either (see the `train_embeddings` example and tests).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::store::VectorStore;
use crate::vector::Vector;

/// Hyper-parameters for PPMI-SVD training.
#[derive(Debug, Clone)]
pub struct PpmiConfig {
    /// Embedding dimensionality (rank of the truncated SVD).
    pub dim: usize,
    /// Symmetric co-occurrence window radius.
    pub window: usize,
    /// Words rarer than this are dropped.
    pub min_count: usize,
    /// PMI shift (`log k` of SGNS's negative count); 0 disables.
    pub shift: f64,
    /// Subspace-iteration rounds (2–4 suffice in practice).
    pub power_iterations: usize,
    /// RNG seed for the randomized range finder.
    pub seed: u64,
}

impl Default for PpmiConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            window: 4,
            min_count: 2,
            shift: 0.0,
            power_iterations: 3,
            seed: 0x5EED,
        }
    }
}

/// PPMI + truncated SVD trainer.
#[derive(Debug)]
pub struct PpmiSvdTrainer {
    config: PpmiConfig,
}

/// A sparse symmetric matrix in coordinate form: row → (col → value).
type SparseRows = Vec<HashMap<usize, f64>>;

impl PpmiSvdTrainer {
    /// Create a trainer.
    pub fn new(config: PpmiConfig) -> Self {
        assert!(config.dim > 0 && config.window > 0);
        Self { config }
    }

    /// Train on a tokenized corpus; returns the word-embedding table
    /// (rows of `U·√Σ`, normalized).
    #[allow(clippy::needless_range_loop)] // matrix kernels read clearer with indices
    pub fn train(&self, corpus: &[Vec<String>]) -> VectorStore {
        let cfg = &self.config;

        // ---- vocabulary ----
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for sent in corpus {
            for w in sent {
                *counts.entry(w.as_str()).or_insert(0) += 1;
            }
        }
        let mut vocab: Vec<&str> = counts
            .iter()
            .filter(|&(_, &c)| c >= cfg.min_count)
            .map(|(&w, _)| w)
            .collect();
        vocab.sort_unstable();
        if vocab.is_empty() {
            return VectorStore::new(cfg.dim);
        }
        let index: HashMap<&str, usize> = vocab.iter().enumerate().map(|(i, &w)| (w, i)).collect();
        let n = vocab.len();

        // ---- co-occurrence counts ----
        let mut cooc: SparseRows = vec![HashMap::new(); n];
        let mut row_sums = vec![0.0f64; n];
        let mut total = 0.0f64;
        for sent in corpus {
            let ids: Vec<usize> = sent
                .iter()
                .filter_map(|w| index.get(w.as_str()).copied())
                .collect();
            for (i, &a) in ids.iter().enumerate() {
                let hi = (i + cfg.window + 1).min(ids.len());
                for &b in &ids[i + 1..hi] {
                    *cooc[a].entry(b).or_insert(0.0) += 1.0;
                    *cooc[b].entry(a).or_insert(0.0) += 1.0;
                    row_sums[a] += 1.0;
                    row_sums[b] += 1.0;
                    total += 2.0;
                }
            }
        }
        if total == 0.0 {
            return VectorStore::new(cfg.dim);
        }

        // ---- PPMI transform (in place) ----
        for (a, row) in cooc.iter_mut().enumerate() {
            row.retain(|&b, v| {
                let pmi = ((*v * total) / (row_sums[a] * row_sums[b])).ln() - cfg.shift;
                if pmi > 0.0 {
                    *v = pmi;
                    true
                } else {
                    false
                }
            });
        }

        // ---- randomized truncated eigendecomposition ----
        // The PPMI matrix M is symmetric, so its SVD coincides with its
        // eigendecomposition up to signs; subspace iteration on M gives
        // the dominant invariant subspace Q, and M ≈ Q (QᵀMQ) Qᵀ.
        let k = cfg.dim.min(n);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Q: n×k, random init then orthonormalized.
        let mut q: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..n).map(|_| rng.random::<f64>() - 0.5).collect())
            .collect();
        orthonormalize(&mut q);
        for _ in 0..cfg.power_iterations.max(1) {
            let mut next: Vec<Vec<f64>> = q.iter().map(|col| spmv(&cooc, col)).collect();
            orthonormalize(&mut next);
            q = next;
        }
        // B = QᵀMQ (k×k), dense symmetric.
        let mq: Vec<Vec<f64>> = q.iter().map(|col| spmv(&cooc, col)).collect();
        let mut b = vec![vec![0.0f64; k]; k];
        for i in 0..k {
            for j in 0..k {
                b[i][j] = dot(&q[i], &mq[j]);
            }
        }
        // Eigendecomposition of the small B by Jacobi rotation.
        let (evals, evecs) = jacobi_eigen(&mut b, 100);

        // Embedding: rows of Q·V·√|Λ|  (n×k).
        let mut store = VectorStore::new(k);
        for (wi, &word) in vocab.iter().enumerate() {
            let mut v = Vec::with_capacity(k);
            for e in 0..k {
                // coordinate e of word wi: Σ_c Q[c][wi] * V[c][e] * sqrt(|λ_e|)
                let mut x = 0.0;
                for c in 0..k {
                    x += q[c][wi] * evecs[c][e];
                }
                v.push((x * evals[e].abs().sqrt()) as f32);
            }
            let mut vec = Vector(v);
            vec.normalize();
            store.insert(word, vec);
        }
        store
    }
}

/// Sparse-matrix × dense-vector product.
fn spmv(rows: &SparseRows, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0f64; x.len()];
    for (a, row) in rows.iter().enumerate() {
        let mut acc = 0.0;
        for (&b, &v) in row {
            acc += v * x[b];
        }
        y[a] = acc;
    }
    y
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Modified Gram–Schmidt over the column set.
fn orthonormalize(cols: &mut [Vec<f64>]) {
    for i in 0..cols.len() {
        for j in 0..i {
            let (head, tail) = cols.split_at_mut(i);
            let proj = dot(&head[j], &tail[0]);
            for (t, h) in tail[0].iter_mut().zip(&head[j]) {
                *t -= proj * h;
            }
        }
        let norm = dot(&cols[i], &cols[i]).sqrt();
        if norm > 1e-12 {
            for x in &mut cols[i] {
                *x /= norm;
            }
        }
    }
}

/// Cyclic Jacobi eigendecomposition of a small symmetric matrix.
/// Returns (eigenvalues, eigenvector matrix V with `V[row][col]`,
/// columns = eigenvectors), sorted by |λ| descending.
#[allow(clippy::needless_range_loop)] // rotation kernel mirrors the textbook algorithm
fn jacobi_eigen(a: &mut [Vec<f64>], sweeps: usize) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    let mut v = vec![vec![0.0f64; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _ in 0..sweeps {
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += a[p][q] * a[p][q];
            }
        }
        if off < 1e-18 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-15 {
                    continue;
                }
                let theta = 0.5 * (2.0 * a[p][q]).atan2(a[q][q] - a[p][p]);
                let (s, c) = theta.sin_cos();
                for i in 0..n {
                    let (aip, aiq) = (a[i][p], a[i][q]);
                    a[i][p] = c * aip - s * aiq;
                    a[i][q] = s * aip + c * aiq;
                }
                for i in 0..n {
                    let (api, aqi) = (a[p][i], a[q][i]);
                    a[p][i] = c * api - s * aqi;
                    a[q][i] = s * api + c * aqi;
                }
                for row in v.iter_mut() {
                    let (vip, viq) = (row[p], row[q]);
                    row[p] = c * vip - s * viq;
                    row[q] = s * vip + c * viq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[j][j].abs().total_cmp(&a[i][i].abs()));
    let evals: Vec<f64> = order.iter().map(|&i| a[i][i]).collect();
    let evecs: Vec<Vec<f64>> = (0..n)
        .map(|row| order.iter().map(|&col| v[row][col]).collect())
        .collect();
    // Transpose convention: we want evecs[c][e] = component c of the
    // e-th eigenvector — that is exactly `evecs` as built (row = c).
    (evals, evecs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topical_corpus(sentences: usize) -> Vec<Vec<String>> {
        let mut rng = StdRng::seed_from_u64(99);
        let anatomy = ["brain", "nerve", "lung", "heart", "spine", "tissue"];
        let medicine = [
            "aspirin",
            "ibuprofen",
            "antibiotic",
            "dose",
            "tablet",
            "drug",
        ];
        let glue = ["the", "with", "and"];
        let mut corpus = Vec::new();
        for i in 0..sentences {
            let topic: &[&str] = if i % 2 == 0 { &anatomy } else { &medicine };
            let mut sent = Vec::new();
            for _ in 0..8 {
                if rng.random::<f64>() < 0.25 {
                    sent.push(glue[rng.random_range(0..glue.len())].to_string());
                } else {
                    sent.push(topic[rng.random_range(0..topic.len())].to_string());
                }
            }
            corpus.push(sent);
        }
        corpus
    }

    #[test]
    fn empty_corpus_gives_empty_store() {
        let store = PpmiSvdTrainer::new(PpmiConfig::default()).train(&[]);
        assert!(store.is_empty());
    }

    #[test]
    fn learns_topical_clusters() {
        let corpus = topical_corpus(300);
        let cfg = PpmiConfig {
            dim: 16,
            ..Default::default()
        };
        let store = PpmiSvdTrainer::new(cfg).train(&corpus);
        let avg = |pairs: &[(&str, &str)]| {
            pairs
                .iter()
                .map(|(a, b)| store.phrase_similarity(a, b).unwrap())
                .sum::<f64>()
                / pairs.len() as f64
        };
        let intra = avg(&[("brain", "nerve"), ("lung", "heart"), ("aspirin", "tablet")]);
        let inter = avg(&[("brain", "aspirin"), ("lung", "drug"), ("nerve", "dose")]);
        assert!(
            intra > inter,
            "intra {intra:.3} must exceed inter {inter:.3}"
        );
    }

    #[test]
    fn deterministic() {
        let corpus = topical_corpus(50);
        let a = PpmiSvdTrainer::new(PpmiConfig::default()).train(&corpus);
        let b = PpmiSvdTrainer::new(PpmiConfig::default()).train(&corpus);
        assert_eq!(a.get("brain"), b.get("brain"));
    }

    #[test]
    fn min_count_respected() {
        let corpus = vec![
            vec![
                "common".to_string(),
                "common".to_string(),
                "rare".to_string(),
            ],
            vec!["common".to_string(), "common".to_string()],
        ];
        let cfg = PpmiConfig {
            min_count: 2,
            ..Default::default()
        };
        let store = PpmiSvdTrainer::new(cfg).train(&corpus);
        assert!(store.contains("common"));
        assert!(!store.contains("rare"));
    }

    #[test]
    fn jacobi_on_known_matrix() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let mut m = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let (evals, evecs) = jacobi_eigen(&mut m, 50);
        assert!((evals[0] - 3.0).abs() < 1e-9, "{evals:?}");
        assert!((evals[1] - 1.0).abs() < 1e-9);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let ratio = evecs[0][0] / evecs[1][0];
        assert!((ratio - 1.0).abs() < 1e-6, "{evecs:?}");
    }

    #[test]
    fn vectors_unit_length_and_right_dim() {
        let corpus = topical_corpus(60);
        let cfg = PpmiConfig {
            dim: 8,
            ..Default::default()
        };
        let store = PpmiSvdTrainer::new(cfg).train(&corpus);
        assert_eq!(store.dim(), 8);
        for (_, v) in store.iter() {
            assert!((v.norm() - 1.0).abs() < 1e-4);
        }
    }
}
