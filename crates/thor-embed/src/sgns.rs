//! Skip-gram with negative sampling (word2vec), from scratch.
//!
//! The paper's embeddings were *learned* from large corpora (OntoNotes,
//! Wikipedia) — their cluster structure is an emergent property of word
//! co-occurrence. To show the reproduction does not depend on the oracle
//! geometry of [`crate::space`], this module implements the SGNS training
//! objective (Mikolov et al., 2013): for each (center, context) pair drawn
//! from a sliding window, maximize `log σ(u_ctx · v_center)` plus
//! `Σ log σ(−u_neg · v_center)` over `k` negatives drawn from the
//! unigram^0.75 distribution, by SGD.
//!
//! Tests verify that training on a topical corpus produces a
//! [`VectorStore`] where same-topic words are closer than cross-topic
//! words — the only property THOR consumes.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::store::VectorStore;
use crate::vector::Vector;

/// Hyper-parameters for SGNS training.
#[derive(Debug, Clone)]
pub struct SgnsConfig {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Symmetric context-window radius.
    pub window: usize,
    /// Number of negative samples per positive pair.
    pub negatives: usize,
    /// Initial learning rate (linearly decayed to 1e-4 of itself).
    pub learning_rate: f32,
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Words rarer than this are dropped from the vocabulary.
    pub min_count: usize,
    /// Subsampling threshold `t` (word2vec's `-sample`); 0 disables.
    pub subsample: f64,
    /// RNG seed — training is fully deterministic.
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            window: 4,
            negatives: 5,
            learning_rate: 0.05,
            epochs: 8,
            min_count: 2,
            subsample: 1e-3,
            seed: 0xC0FFEE,
        }
    }
}

/// SGNS trainer. Build with a config, then call [`SgnsTrainer::train`].
#[derive(Debug)]
pub struct SgnsTrainer {
    config: SgnsConfig,
}

impl SgnsTrainer {
    /// Create a trainer.
    pub fn new(config: SgnsConfig) -> Self {
        assert!(config.dim > 0 && config.window > 0 && config.epochs > 0);
        Self { config }
    }

    /// Train on a corpus of tokenized sentences and return the input
    /// (center-word) embedding table. Returns an empty store when the
    /// corpus has no word above `min_count`.
    #[allow(clippy::needless_range_loop)] // SGD kernel reads clearer with indices
    pub fn train(&self, corpus: &[Vec<String>]) -> VectorStore {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // ---- vocabulary ----
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for sent in corpus {
            for w in sent {
                *counts.entry(w.as_str()).or_insert(0) += 1;
            }
        }
        let mut vocab: Vec<(&str, usize)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= cfg.min_count)
            .collect();
        // Deterministic ordering: by count desc, then lexicographic.
        vocab.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        if vocab.is_empty() {
            return VectorStore::new(cfg.dim);
        }
        let index: HashMap<&str, usize> = vocab
            .iter()
            .enumerate()
            .map(|(i, &(w, _))| (w, i))
            .collect();
        let total_tokens: usize = vocab.iter().map(|&(_, c)| c).sum();

        // ---- negative-sampling table (unigram^0.75) ----
        let pow: Vec<f64> = vocab.iter().map(|&(_, c)| (c as f64).powf(0.75)).collect();
        let pow_sum: f64 = pow.iter().sum();
        const TABLE_SIZE: usize = 1 << 16;
        let mut neg_table = Vec::with_capacity(TABLE_SIZE);
        {
            let mut i = 0usize;
            let mut cum = pow[0] / pow_sum;
            for t in 0..TABLE_SIZE {
                neg_table.push(i);
                if (t as f64 + 1.0) / TABLE_SIZE as f64 > cum && i + 1 < vocab.len() {
                    i += 1;
                    cum += pow[i] / pow_sum;
                }
            }
        }

        // ---- subsampling keep-probabilities ----
        let keep_prob: Vec<f64> = vocab
            .iter()
            .map(|&(_, c)| {
                if cfg.subsample <= 0.0 {
                    return 1.0;
                }
                let f = c as f64 / total_tokens as f64;
                ((cfg.subsample / f).sqrt() + cfg.subsample / f).min(1.0)
            })
            .collect();

        // ---- parameter init ----
        let v = vocab.len();
        let d = cfg.dim;
        let mut input: Vec<f32> = (0..v * d)
            .map(|_| (rng.random::<f32>() - 0.5) / d as f32)
            .collect();
        let mut output: Vec<f32> = vec![0.0; v * d];

        // ---- encode corpus once ----
        let encoded: Vec<Vec<usize>> = corpus
            .iter()
            .map(|s| {
                s.iter()
                    .filter_map(|w| index.get(w.as_str()).copied())
                    .collect()
            })
            .collect();
        let pair_estimate: usize = encoded.iter().map(Vec::len).sum::<usize>().max(1) * cfg.epochs;

        // ---- SGD ----
        let mut processed = 0usize;
        let mut grad = vec![0.0f32; d];
        for _epoch in 0..cfg.epochs {
            for sent in &encoded {
                let kept: Vec<usize> = sent
                    .iter()
                    .copied()
                    .filter(|&w| rng.random::<f64>() < keep_prob[w])
                    .collect();
                for (pos, &center) in kept.iter().enumerate() {
                    processed += 1;
                    let lr = (cfg.learning_rate * (1.0 - processed as f32 / pair_estimate as f32))
                        .max(cfg.learning_rate * 1e-4);
                    let b = rng.random_range(0..cfg.window);
                    let lo = pos.saturating_sub(cfg.window - b);
                    let hi = (pos + cfg.window - b + 1).min(kept.len());
                    for ctx_pos in lo..hi {
                        if ctx_pos == pos {
                            continue;
                        }
                        let context = kept[ctx_pos];
                        grad.iter_mut().for_each(|g| *g = 0.0);
                        let vrow = center * d;
                        // positive + negatives
                        for sample in 0..=cfg.negatives {
                            let (target, label) = if sample == 0 {
                                (context, 1.0f32)
                            } else {
                                let t = neg_table[rng.random_range(0..TABLE_SIZE)];
                                if t == context {
                                    continue;
                                }
                                (t, 0.0)
                            };
                            let urow = target * d;
                            let mut dot = 0.0f32;
                            for k in 0..d {
                                dot += input[vrow + k] * output[urow + k];
                            }
                            let pred = sigmoid(dot);
                            let g = (label - pred) * lr;
                            for k in 0..d {
                                grad[k] += g * output[urow + k];
                                output[urow + k] += g * input[vrow + k];
                            }
                        }
                        for k in 0..d {
                            input[vrow + k] += grad[k];
                        }
                    }
                }
            }
        }

        // ---- export ----
        let mut store = VectorStore::new(d);
        for (i, &(word, _)) in vocab.iter().enumerate() {
            let mut vec = Vector(input[i * d..(i + 1) * d].to_vec());
            vec.normalize();
            store.insert(word, vec);
        }
        store
    }
}

fn sigmoid(x: f32) -> f32 {
    if x > 8.0 {
        1.0
    } else if x < -8.0 {
        0.0
    } else {
        1.0 / (1.0 + (-x).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generate a topical toy corpus: two topics with disjoint content
    /// vocabulary, shared function words.
    fn topical_corpus(seed: u64, sentences: usize) -> Vec<Vec<String>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let anatomy = ["brain", "nerve", "lung", "heart", "spine", "tissue"];
        let medicine = [
            "aspirin",
            "ibuprofen",
            "antibiotic",
            "dose",
            "tablet",
            "drug",
        ];
        let glue = ["the", "affects", "with", "and", "treats"];
        let mut corpus = Vec::new();
        for i in 0..sentences {
            let topic: &[&str] = if i % 2 == 0 { &anatomy } else { &medicine };
            let mut sent = Vec::new();
            for _ in 0..8 {
                if rng.random::<f64>() < 0.3 {
                    sent.push(glue[rng.random_range(0..glue.len())].to_string());
                } else {
                    sent.push(topic[rng.random_range(0..topic.len())].to_string());
                }
            }
            corpus.push(sent);
        }
        corpus
    }

    #[test]
    fn empty_corpus_gives_empty_store() {
        let trainer = SgnsTrainer::new(SgnsConfig::default());
        let store = trainer.train(&[]);
        assert!(store.is_empty());
    }

    #[test]
    fn min_count_filters_rare_words() {
        let corpus = vec![
            vec![
                "common".to_string(),
                "common".to_string(),
                "rare".to_string(),
            ],
            vec!["common".to_string(), "common".to_string()],
        ];
        let cfg = SgnsConfig {
            min_count: 2,
            epochs: 1,
            ..Default::default()
        };
        let store = SgnsTrainer::new(cfg).train(&corpus);
        assert!(store.contains("common"));
        assert!(!store.contains("rare"));
    }

    #[test]
    fn deterministic_given_seed() {
        let corpus = topical_corpus(1, 60);
        let cfg = SgnsConfig {
            epochs: 2,
            ..Default::default()
        };
        let a = SgnsTrainer::new(cfg.clone()).train(&corpus);
        let b = SgnsTrainer::new(cfg).train(&corpus);
        assert_eq!(a.get("brain"), b.get("brain"));
    }

    #[test]
    fn learns_topical_clusters() {
        // The core claim: co-occurrence training separates topics.
        let corpus = topical_corpus(7, 400);
        let cfg = SgnsConfig {
            dim: 24,
            epochs: 10,
            min_count: 2,
            ..Default::default()
        };
        let store = SgnsTrainer::new(cfg).train(&corpus);

        let intra_pairs = [
            ("brain", "nerve"),
            ("lung", "heart"),
            ("aspirin", "ibuprofen"),
        ];
        let inter_pairs = [("brain", "aspirin"), ("lung", "tablet"), ("nerve", "drug")];
        let avg = |pairs: &[(&str, &str)]| {
            pairs
                .iter()
                .map(|(a, b)| store.phrase_similarity(a, b).unwrap())
                .sum::<f64>()
                / pairs.len() as f64
        };
        let intra = avg(&intra_pairs);
        let inter = avg(&inter_pairs);
        assert!(
            intra > inter,
            "same-topic similarity {intra:.3} should exceed cross-topic {inter:.3}"
        );
    }

    #[test]
    fn vectors_are_unit_length() {
        let corpus = topical_corpus(3, 50);
        let store = SgnsTrainer::new(SgnsConfig {
            epochs: 1,
            ..Default::default()
        })
        .train(&corpus);
        for (_, v) in store.iter() {
            assert!((v.norm() - 1.0).abs() < 1e-5);
        }
    }
}
