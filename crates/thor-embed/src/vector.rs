//! Dense vector type and the similarity kernels THOR runs on.
//!
//! Vectors are `f32` (like every embedding table in practice); similarity
//! math accumulates in `f64` for stability. Cosine similarity is the hot
//! kernel of the whole system — it is called for every (subphrase,
//! representative-vector) pair — so it stays branch-free over slices.

use std::ops::{Add, AddAssign};

/// A dense embedding vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector(pub Vec<f32>);

impl Vector {
    /// A zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Vector(vec![0.0; dim])
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// The raw `f32` components, for structure-of-arrays export into
    /// the `thor-index` row buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.0
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Dot product. Panics if dimensions differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum()
    }

    /// Scale in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.0 {
            *x *= s;
        }
    }

    /// Normalize to unit length in place; zero vectors stay zero.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            let inv = (1.0 / n) as f32;
            self.scale(inv);
        }
    }

    /// Arithmetic mean of a non-empty set of equal-dimension vectors;
    /// `None` for an empty input.
    pub fn mean<'a>(vectors: impl IntoIterator<Item = &'a Vector>) -> Option<Vector> {
        let mut iter = vectors.into_iter();
        let first = iter.next()?;
        let mut acc = first.clone();
        let mut count = 1usize;
        for v in iter {
            acc += v;
            count += 1;
        }
        acc.scale(1.0 / count as f32);
        Some(acc)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.dim(), rhs.dim(), "dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&rhs.0) {
            *a += b;
        }
    }
}

impl Add<&Vector> for Vector {
    type Output = Vector;
    fn add(mut self, rhs: &Vector) -> Vector {
        self += rhs;
        self
    }
}

impl From<Vec<f32>> for Vector {
    fn from(v: Vec<f32>) -> Self {
        Vector(v)
    }
}

/// Cosine similarity in `[-1, 1]`; 0.0 if either vector is zero.
///
/// ```
/// use thor_embed::{cosine, Vector};
/// let a = Vector(vec![1.0, 0.0]);
/// let b = Vector(vec![0.0, 1.0]);
/// assert_eq!(cosine(&a, &b), 0.0);
/// assert!((cosine(&a, &a) - 1.0).abs() < 1e-9);
/// ```
pub fn cosine(a: &Vector, b: &Vector) -> f64 {
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (a.dot(b) / (na * nb)).clamp(-1.0, 1.0)
}

// --- Slice twins -----------------------------------------------------
//
// The frozen (mapped) store backing exposes vectors as raw `&[f32]`
// rows instead of `Vector`s. These helpers repeat the `Vector` kernels
// operation for operation, so scores computed through either backing
// are bit-identical (the equivalence tests below and the engine's
// owned-vs-mapped matrix both rely on this).

/// L2 norm of a raw row; identical accumulation to [`Vector::norm`].
pub fn slice_norm(a: &[f32]) -> f64 {
    a.iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt()
}

/// Cosine similarity between raw rows; identical to [`cosine`].
pub fn slice_cosine(a: &[f32], b: &[f32]) -> f64 {
    let na = slice_norm(a);
    let nb = slice_norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let dot: f64 = a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum();
    (dot / (na * nb)).clamp(-1.0, 1.0)
}

/// Arithmetic mean of raw rows; identical accumulation order to
/// [`Vector::mean`] (clone the first row, `f32` element adds in input
/// order, one final scale by `1 / count`).
pub fn mean_of_rows<'a>(rows: impl IntoIterator<Item = &'a [f32]>) -> Option<Vector> {
    let mut iter = rows.into_iter();
    let first = iter.next()?;
    let mut acc = Vector(first.to_vec());
    let mut count = 1usize;
    for r in iter {
        for (a, &b) in acc.0.iter_mut().zip(r) {
            *a += b;
        }
        count += 1;
    }
    acc.scale(1.0 / count as f32);
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_dim() {
        let v = Vector::zeros(8);
        assert_eq!(v.dim(), 8);
        assert_eq!(v.norm(), 0.0);
    }

    #[test]
    fn dot_and_norm() {
        let a = Vector(vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        let b = Vector(vec![1.0, 2.0]);
        assert_eq!(a.dot(&b), 11.0);
    }

    #[test]
    fn cosine_orthogonal_parallel_antiparallel() {
        let x = Vector(vec![1.0, 0.0]);
        let y = Vector(vec![0.0, 2.0]);
        let neg = Vector(vec![-3.0, 0.0]);
        assert_eq!(cosine(&x, &y), 0.0);
        assert!((cosine(&x, &x) - 1.0).abs() < 1e-9);
        assert!((cosine(&x, &neg) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        let z = Vector::zeros(3);
        let x = Vector(vec![1.0, 2.0, 3.0]);
        assert_eq!(cosine(&z, &x), 0.0);
        assert_eq!(cosine(&z, &z), 0.0);
    }

    #[test]
    fn mean_of_vectors() {
        let a = Vector(vec![1.0, 0.0]);
        let b = Vector(vec![3.0, 2.0]);
        let m = Vector::mean([&a, &b]).unwrap();
        assert_eq!(m.0, vec![2.0, 1.0]);
        assert!(Vector::mean(std::iter::empty()).is_none());
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = Vector(vec![3.0, 4.0]);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        let mut z = Vector::zeros(2);
        z.normalize();
        assert_eq!(z.norm(), 0.0);
    }

    proptest! {
        #[test]
        fn cosine_bounded(a in prop::collection::vec(-100.0f32..100.0, 4), b in prop::collection::vec(-100.0f32..100.0, 4)) {
            let s = cosine(&Vector(a), &Vector(b));
            prop_assert!((-1.0..=1.0).contains(&s));
        }

        #[test]
        fn slice_twins_are_bit_identical(
            a in prop::collection::vec(-50.0f32..50.0, 5),
            b in prop::collection::vec(-50.0f32..50.0, 5),
            c in prop::collection::vec(-50.0f32..50.0, 5),
        ) {
            let (va, vb, vc) = (Vector(a.clone()), Vector(b.clone()), Vector(c.clone()));
            prop_assert_eq!(slice_norm(&a).to_bits(), va.norm().to_bits());
            prop_assert_eq!(slice_cosine(&a, &b).to_bits(), cosine(&va, &vb).to_bits());
            let via_rows = mean_of_rows([a.as_slice(), b.as_slice(), c.as_slice()]).unwrap();
            let via_vecs = Vector::mean([&va, &vb, &vc]).unwrap();
            let bits = |v: &Vector| v.0.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&via_rows), bits(&via_vecs));
        }

        #[test]
        fn cosine_symmetric(a in prop::collection::vec(-10.0f32..10.0, 6), b in prop::collection::vec(-10.0f32..10.0, 6)) {
            let va = Vector(a);
            let vb = Vector(b);
            prop_assert!((cosine(&va, &vb) - cosine(&vb, &va)).abs() < 1e-12);
        }

        #[test]
        fn cosine_scale_invariant(a in prop::collection::vec(0.1f32..10.0, 4), s in 0.1f32..10.0) {
            let va = Vector(a.clone());
            let mut vs = Vector(a);
            vs.scale(s);
            prop_assert!((cosine(&va, &vs) - 1.0).abs() < 1e-5);
        }
    }
}
