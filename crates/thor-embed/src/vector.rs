//! Dense vector type and the similarity kernels THOR runs on.
//!
//! Vectors are `f32` (like every embedding table in practice); similarity
//! math accumulates in `f64` for stability. Cosine similarity is the hot
//! kernel of the whole system — it is called for every (subphrase,
//! representative-vector) pair — so it stays branch-free over slices.

use std::ops::{Add, AddAssign};

/// A dense embedding vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector(pub Vec<f32>);

impl Vector {
    /// A zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Vector(vec![0.0; dim])
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// The raw `f32` components, for structure-of-arrays export into
    /// the `thor-index` row buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.0
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Dot product. Panics if dimensions differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum()
    }

    /// Scale in place.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.0 {
            *x *= s;
        }
    }

    /// Normalize to unit length in place; zero vectors stay zero.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            let inv = (1.0 / n) as f32;
            self.scale(inv);
        }
    }

    /// Arithmetic mean of a non-empty set of equal-dimension vectors;
    /// `None` for an empty input.
    pub fn mean<'a>(vectors: impl IntoIterator<Item = &'a Vector>) -> Option<Vector> {
        let mut iter = vectors.into_iter();
        let first = iter.next()?;
        let mut acc = first.clone();
        let mut count = 1usize;
        for v in iter {
            acc += v;
            count += 1;
        }
        acc.scale(1.0 / count as f32);
        Some(acc)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.dim(), rhs.dim(), "dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(&rhs.0) {
            *a += b;
        }
    }
}

impl Add<&Vector> for Vector {
    type Output = Vector;
    fn add(mut self, rhs: &Vector) -> Vector {
        self += rhs;
        self
    }
}

impl From<Vec<f32>> for Vector {
    fn from(v: Vec<f32>) -> Self {
        Vector(v)
    }
}

/// Cosine similarity in `[-1, 1]`; 0.0 if either vector is zero.
///
/// ```
/// use thor_embed::{cosine, Vector};
/// let a = Vector(vec![1.0, 0.0]);
/// let b = Vector(vec![0.0, 1.0]);
/// assert_eq!(cosine(&a, &b), 0.0);
/// assert!((cosine(&a, &a) - 1.0).abs() < 1e-9);
/// ```
pub fn cosine(a: &Vector, b: &Vector) -> f64 {
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (a.dot(b) / (na * nb)).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_and_dim() {
        let v = Vector::zeros(8);
        assert_eq!(v.dim(), 8);
        assert_eq!(v.norm(), 0.0);
    }

    #[test]
    fn dot_and_norm() {
        let a = Vector(vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        let b = Vector(vec![1.0, 2.0]);
        assert_eq!(a.dot(&b), 11.0);
    }

    #[test]
    fn cosine_orthogonal_parallel_antiparallel() {
        let x = Vector(vec![1.0, 0.0]);
        let y = Vector(vec![0.0, 2.0]);
        let neg = Vector(vec![-3.0, 0.0]);
        assert_eq!(cosine(&x, &y), 0.0);
        assert!((cosine(&x, &x) - 1.0).abs() < 1e-9);
        assert!((cosine(&x, &neg) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        let z = Vector::zeros(3);
        let x = Vector(vec![1.0, 2.0, 3.0]);
        assert_eq!(cosine(&z, &x), 0.0);
        assert_eq!(cosine(&z, &z), 0.0);
    }

    #[test]
    fn mean_of_vectors() {
        let a = Vector(vec![1.0, 0.0]);
        let b = Vector(vec![3.0, 2.0]);
        let m = Vector::mean([&a, &b]).unwrap();
        assert_eq!(m.0, vec![2.0, 1.0]);
        assert!(Vector::mean(std::iter::empty()).is_none());
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = Vector(vec![3.0, 4.0]);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        let mut z = Vector::zeros(2);
        z.normalize();
        assert_eq!(z.norm(), 0.0);
    }

    proptest! {
        #[test]
        fn cosine_bounded(a in prop::collection::vec(-100.0f32..100.0, 4), b in prop::collection::vec(-100.0f32..100.0, 4)) {
            let s = cosine(&Vector(a), &Vector(b));
            prop_assert!((-1.0..=1.0).contains(&s));
        }

        #[test]
        fn cosine_symmetric(a in prop::collection::vec(-10.0f32..10.0, 6), b in prop::collection::vec(-10.0f32..10.0, 6)) {
            let va = Vector(a);
            let vb = Vector(b);
            prop_assert!((cosine(&va, &vb) - cosine(&vb, &va)).abs() < 1e-12);
        }

        #[test]
        fn cosine_scale_invariant(a in prop::collection::vec(0.1f32..10.0, 4), s in 0.1f32..10.0) {
            let va = Vector(a.clone());
            let mut vs = Vector(a);
            vs.scale(s);
            prop_assert!((cosine(&va, &vs) - 1.0).abs() < 1e-5);
        }
    }
}
