#![warn(missing_docs)]
//! # thor-datagen
//!
//! Synthetic dataset generators standing in for the paper's Disease A–Z
//! and Résumé corpora (proprietary web-scraped text plus a 600+-hour
//! human annotation campaign we cannot ship).
//!
//! Everything downstream of this crate — the THOR pipeline, the
//! baselines, the evaluation harness — consumes only four artifacts, all
//! generated here deterministically from a seed:
//!
//! * an **integrated table** `R` (built by full disjunction over partial
//!   sources, so it exhibits genuine integration sparsity),
//! * a **vector table** whose geometry mirrors pre-trained embeddings
//!   (concept clusters, cross-concept ambiguity, out-of-vocabulary tail),
//! * an **annotated document corpus** split into train/validation/test,
//!   with gold `(concept, phrase)` annotations recorded at generation
//!   time (no projection noise), and
//! * **corpus statistics** mirroring Table III.
//!
//! The generator exposes the difficulty knobs the evaluation depends on:
//! what fraction of gold instances the table knows (`table_coverage`),
//! what fraction of the vocabulary has embeddings
//! (`embedding_coverage`), cross-concept lexical ambiguity
//! (`ambiguity`), and per-concept mention weights (class imbalance,
//! calibrated to Table VII).

pub mod annotate;
pub mod effort;
pub mod generate;
pub mod spec;
pub mod stats;
pub mod vocab;

pub use annotate::{bio_tags, AnnotatedDoc, Bio};
pub use effort::AnnotationEffortModel;
pub use generate::{generate, GeneratedDataset, Split};
pub use spec::{ConceptSpec, DatasetSpec};
pub use stats::{corpus_stats, CorpusStats};
