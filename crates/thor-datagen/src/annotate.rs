//! Annotated documents and BIO projection for sequence taggers.

use thor_core::Document;
use thor_text::{normalize_phrase, split_sentences, tokenize};

/// One gold entity annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldEntity {
    /// The subject instance the entity relates to.
    pub subject: String,
    /// Concept label.
    pub concept: String,
    /// Entity phrase as it appears in the text.
    pub phrase: String,
}

/// A document plus its gold annotations.
#[derive(Debug, Clone)]
pub struct AnnotatedDoc {
    /// The document.
    pub doc: Document,
    /// Subject instances the document talks about.
    pub subjects: Vec<String>,
    /// Gold entities.
    pub gold: Vec<GoldEntity>,
}

impl AnnotatedDoc {
    /// Number of gold entities.
    pub fn entity_count(&self) -> usize {
        self.gold.len()
    }
}

/// BIO label for one token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bio {
    /// Beginning of an entity of the given concept.
    B(String),
    /// Inside an entity of the given concept.
    I(String),
    /// Outside any entity.
    O,
}

impl Bio {
    /// The concept, if any.
    pub fn concept(&self) -> Option<&str> {
        match self {
            Bio::B(c) | Bio::I(c) => Some(c),
            Bio::O => None,
        }
    }
}

/// Project gold annotations onto token sequences: for every sentence of
/// the document, tokenize and label tokens with B-/I-/O by matching the
/// gold phrases (normalized, longest-first, non-overlapping). This is
/// how the annotated corpus feeds the sequence taggers (`LM-Human`).
pub fn bio_tags(doc: &AnnotatedDoc) -> Vec<Vec<(String, Bio)>> {
    // Normalize and sort phrases longest-first so nested phrases resolve
    // to the longest span.
    let mut phrases: Vec<(Vec<String>, String)> = doc
        .gold
        .iter()
        .map(|g| {
            let words: Vec<String> = normalize_phrase(&g.phrase)
                .split_whitespace()
                .map(str::to_string)
                .collect();
            (words, g.concept.clone())
        })
        .filter(|(w, _)| !w.is_empty())
        .collect();
    phrases.sort_by_key(|(w, _)| std::cmp::Reverse(w.len()));
    phrases.dedup();

    let mut out = Vec::new();
    for sentence in split_sentences(&doc.doc.text) {
        let tokens = tokenize(&sentence.text);
        let words: Vec<String> = tokens.iter().map(|t| normalize_phrase(&t.text)).collect();
        let mut labels: Vec<Bio> = vec![Bio::O; tokens.len()];

        for (phrase_words, concept) in &phrases {
            let n = phrase_words.len();
            if n == 0 || n > words.len() {
                continue;
            }
            for start in 0..=(words.len() - n) {
                if labels[start..start + n].iter().any(|l| *l != Bio::O) {
                    continue;
                }
                if words[start..start + n] == phrase_words[..] {
                    labels[start] = Bio::B(concept.clone());
                    for l in labels.iter_mut().take(start + n).skip(start + 1) {
                        *l = Bio::I(concept.clone());
                    }
                }
            }
        }
        out.push(
            tokens
                .into_iter()
                .zip(labels)
                .map(|(t, l)| (t.text, l))
                .collect::<Vec<(String, Bio)>>(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> AnnotatedDoc {
        AnnotatedDoc {
            doc: Document::new(
                "d",
                "Tuberculosis damages the lungs. It may cause severe empyema.",
            ),
            subjects: vec!["Tuberculosis".into()],
            gold: vec![
                GoldEntity {
                    subject: "Tuberculosis".into(),
                    concept: "Disease".into(),
                    phrase: "Tuberculosis".into(),
                },
                GoldEntity {
                    subject: "Tuberculosis".into(),
                    concept: "Anatomy".into(),
                    phrase: "lungs".into(),
                },
                GoldEntity {
                    subject: "Tuberculosis".into(),
                    concept: "Complication".into(),
                    phrase: "severe empyema".into(),
                },
            ],
        }
    }

    #[test]
    fn bio_projection_basic() {
        let tags = bio_tags(&doc());
        assert_eq!(tags.len(), 2);
        let s1 = &tags[0];
        assert_eq!(s1[0].1, Bio::B("Disease".into()));
        let lungs = s1.iter().find(|(w, _)| w == "lungs").unwrap();
        assert_eq!(lungs.1, Bio::B("Anatomy".into()));
        // "damages", "the" are O.
        assert_eq!(s1[1].1, Bio::O);
    }

    #[test]
    fn multiword_phrase_bi() {
        let tags = bio_tags(&doc());
        let s2 = &tags[1];
        let severe = s2.iter().position(|(w, _)| w == "severe").unwrap();
        assert_eq!(s2[severe].1, Bio::B("Complication".into()));
        assert_eq!(s2[severe + 1].1, Bio::I("Complication".into()));
    }

    #[test]
    fn case_insensitive_matching() {
        let mut d = doc();
        d.gold[1].phrase = "LUNGS".into();
        let tags = bio_tags(&d);
        let lungs = tags[0].iter().find(|(w, _)| w == "lungs").unwrap();
        assert_eq!(lungs.1, Bio::B("Anatomy".into()));
    }

    #[test]
    fn unmatched_phrases_leave_o() {
        let mut d = doc();
        d.gold.push(GoldEntity {
            subject: "x".into(),
            concept: "Medicine".into(),
            phrase: "nonexistent drug".into(),
        });
        let tags = bio_tags(&d);
        assert!(tags
            .iter()
            .flatten()
            .all(|(_, l)| l.concept() != Some("Medicine")));
    }

    #[test]
    fn longest_phrase_wins() {
        let d = AnnotatedDoc {
            doc: Document::new("d", "severe hearing loss troubles patients."),
            subjects: vec![],
            gold: vec![
                GoldEntity {
                    subject: "s".into(),
                    concept: "A".into(),
                    phrase: "hearing".into(),
                },
                GoldEntity {
                    subject: "s".into(),
                    concept: "B".into(),
                    phrase: "severe hearing loss".into(),
                },
            ],
        };
        let tags = bio_tags(&d);
        assert_eq!(tags[0][0].1, Bio::B("B".into()));
        assert_eq!(tags[0][1].1, Bio::I("B".into()));
        assert_eq!(tags[0][2].1, Bio::I("B".into()));
    }
}
