//! Pseudo-word and instance-phrase generation.
//!
//! Concept vocabularies are built from syllable inventories with
//! concept-specific *suffix families* (anatomy words end in `-ex`/`-um`,
//! complications in `-osis`/`-itis`, …). The suffixes give the
//! character-level gestalt score real signal: novel instances of a
//! concept are orthographically similar to its seeds, exactly the
//! regularity the paper's refinement step exploits on medical
//! terminology.

use rand::rngs::StdRng;
use rand::Rng;

/// Consonant-vowel syllables used as word stems.
const SYLLABLES: &[&str] = &[
    "ba", "ce", "di", "fo", "gu", "ha", "ke", "li", "mo", "nu", "pa", "re", "si", "to", "vu", "wa",
    "xe", "zi", "bra", "cle", "dri", "flo", "gru", "pla", "ster", "tro", "qui", "sna", "ve", "lor",
    "mer", "nal", "pol", "rus", "tan",
];

/// A family of word endings shared by one concept's vocabulary.
#[derive(Debug, Clone)]
pub struct SuffixFamily {
    suffixes: Vec<&'static str>,
}

impl SuffixFamily {
    /// Create a family from a fixed suffix set.
    pub fn new(suffixes: &[&'static str]) -> Self {
        assert!(!suffixes.is_empty());
        Self {
            suffixes: suffixes.to_vec(),
        }
    }

    /// Built-in families, cycled over concepts in declaration order so
    /// every concept gets a distinct orthographic signature.
    pub fn builtin(index: usize) -> Self {
        // All suffixes are chosen to read as *nouns* to the morphology
        // rules in `thor-nlp` (none collide with its ADJ/ADV/VERB
        // suffix lists) so that concept heads chunk as NP heads.
        const FAMILIES: &[&[&str]] = &[
            &["ex", "um", "ula"],
            &["osis", "itis", "oma"],
            &["ol", "ine", "ide"],
            &["ia", "ea", "ysis"],
            &["ency", "age", "ure"],
            &["ism", "asm", "esis"],
            &["one", "ane", "ene"],
            &["ix", "yx", "ax"],
            &["eum", "ion", "oid"],
            &["ast", "est", "ist"],
            &["ora", "era", "ura"],
            &["eth", "oth", "uth"],
        ];
        Self::new(FAMILIES[index % FAMILIES.len()])
    }

    /// The generic (concept-neutral) family: suffixes shared by every
    /// concept's *irregular* vocabulary. Words built from it carry no
    /// orthographic signal about their concept — they separate systems
    /// that type by morphology (taggers) from systems that type by
    /// distributional semantics (THOR).
    pub fn generic() -> Self {
        Self::new(&["an", "er", "on"])
    }

    /// Generate one pseudo-word: 1–3 syllables plus a family suffix.
    pub fn word(&self, rng: &mut StdRng) -> String {
        let n = rng.random_range(1..=3);
        let mut w = String::new();
        for _ in 0..n {
            w.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
        }
        w.push_str(self.suffixes[rng.random_range(0..self.suffixes.len())]);
        w
    }
}

/// A concept's lexical field: head words (its own), shared modifiers,
/// and instance phrases built from them.
#[derive(Debug, Clone)]
pub struct ConceptVocab {
    /// Concept name.
    pub concept: String,
    /// Head words unique to this concept's field.
    pub heads: Vec<String>,
    /// Instance phrases (`dom(C)` of the universe).
    pub instances: Vec<String>,
}

/// Shared modifier pool (adjective-like pseudo-words used across
/// concepts — the source of word-level cross-concept overlap).
pub fn modifier_pool(rng: &mut StdRng, size: usize) -> Vec<String> {
    let family = SuffixFamily::new(&["al", "ic", "ous", "ive"]);
    let mut out = Vec::with_capacity(size);
    while out.len() < size {
        let w = family.word(rng);
        if !out.contains(&w) {
            out.push(w);
        }
    }
    out
}

/// Build a concept's vocabulary.
///
/// * `head_count` distinct head words are drawn from the concept's
///   suffix family — except a fraction `irregular_rate` drawn from the
///   [`SuffixFamily::generic`] family (no orthographic concept signal);
/// * `instance_count` instances are formed as `[modifier] head` or
///   `head` (60% single-word);
/// * with probability `ambiguity`, an instance borrows a head word from
///   `neighbor_heads` (the paper's `blood` vs `blood clot` overlap).
#[allow(clippy::too_many_arguments)]
pub fn concept_vocab(
    rng: &mut StdRng,
    concept: &str,
    family: &SuffixFamily,
    head_count: usize,
    instance_count: usize,
    modifiers: &[String],
    neighbor_heads: &[String],
    ambiguity: f64,
    irregular_rate: f64,
) -> ConceptVocab {
    let generic = SuffixFamily::generic();
    let mut heads: Vec<String> = Vec::with_capacity(head_count);
    let mut guard = 0;
    while heads.len() < head_count && guard < head_count * 50 {
        guard += 1;
        let f = if rng.random::<f64>() < irregular_rate {
            &generic
        } else {
            family
        };
        let w = f.word(rng);
        if !heads.contains(&w) {
            heads.push(w);
        }
    }

    let mut instances = Vec::with_capacity(instance_count);
    let mut tries = 0;
    while instances.len() < instance_count && tries < instance_count * 50 {
        tries += 1;
        let borrow = !neighbor_heads.is_empty() && rng.random::<f64>() < ambiguity;
        let head = if borrow {
            neighbor_heads[rng.random_range(0..neighbor_heads.len())].clone()
        } else {
            heads[rng.random_range(0..heads.len())].clone()
        };
        let instance = if rng.random::<f64>() < 0.6 || modifiers.is_empty() {
            // Borrowed heads always get a modifier: the *phrase* is this
            // concept's, only the head word is shared.
            if borrow && !modifiers.is_empty() {
                format!(
                    "{} {}",
                    modifiers[rng.random_range(0..modifiers.len())],
                    head
                )
            } else {
                head
            }
        } else {
            format!(
                "{} {}",
                modifiers[rng.random_range(0..modifiers.len())],
                head
            )
        };
        if !instances.contains(&instance) {
            instances.push(instance);
        }
    }

    ConceptVocab {
        concept: concept.to_string(),
        heads,
        instances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn words_carry_family_suffix() {
        let family = SuffixFamily::new(&["osis"]);
        let mut r = rng(1);
        for _ in 0..20 {
            assert!(family.word(&mut r).ends_with("osis"));
        }
    }

    #[test]
    fn builtin_families_distinct() {
        let a = SuffixFamily::builtin(0);
        let b = SuffixFamily::builtin(1);
        assert_ne!(a.suffixes, b.suffixes);
    }

    #[test]
    fn vocab_sizes_respected() {
        let mut r = rng(7);
        let mods = modifier_pool(&mut r, 10);
        let v = concept_vocab(
            &mut r,
            "Anatomy",
            &SuffixFamily::builtin(0),
            20,
            40,
            &mods,
            &[],
            0.0,
            0.0,
        );
        assert_eq!(v.heads.len(), 20);
        assert_eq!(v.instances.len(), 40);
        // No duplicates.
        let mut uniq = v.instances.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 40);
    }

    #[test]
    fn ambiguity_borrows_neighbor_heads() {
        let mut r = rng(3);
        let mods = modifier_pool(&mut r, 10);
        let neighbor: Vec<String> = vec!["bloodex".to_string()];
        let v = concept_vocab(
            &mut r,
            "Complication",
            &SuffixFamily::builtin(1),
            10,
            50,
            &mods,
            &neighbor,
            0.5,
            0.0,
        );
        let borrowed = v.instances.iter().filter(|i| i.contains("bloodex")).count();
        assert!(borrowed > 0, "ambiguity 0.5 should borrow some heads");
        assert!(borrowed < 50, "not everything should be borrowed");
    }

    #[test]
    fn deterministic_given_seed() {
        let make = || {
            let mut r = rng(42);
            let mods = modifier_pool(&mut r, 5);
            concept_vocab(
                &mut r,
                "X",
                &SuffixFamily::builtin(2),
                5,
                10,
                &mods,
                &[],
                0.0,
                0.0,
            )
        };
        assert_eq!(make().instances, make().instances);
    }
}
