//! The annotation-effort model (Tables IX and X, Fig. 8).
//!
//! The paper measured 8–13 seconds per annotated token and 600+ total
//! hours for three specialist annotators over three months. Those
//! numbers are arithmetic over corpus statistics; this model reproduces
//! the arithmetic so the effort tables can be regenerated from the
//! synthetic corpus.

use crate::annotate::AnnotatedDoc;

/// Per-token annotation-time model.
#[derive(Debug, Clone, Copy)]
pub struct AnnotationEffortModel {
    /// Fastest observed seconds per token.
    pub min_sec_per_token: f64,
    /// Slowest observed seconds per token (the paper uses this bound
    /// when costing Table X).
    pub max_sec_per_token: f64,
}

impl Default for AnnotationEffortModel {
    fn default() -> Self {
        // Table IX: "Single Token 8s – 13s".
        Self {
            min_sec_per_token: 8.0,
            max_sec_per_token: 13.0,
        }
    }
}

/// Effort estimate for a corpus (or sub-corpus).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffortEstimate {
    /// Number of word tokens costed.
    pub tokens: usize,
    /// Lower bound, seconds.
    pub min_seconds: f64,
    /// Upper bound, seconds (Table X's "Annotation Time(s)" column).
    pub max_seconds: f64,
}

impl EffortEstimate {
    /// Upper bound in hours.
    pub fn max_hours(&self) -> f64 {
        self.max_seconds / 3600.0
    }
}

impl AnnotationEffortModel {
    /// Cost a set of annotated documents.
    pub fn estimate(&self, docs: &[AnnotatedDoc]) -> EffortEstimate {
        let tokens: usize = docs.iter().map(|d| d.doc.word_count()).sum();
        EffortEstimate {
            tokens,
            min_seconds: tokens as f64 * self.min_sec_per_token,
            max_seconds: tokens as f64 * self.max_sec_per_token,
        }
    }

    /// Per-document bounds in seconds: `(min, max)` over the corpus.
    pub fn per_document_bounds(&self, docs: &[AnnotatedDoc]) -> Option<(f64, f64)> {
        let counts: Vec<usize> = docs.iter().map(|d| d.doc.word_count()).collect();
        let min = *counts.iter().min()?;
        let max = *counts.iter().max()?;
        Some((
            min as f64 * self.min_sec_per_token,
            max as f64 * self.max_sec_per_token,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_core::Document;

    fn docs(words: &[usize]) -> Vec<AnnotatedDoc> {
        words
            .iter()
            .enumerate()
            .map(|(i, &n)| AnnotatedDoc {
                doc: Document::new(format!("d{i}"), vec!["w"; n].join(" ")),
                subjects: vec![],
                gold: vec![],
            })
            .collect()
    }

    #[test]
    fn estimate_scales_with_tokens() {
        let m = AnnotationEffortModel::default();
        let e = m.estimate(&docs(&[100, 50]));
        assert_eq!(e.tokens, 150);
        assert_eq!(e.min_seconds, 1200.0);
        assert_eq!(e.max_seconds, 1950.0);
        assert!((e.max_hours() - 1950.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn empty_corpus() {
        let m = AnnotationEffortModel::default();
        let e = m.estimate(&[]);
        assert_eq!(e.tokens, 0);
        assert_eq!(e.max_seconds, 0.0);
        assert!(m.per_document_bounds(&[]).is_none());
    }

    #[test]
    fn per_document_bounds() {
        let m = AnnotationEffortModel::default();
        let (lo, hi) = m.per_document_bounds(&docs(&[10, 100])).unwrap();
        assert_eq!(lo, 80.0);
        assert_eq!(hi, 1300.0);
    }
}
