//! Dataset specifications and the two paper presets.

/// Specification of one concept in a dataset.
#[derive(Debug, Clone)]
pub struct ConceptSpec {
    /// Concept name (Table II).
    pub name: String,
    /// Distinct head words in the concept's lexical field.
    pub head_count: usize,
    /// Size of the instance universe `dom(C)`.
    pub instance_count: usize,
    /// Relative mention frequency in documents (class imbalance,
    /// proportional to the gold counts of Table VII).
    pub mention_weight: f64,
    /// Index of a correlated concept (its topic centroid is pulled
    /// toward that concept's) and the mixing weight.
    pub correlate_with: Option<(usize, f32)>,
    /// Probability that an instance borrows a head word from the
    /// correlated concept's field.
    pub ambiguity: f64,
}

impl ConceptSpec {
    /// A plain concept spec.
    pub fn new(name: &str, head_count: usize, instance_count: usize, mention_weight: f64) -> Self {
        Self {
            name: name.to_string(),
            head_count,
            instance_count,
            mention_weight,
            correlate_with: None,
            ambiguity: 0.0,
        }
    }

    /// Correlate with another concept (by index) and set ambiguity.
    pub fn correlated(mut self, with: usize, mix: f32, ambiguity: f64) -> Self {
        self.correlate_with = Some((with, mix));
        self.ambiguity = ambiguity;
        self
    }
}

/// Full dataset specification. Concept 0 is always the subject concept.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: String,
    /// RNG seed — everything downstream is deterministic in it.
    pub seed: u64,
    /// Concepts; index 0 is the subject concept `C*`.
    pub concepts: Vec<ConceptSpec>,
    /// Subjects per split (`|dom(C*)|` rows of Table III).
    pub subjects: (usize, usize, usize),
    /// Documents per subject (Disease style) — ignored when
    /// `subjects_per_doc > 1`.
    pub docs_per_subject: usize,
    /// Subjects bundled into one document (Résumé: 5 CVs per doc).
    pub subjects_per_doc: usize,
    /// Entity-bearing sentences per subject per document.
    pub sentences_per_subject: usize,
    /// Fraction of a subject's gold instances present in the integrated
    /// table (the rest appear only in text — THOR must generalize).
    pub table_coverage: f64,
    /// Fraction of each concept's instance universe reserved as *novel*:
    /// those instances can appear in documents but never enter the
    /// integrated table. This is what makes exact matching (Baseline)
    /// low-recall and gives τ its recall slope.
    pub novel_rate: f64,
    /// Probability that a *test* subject's gold instance is drawn from
    /// the novel pool (train/validation subjects only use the common
    /// pool, so novel instances are unseen both by the table and by any
    /// annotated training text).
    pub test_novel_mix: f64,
    /// Distractor words per concept: orthographically plausible (same
    /// suffix family) words at the topic's semantic periphery, mentioned
    /// in no-entity sentences. They fool lenient matchers (low τ) and
    /// suffix-driven taggers — the false-positive source.
    pub distractors_per_concept: usize,
    /// Probability that an instance of a correlated concept is *also*
    /// added to its partner's universe (same phrase, two concepts — the
    /// dictionary baseline's wrong-type source).
    pub phrase_collision: f64,
    /// Fraction of *junk* values injected into the integrated table per
    /// concept (relative to its instance universe): erroneous values
    /// that survived integration — the data-quality noise cleaning
    /// systems exist to fight. Junk values are drawn from the concept's
    /// distractor vocabulary, so they match real distractor mentions.
    pub table_noise: f64,
    /// Fraction of each concept's head words built from the generic
    /// (concept-neutral) suffix family — invisible to morphology-driven
    /// systems.
    pub irregular_rate: f64,
    /// Fraction of vocabulary words that have embeddings (the
    /// generalizability knob; Résumé is lower).
    pub embedding_coverage: f64,
    /// Test documents use a shifted writing style (different verbs and
    /// sentence frames than the training split). Models that type
    /// entities from sentence *context* (sequence taggers) lose their
    /// transfer; models that type from the entity itself (THOR's
    /// embeddings, exact matching) are unaffected. Models the unseen-
    /// domain scenario of Experiment 3.
    pub test_style_shift: bool,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Intra-topic spread of the synthetic semantic space.
    pub spread: f32,
    /// Number of partial sources the integrated table is built from.
    pub source_count: usize,
}

impl DatasetSpec {
    /// The Disease A–Z preset: 11 concepts (Table II), splits and volume
    /// matching Table III at `scale` (1.0 ≈ the paper's corpus; tests
    /// use small scales).
    pub fn disease_az(seed: u64, scale: f64) -> Self {
        let s = |x: usize| ((x as f64 * scale).round() as usize).max(1);
        // Mention weights ∝ Table VII gold counts.
        let concepts = vec![
            ConceptSpec::new("Disease", 240, 320, 410.0),
            ConceptSpec::new("Anatomy", 110, 150, 369.0),
            ConceptSpec::new("Cause", 45, 60, 47.0),
            // Complication overlaps Anatomy ('blood' vs 'blood clot').
            ConceptSpec::new("Complication", 120, 160, 384.0).correlated(1, 0.3, 0.12),
            ConceptSpec::new("Composition", 38, 50, 65.0),
            ConceptSpec::new("Diagnosis", 60, 80, 141.0),
            ConceptSpec::new("Medicine", 110, 150, 376.0),
            ConceptSpec::new("Precaution", 40, 55, 72.0),
            // Riskfactor overlaps Cause.
            ConceptSpec::new("Riskfactor", 52, 70, 136.0).correlated(2, 0.25, 0.12),
            ConceptSpec::new("Surgery", 45, 60, 85.0),
            // Symptom overlaps Complication.
            ConceptSpec::new("Symptom", 70, 90, 137.0).correlated(3, 0.25, 0.12),
        ];
        Self {
            name: "Disease A-Z".to_string(),
            seed,
            concepts,
            subjects: (s(240), s(61), s(13)),
            docs_per_subject: 6,
            subjects_per_doc: 1,
            sentences_per_subject: 10,
            table_coverage: 0.55,
            novel_rate: 0.5,
            test_novel_mix: 0.85,
            distractors_per_concept: 25,
            phrase_collision: 0.03,
            table_noise: 0.01,
            irregular_rate: 0.35,
            embedding_coverage: 0.9,
            test_style_shift: false,
            dim: 48,
            spread: 0.75,
            source_count: 10,
        }
    }

    /// The Résumé preset: 12 concepts, 5 CVs per document, lower
    /// embedding coverage (the unseen-domain scenario of Experiment 3).
    pub fn resume(seed: u64, scale: f64) -> Self {
        let s = |x: usize| ((x as f64 * scale).round() as usize).max(1);
        let concepts = vec![
            ConceptSpec::new("Name", 240, 320, 240.0),
            ConceptSpec::new("Awards", 38, 50, 90.0),
            ConceptSpec::new("Certification", 52, 70, 160.0),
            // Degrees overlap certifications lexically.
            ConceptSpec::new("Degree", 30, 40, 180.0).correlated(2, 0.3, 0.12),
            ConceptSpec::new("University", 60, 80, 200.0),
            // Colleges overlap universities (both org names).
            ConceptSpec::new("College Name", 45, 60, 120.0).correlated(4, 0.35, 0.15),
            ConceptSpec::new("Language", 22, 30, 110.0),
            ConceptSpec::new("Location", 68, 90, 200.0),
            ConceptSpec::new("Worked As", 68, 90, 260.0),
            ConceptSpec::new("Skills", 105, 140, 330.0).correlated(2, 0.25, 0.12),
            ConceptSpec::new("Companies Worked At", 75, 100, 190.0).correlated(4, 0.2, 0.1),
            ConceptSpec::new("Years Of Experience", 18, 25, 60.0),
        ];
        Self {
            name: "Résumé".to_string(),
            seed,
            concepts,
            subjects: (s(100), s(70), s(100)),
            docs_per_subject: 1,
            subjects_per_doc: 5,
            sentences_per_subject: 8,
            table_coverage: 0.35,
            novel_rate: 0.55,
            test_novel_mix: 0.9,
            distractors_per_concept: 25,
            phrase_collision: 0.04,
            table_noise: 0.015,
            irregular_rate: 0.75,
            embedding_coverage: 0.8,
            test_style_shift: true,
            dim: 48,
            spread: 0.5,
            source_count: 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disease_preset_shape() {
        let d = DatasetSpec::disease_az(1, 1.0);
        assert_eq!(d.concepts.len(), 11);
        assert_eq!(d.concepts[0].name, "Disease");
        assert_eq!(d.subjects, (240, 61, 13));
    }

    #[test]
    fn resume_preset_shape() {
        let r = DatasetSpec::resume(1, 1.0);
        assert_eq!(r.concepts.len(), 12);
        assert_eq!(r.concepts[0].name, "Name");
        assert_eq!(r.subjects_per_doc, 5);
        assert!(r.embedding_coverage < DatasetSpec::disease_az(1, 1.0).embedding_coverage);
    }

    #[test]
    fn scaling_shrinks_subjects() {
        let d = DatasetSpec::disease_az(1, 0.1);
        assert_eq!(d.subjects, (24, 6, 1));
    }

    #[test]
    fn correlations_reference_earlier_concepts() {
        for spec in [DatasetSpec::disease_az(1, 1.0), DatasetSpec::resume(1, 1.0)] {
            for (i, c) in spec.concepts.iter().enumerate() {
                if let Some((j, _)) = c.correlate_with {
                    assert!(j < i, "{}: correlate_with must point backward", c.name);
                }
            }
        }
    }
}
