//! Corpus statistics (Table III).

use std::collections::BTreeSet;

use crate::annotate::AnnotatedDoc;

/// Statistics of one corpus split, mirroring Table III's rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusStats {
    /// Distinct subject instances (`|dom(C*)|`).
    pub subjects: usize,
    /// Number of documents.
    pub documents: usize,
    /// Number of gold entity annotations.
    pub entities: usize,
    /// Number of word tokens.
    pub words: usize,
}

/// Compute Table III statistics for a document set.
pub fn corpus_stats(docs: &[AnnotatedDoc]) -> CorpusStats {
    let subjects: BTreeSet<&str> = docs
        .iter()
        .flat_map(|d| d.subjects.iter().map(String::as_str))
        .collect();
    CorpusStats {
        subjects: subjects.len(),
        documents: docs.len(),
        entities: docs.iter().map(AnnotatedDoc::entity_count).sum(),
        words: docs.iter().map(|d| d.doc.word_count()).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::GoldEntity;
    use thor_core::Document;

    #[test]
    fn counts() {
        let docs = vec![
            AnnotatedDoc {
                doc: Document::new("a", "one two three"),
                subjects: vec!["S1".into()],
                gold: vec![GoldEntity {
                    subject: "S1".into(),
                    concept: "C".into(),
                    phrase: "one".into(),
                }],
            },
            AnnotatedDoc {
                doc: Document::new("b", "four five"),
                subjects: vec!["S1".into(), "S2".into()],
                gold: vec![],
            },
        ];
        let s = corpus_stats(&docs);
        assert_eq!(
            s,
            CorpusStats {
                subjects: 2,
                documents: 2,
                entities: 1,
                words: 5
            }
        );
    }

    #[test]
    fn empty() {
        let s = corpus_stats(&[]);
        assert_eq!(s.documents, 0);
        assert_eq!(s.subjects, 0);
    }
}
