//! The dataset generator.
//!
//! From a [`DatasetSpec`] this module synthesizes, deterministically:
//! concept vocabularies, a semantic space, per-subject gold instance
//! assignments, partial source tables integrated by full disjunction,
//! and an annotated document corpus split into train/validation/test.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use thor_core::Document;
use thor_data::{full_disjunction, Schema, Table};
use thor_embed::{SemanticSpaceBuilder, VectorStore};

use crate::annotate::{AnnotatedDoc, GoldEntity};
use crate::spec::DatasetSpec;
use crate::vocab::{concept_vocab, modifier_pool, ConceptVocab, SuffixFamily};

/// Corpus split identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Training documents (LM-Human's annotation budget).
    Train,
    /// Validation documents.
    Validation,
    /// Test documents (all systems are evaluated here).
    Test,
}

/// Everything the experiments need, generated from one seed.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Dataset name (from the spec).
    pub name: String,
    /// The concept-oriented schema (concept 0 is the subject).
    pub schema: Schema,
    /// The integrated table `R` — full disjunction of the partial
    /// sources; covers train+validation subjects with partial knowledge.
    pub table: Table,
    /// The partial sources `R` was integrated from.
    pub sources: Vec<Table>,
    /// The synthetic word-vector table.
    pub store: VectorStore,
    /// Annotated documents per split.
    pub train: Vec<AnnotatedDoc>,
    /// Validation documents.
    pub validation: Vec<AnnotatedDoc>,
    /// Test documents.
    pub test: Vec<AnnotatedDoc>,
}

impl GeneratedDataset {
    /// Documents of a split.
    pub fn docs(&self, split: Split) -> &[AnnotatedDoc] {
        match split {
            Split::Train => &self.train,
            Split::Validation => &self.validation,
            Split::Test => &self.test,
        }
    }

    /// The gold test table `R_test`: test subjects with every annotated
    /// entity slot-filled (built from the test gold, like the paper's
    /// ground-truth test tables).
    pub fn gold_test_table(&self) -> Table {
        let mut t = Table::new(self.schema.clone());
        let subject_key = self.schema.subject().key();
        for doc in &self.test {
            for s in &doc.subjects {
                t.row_for_subject(s);
            }
            for g in &doc.gold {
                if g.concept.to_lowercase() != subject_key {
                    t.fill_slot(&g.subject, &g.concept, &g.phrase);
                }
            }
        }
        t
    }

    /// The table systems run against at evaluation time: the integrated
    /// table `R` (fine-tuning knowledge from train+validation subjects)
    /// plus *stripped* rows for the test subjects (subject key only —
    /// "we deleted the instances of all concepts from these test
    /// tables except for the subject concepts").
    pub fn enrichment_table(&self) -> Table {
        let mut t = self.table.clone();
        for doc in &self.test {
            for s in &doc.subjects {
                t.row_for_subject(s);
            }
        }
        t
    }

    /// All plain documents of a split.
    pub fn documents(&self, split: Split) -> Vec<Document> {
        self.docs(split).iter().map(|d| d.doc.clone()).collect()
    }
}

/// Verbs preferred by each concept (cycled by concept index). All are
/// in `thor-nlp`'s verb lexicon so sentences parse correctly, and they
/// give sequence taggers the *contextual* signal real language models
/// exploit ("symptoms *include* X" vs "doctors *recommend* Y").
const CONCEPT_VERBS: &[&str] = &[
    "involves",
    "causes",
    "requires",
    "includes",
    "shows",
    "recommends",
    "reports",
    "presents",
    "develops",
    "treats",
    "prevents",
    "needs",
];

/// Shifted verb inventory used by the test split when
/// `test_style_shift` is on: different verbs AND a shifted
/// concept-to-verb mapping, so context features learned on the training
/// style mislead rather than transfer.
const CONCEPT_VERBS_SHIFTED: &[&str] = &[
    "holds", "earns", "takes", "uses", "knows", "speaks", "manages", "receives", "studies",
    "works", "makes", "helps",
];

/// Sentence templates; `{S}` is the subject, `{E*}` entity slots.
const TEMPLATES_1: &[&str] = &[
    "{S} often involves the {E1}.",
    "{S} requires {E1} in severe cases.",
    "Doctors report {E1} in many cases.",
    "It frequently presents with {E1}.",
    "Specialists recommend {E1} for most patients.",
];
const TEMPLATES_2: &[&str] = &[
    "It may cause {E1} and {E2}.",
    "{S} shows {E1} and {E2} over time.",
    "Records include {E1} and also {E2}.",
];
const TEMPLATES_3: &[&str] = &[
    "Common findings include {E1}, {E2} and {E3}.",
    "Reports list {E1}, {E2} and {E3}.",
];

/// Entity-free sentences mentioning a distractor word `{D}` — the
/// false-positive bait.
const DISTRACTOR_SENTENCES: &[&str] = &[
    "Experts still debate the {D} in clinics.",
    "The {D} remains under careful review.",
    "Some articles mention the {D} without evidence.",
    "Both the {D} and the {D2} remain under review.",
    "Reviews contrast the {D} with the {D2}.",
];

const NOISE_SENTENCES: &[&str] = &[
    "Many people recover fully with early care.",
    "Regular follow-up visits remain very important.",
    "Support from family helps during recovery.",
    "Awareness has improved greatly over the years.",
    "Early attention makes a clear difference.",
];

/// Per-subject gold assignment: concept index → instances.
type Assignment = BTreeMap<usize, Vec<String>>;

/// Generate a dataset from its spec.
#[allow(clippy::needless_range_loop)]
pub fn generate(spec: &DatasetSpec) -> GeneratedDataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // ---- vocabularies ----
    let modifiers = modifier_pool(&mut rng, 40);
    let mut vocabs: Vec<ConceptVocab> = Vec::with_capacity(spec.concepts.len());
    for (i, cs) in spec.concepts.iter().enumerate() {
        let neighbor_heads: Vec<String> = cs
            .correlate_with
            .map(|(j, _)| vocabs[j].heads.clone())
            .unwrap_or_default();
        vocabs.push(concept_vocab(
            &mut rng,
            &cs.name,
            &SuffixFamily::builtin(i),
            cs.head_count,
            cs.instance_count,
            &modifiers,
            &neighbor_heads,
            cs.ambiguity,
            spec.irregular_rate,
        ));
    }

    // ---- phrase collisions ----
    // An instance of a correlated concept may also belong to its
    // partner's universe: the same phrase under two concepts.
    for i in 0..spec.concepts.len() {
        let Some((j, _)) = spec.concepts[i].correlate_with else {
            continue;
        };
        let shared: Vec<String> = vocabs[i]
            .instances
            .iter()
            .filter(|_| rng.random::<f64>() < spec.phrase_collision)
            .cloned()
            .collect();
        for phrase in shared {
            if !vocabs[j].instances.contains(&phrase) {
                vocabs[j].instances.push(phrase);
            }
        }
    }

    // ---- distractor words ----
    // Orthographically plausible words at each topic's periphery,
    // mentioned in entity-free sentences.
    let mut distractors: Vec<String> = Vec::new();
    let mut distractors_by_concept: Vec<Vec<String>> = Vec::new();
    for i in 0..spec.concepts.len() {
        let family = SuffixFamily::builtin(i);
        let mut words = Vec::with_capacity(spec.distractors_per_concept);
        let mut guard = 0;
        while words.len() < spec.distractors_per_concept && guard < 1000 {
            guard += 1;
            let w = family.word(&mut rng);
            if !words.contains(&w) && !vocabs[i].heads.contains(&w) {
                words.push(w);
            }
        }
        distractors.extend(words.iter().cloned());
        distractors_by_concept.push(words);
    }

    // ---- semantic space ----
    let space_seed = rng.random::<u64>();
    let mut builder = SemanticSpaceBuilder::new(spec.dim, space_seed).spread(spec.spread);
    for (i, cs) in spec.concepts.iter().enumerate() {
        let topic = cs.name.to_lowercase();
        builder = match cs.correlate_with {
            Some((j, mix)) => {
                builder.correlated_topic(&topic, &spec.concepts[j].name.to_lowercase(), mix)
            }
            None => builder.topic(&topic),
        };
        // Embedding coverage: drop a fraction of head words (never the
        // subject concept's — segmentation must stay robust).
        let coverage = if i == 0 { 1.0 } else { spec.embedding_coverage };
        let covered: Vec<&str> = vocabs[i]
            .heads
            .iter()
            .filter(|_| rng.random::<f64>() < coverage)
            .map(String::as_str)
            .collect();
        builder = builder.words(&topic, covered);
        // Distractors sit at the topic's periphery: close enough to be
        // pulled in by a lenient τ-expansion, wrong nonetheless.
        let periphery: Vec<&str> = distractors_by_concept[i]
            .iter()
            .map(String::as_str)
            .collect();
        builder = builder.words_with_spread(&topic, periphery, spec.spread * 1.35);
    }
    let generic: Vec<&str> = modifiers.iter().map(String::as_str).collect();
    builder = builder.generic_words(generic);
    let store = builder.build().into_store();

    // ---- novel instance pools ----
    // A fraction of every non-subject concept's universe never enters
    // the integrated table; documents still mention those instances.
    let mut novel: Vec<std::collections::BTreeSet<String>> =
        vec![std::collections::BTreeSet::new(); spec.concepts.len()];
    for (ci, vocab) in vocabs.iter().enumerate().skip(1) {
        for inst in &vocab.instances {
            if rng.random::<f64>() < spec.novel_rate {
                novel[ci].insert(inst.clone());
            }
        }
    }

    // ---- subjects ----
    let (n_train, n_val, n_test) = spec.subjects;
    let n_total = n_train + n_val + n_test;
    assert!(
        vocabs[0].instances.len() >= n_total,
        "subject concept universe ({}) smaller than requested subjects ({n_total})",
        vocabs[0].instances.len()
    );
    let mut subject_pool = vocabs[0].instances.clone();
    subject_pool.shuffle(&mut rng);
    let subjects: Vec<String> = subject_pool[..n_total].to_vec();
    let other_subject_mentions: Vec<String> = subject_pool[n_total..].to_vec();

    // ---- gold assignments ----
    // Train/validation subjects draw only from the common pool; test
    // subjects mix in novel instances — unseen by both the integrated
    // table and any annotated training text.
    let common_pool: Vec<Vec<&String>> = vocabs
        .iter()
        .enumerate()
        .map(|(ci, v)| {
            v.instances
                .iter()
                .filter(|i| !novel[ci].contains(*i))
                .collect()
        })
        .collect();
    let novel_pool: Vec<Vec<&String>> = vocabs
        .iter()
        .enumerate()
        .map(|(ci, v)| {
            v.instances
                .iter()
                .filter(|i| novel[ci].contains(*i))
                .collect()
        })
        .collect();
    let total_weight: f64 = spec.concepts.iter().skip(1).map(|c| c.mention_weight).sum();
    let slots_per_subject = 18.0;
    let mut assignments: Vec<Assignment> = Vec::with_capacity(n_total);
    for si in 0..n_total {
        let is_test = si >= n_train + n_val;
        let mut a = Assignment::new();
        for (ci, cs) in spec.concepts.iter().enumerate().skip(1) {
            let expected = (cs.mention_weight / total_weight * slots_per_subject).max(0.5);
            let k = (expected.round() as usize + rng.random_range(0..2usize)).max(1);
            let mut chosen = Vec::with_capacity(k);
            for _ in 0..k {
                let use_novel = is_test
                    && !novel_pool[ci].is_empty()
                    && rng.random::<f64>() < spec.test_novel_mix;
                let pool: &[&String] = if use_novel {
                    &novel_pool[ci]
                } else {
                    &common_pool[ci]
                };
                if pool.is_empty() {
                    continue;
                }
                let inst = pool[rng.random_range(0..pool.len())];
                if !chosen.contains(inst) {
                    chosen.push(inst.clone());
                }
            }
            if chosen.is_empty() {
                if let Some(inst) = vocabs[ci].instances.first() {
                    chosen.push(inst.clone());
                }
            }
            a.insert(ci, chosen);
        }
        assignments.push(a);
    }

    // ---- partial sources + integrated table ----
    let schema = Schema::new(
        spec.concepts.iter().map(|c| c.name.as_str()),
        &spec.concepts[0].name,
    );
    let mut sources: Vec<Table> = Vec::with_capacity(spec.source_count);
    // Each source covers a random subset of slot concepts; round-robin
    // guarantees every concept is covered somewhere.
    let slot_count = spec.concepts.len() - 1;
    let mut source_concepts: Vec<Vec<usize>> = Vec::new();
    for s in 0..spec.source_count {
        let mut cover: Vec<usize> = vec![1 + (s % slot_count)];
        for ci in 1..spec.concepts.len() {
            if !cover.contains(&ci) && rng.random::<f64>() < 0.3 {
                cover.push(ci);
            }
        }
        cover.sort_unstable();
        source_concepts.push(cover);
    }
    for cover in &source_concepts {
        let mut concepts = vec![spec.concepts[0].name.clone()];
        concepts.extend(cover.iter().map(|&ci| spec.concepts[ci].name.clone()));
        let name0 = concepts[0].clone();
        sources.push(Table::new(Schema::new(concepts, &name0)));
    }
    // Table knowledge comes from train+validation subjects only.
    for (si, subject) in subjects.iter().enumerate().take(n_train + n_val) {
        for (&ci, instances) in &assignments[si] {
            for inst in instances {
                if novel[ci].contains(inst) {
                    continue; // novel instances never reach the table
                }
                if rng.random::<f64>() >= spec.table_coverage {
                    continue;
                }
                // Pick a source covering this concept.
                let candidates: Vec<usize> = source_concepts
                    .iter()
                    .enumerate()
                    .filter_map(|(s, cover)| cover.contains(&ci).then_some(s))
                    .collect();
                let s = candidates[rng.random_range(0..candidates.len())];
                sources[s].fill_slot(subject, &spec.concepts[ci].name, inst);
            }
        }
    }
    // Integration noise: junk values that survived integration. They
    // are drawn from the distractor vocabulary, so lenient extractors
    // reproduce them as spurious predictions at any threshold.
    for (ci, cs) in spec.concepts.iter().enumerate().skip(1) {
        let junk_count = ((cs.instance_count as f64) * spec.table_noise).round() as usize;
        for _ in 0..junk_count {
            if distractors_by_concept[ci].is_empty() || n_train + n_val == 0 {
                break;
            }
            let junk =
                &distractors_by_concept[ci][rng.random_range(0..distractors_by_concept[ci].len())];
            let subject = &subjects[rng.random_range(0..n_train + n_val)];
            let candidates: Vec<usize> = source_concepts
                .iter()
                .enumerate()
                .filter_map(|(s, cover)| cover.contains(&ci).then_some(s))
                .collect();
            let s = candidates[rng.random_range(0..candidates.len())];
            sources[s].fill_slot(subject, &cs.name, junk);
        }
    }

    let source_refs: Vec<&Table> = sources.iter().collect();
    let mut table = full_disjunction(&source_refs);
    // Integrated tables list all known subjects, even instance-less ones.
    for subject in subjects.iter().take(n_train + n_val) {
        table.row_for_subject(subject);
    }

    // ---- documents ----
    let mut train = Vec::new();
    let mut validation = Vec::new();
    let mut test = Vec::new();
    let mut doc_counter = 0usize;

    let emit_docs = |range: std::ops::Range<usize>,
                     out: &mut Vec<AnnotatedDoc>,
                     rng: &mut StdRng,
                     doc_counter: &mut usize,
                     is_test: bool| {
        let split_subjects: Vec<usize> = range.collect();
        if spec.subjects_per_doc > 1 {
            // Résumé style: bundle several subjects per document.
            for chunk in split_subjects.chunks(spec.subjects_per_doc) {
                *doc_counter += 1;
                out.push(compose_doc(
                    &format!("doc{:05}", doc_counter),
                    chunk,
                    &subjects,
                    &assignments,
                    spec,
                    &distractors,
                    &other_subject_mentions,
                    is_test,
                    rng,
                ));
            }
        } else {
            for &si in &split_subjects {
                for _ in 0..spec.docs_per_subject {
                    *doc_counter += 1;
                    out.push(compose_doc(
                        &format!("doc{:05}", doc_counter),
                        &[si],
                        &subjects,
                        &assignments,
                        spec,
                        &distractors,
                        &other_subject_mentions,
                        is_test,
                        rng,
                    ));
                }
            }
        }
    };

    emit_docs(0..n_train, &mut train, &mut rng, &mut doc_counter, false);
    emit_docs(
        n_train..n_train + n_val,
        &mut validation,
        &mut rng,
        &mut doc_counter,
        false,
    );
    emit_docs(
        n_train + n_val..n_total,
        &mut test,
        &mut rng,
        &mut doc_counter,
        spec.test_style_shift,
    );

    GeneratedDataset {
        name: spec.name.clone(),
        schema,
        table,
        sources,
        store,
        train,
        validation,
        test,
    }
}

/// Compose one document covering `subject_indices`.
#[allow(clippy::too_many_arguments)]
fn compose_doc(
    id: &str,
    subject_indices: &[usize],
    subjects: &[String],
    assignments: &[Assignment],
    spec: &DatasetSpec,
    distractors: &[String],
    other_subject_mentions: &[String],
    style_shift: bool,
    rng: &mut StdRng,
) -> AnnotatedDoc {
    let mut text = String::new();
    let mut gold: Vec<GoldEntity> = Vec::new();
    let mut doc_subjects = Vec::new();
    let subject_concept = &spec.concepts[0].name;

    // Mention weights for concept sampling.
    let weights: Vec<f64> = spec
        .concepts
        .iter()
        .skip(1)
        .map(|c| c.mention_weight)
        .collect();
    let weight_sum: f64 = weights.iter().sum();

    for &si in subject_indices {
        let subject = &subjects[si];
        doc_subjects.push(subject.clone());

        // Intro sentence anchors the subject (a gold subject-concept
        // entity).
        text.push_str(&format!("{subject} is a widely discussed case. "));
        gold.push(GoldEntity {
            subject: subject.clone(),
            concept: subject_concept.clone(),
            phrase: subject.clone(),
        });

        for s in 0..spec.sentences_per_subject {
            // Pick a concept by weight.
            let mut pick = rng.random::<f64>() * weight_sum;
            let mut ci = 1;
            for (k, w) in weights.iter().enumerate() {
                pick -= w;
                if pick <= 0.0 {
                    ci = k + 1;
                    break;
                }
            }
            let pool = &assignments[si][&ci];
            let n_entities = match rng.random_range(0..6) {
                0..=2 => 1usize,
                3..=4 => 2,
                _ => 3,
            }
            .min(pool.len());
            let mut picks: Vec<&String> = Vec::with_capacity(n_entities);
            while picks.len() < n_entities {
                let cand = &pool[rng.random_range(0..pool.len())];
                if !picks.contains(&cand) {
                    picks.push(cand);
                }
            }
            // 70% of entity sentences use the concept's preferred verb
            // (contextual signal); the rest use a generic template.
            let verb = if style_shift {
                // Different inventory AND shifted mapping.
                CONCEPT_VERBS_SHIFTED[(ci + 5) % CONCEPT_VERBS_SHIFTED.len()]
            } else {
                CONCEPT_VERBS[ci % CONCEPT_VERBS.len()]
            };
            let concept_specific = rng.random::<f64>() < 0.85;
            let template: String = if concept_specific {
                match picks.len() {
                    1 => format!("{{S}} often {verb} the {{E1}}."),
                    2 => format!("It {verb} {{E1}} and {{E2}}."),
                    _ => format!("{{S}} {verb} {{E1}}, {{E2}} and {{E3}}."),
                }
            } else {
                match picks.len() {
                    1 => TEMPLATES_1[rng.random_range(0..TEMPLATES_1.len())].to_string(),
                    2 => TEMPLATES_2[rng.random_range(0..TEMPLATES_2.len())].to_string(),
                    _ => TEMPLATES_3[rng.random_range(0..TEMPLATES_3.len())].to_string(),
                }
            };
            let mut sentence = template.replace("{S}", subject);
            for (k, inst) in picks.iter().enumerate() {
                sentence = sentence.replace(&format!("{{E{}}}", k + 1), inst);
                gold.push(GoldEntity {
                    subject: subject.clone(),
                    concept: spec.concepts[ci].name.clone(),
                    phrase: (*inst).clone(),
                });
            }
            text.push_str(&sentence);
            text.push(' ');

            // Occasionally cross-mention another subject-concept
            // instance (the paper's 'Disease' gold entities beyond the
            // document's own subject).
            if s % 4 == 3 && !other_subject_mentions.is_empty() {
                let other =
                    &other_subject_mentions[rng.random_range(0..other_subject_mentions.len())];
                text.push_str(&format!("Related cases such as {other} are documented. "));
                gold.push(GoldEntity {
                    subject: subject.clone(),
                    concept: subject_concept.clone(),
                    phrase: other.clone(),
                });
            }
            // Noise sentence with no entities.
            if s % 3 != 0 {
                if !distractors.is_empty() && rng.random::<f64>() < 0.55 {
                    let d = &distractors[rng.random_range(0..distractors.len())];
                    let d2 = &distractors[rng.random_range(0..distractors.len())];
                    let template =
                        DISTRACTOR_SENTENCES[rng.random_range(0..DISTRACTOR_SENTENCES.len())];
                    text.push_str(&template.replace("{D2}", d2).replace("{D}", d));
                } else {
                    text.push_str(NOISE_SENTENCES[rng.random_range(0..NOISE_SENTENCES.len())]);
                }
                text.push(' ');
            }
        }
    }

    AnnotatedDoc {
        doc: Document::new(id, text.trim_end()),
        subjects: doc_subjects,
        gold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetSpec;

    fn small() -> GeneratedDataset {
        generate(&DatasetSpec::disease_az(7, 0.05))
    }

    #[test]
    fn deterministic() {
        let a = generate(&DatasetSpec::disease_az(9, 0.05));
        let b = generate(&DatasetSpec::disease_az(9, 0.05));
        assert_eq!(a.test[0].doc.text, b.test[0].doc.text);
        assert_eq!(a.table.instance_count(), b.table.instance_count());
        let c = generate(&DatasetSpec::disease_az(10, 0.05));
        assert_ne!(a.test[0].doc.text, c.test[0].doc.text);
    }

    #[test]
    fn split_sizes_match_spec() {
        let spec = DatasetSpec::disease_az(7, 0.05);
        let d = generate(&spec);
        assert_eq!(d.train.len(), spec.subjects.0 * spec.docs_per_subject);
        assert_eq!(d.validation.len(), spec.subjects.1 * spec.docs_per_subject);
        assert_eq!(d.test.len(), spec.subjects.2 * spec.docs_per_subject);
    }

    #[test]
    fn resume_bundles_subjects() {
        let spec = DatasetSpec::resume(7, 0.1);
        let d = generate(&spec);
        assert!(d.test.iter().all(|doc| doc.subjects.len() <= 5));
        assert!(d.test.iter().any(|doc| doc.subjects.len() == 5));
    }

    #[test]
    fn gold_entities_appear_in_text() {
        let d = small();
        for doc in d.test.iter().take(3) {
            for g in &doc.gold {
                assert!(
                    doc.doc.text.contains(&g.phrase),
                    "gold phrase `{}` missing from doc text",
                    g.phrase
                );
            }
        }
    }

    #[test]
    fn table_covers_only_train_val_subjects() {
        let d = small();
        for doc in &d.test {
            for s in &doc.subjects {
                assert!(
                    d.table.get_row(s).is_none(),
                    "test subject {s} leaked into R"
                );
            }
        }
        // Enrichment table adds them back, stripped.
        let et = d.enrichment_table();
        for doc in &d.test {
            for s in &doc.subjects {
                let row = et.get_row(s).expect("stripped row exists");
                let filled = row.cells().iter().filter(|c| !c.is_null()).count();
                assert_eq!(filled, 1, "test row must hold only the subject");
            }
        }
    }

    #[test]
    fn integrated_table_is_sparse() {
        let d = generate(&DatasetSpec::disease_az(7, 0.1));
        let report = thor_data::sparsity(&d.table);
        assert!(
            report.ratio > 0.05,
            "integration should produce missing values"
        );
        assert!(report.ratio < 1.0, "but not only missing values");
    }

    #[test]
    fn gold_test_table_nonempty() {
        let d = small();
        let gold = d.gold_test_table();
        assert!(!gold.is_empty());
        assert!(gold.instance_count() > gold.len(), "slots are filled");
    }

    #[test]
    fn store_covers_most_table_instances() {
        let d = small();
        let mut covered = 0usize;
        let mut total = 0usize;
        for concept in d.schema.concepts().iter().skip(1) {
            for inst in d.table.column_values(concept.name()) {
                total += 1;
                if d.store.embed_phrase(&inst).is_some() {
                    covered += 1;
                }
            }
        }
        assert!(total > 0);
        let coverage = covered as f64 / total as f64;
        assert!(coverage > 0.5, "coverage {coverage} too low");
    }

    #[test]
    fn some_test_gold_is_not_in_table() {
        // The generalization gap: test documents mention instances the
        // integrated table has never seen.
        let d = generate(&DatasetSpec::disease_az(7, 0.1));
        let mut known = 0usize;
        let mut novel = 0usize;
        for doc in &d.test {
            for g in &doc.gold {
                if d.schema.index_of(&g.concept) == Some(d.schema.subject_index()) {
                    continue;
                }
                let column = d.table.column_values(&g.concept);
                if column.iter().any(|v| v.eq_ignore_ascii_case(&g.phrase)) {
                    known += 1;
                } else {
                    novel += 1;
                }
            }
        }
        assert!(novel > 0, "every gold instance known — no OOV challenge");
        assert!(
            known > 0,
            "no gold instance known — baseline would be useless"
        );
    }
}
