//! Reload chaos suite: hot engine swaps under live traffic.
//!
//! The contract under test (ISSUE 8):
//!
//! * **Zero dropped requests, zero mixed generations.** Concurrent
//!   clients hammer `/enrich` while the artifact is rewritten and
//!   swapped repeatedly; every 200 names its generation in
//!   `X-Thor-Engine`, and its body is byte-identical to what that
//!   generation's engine produces offline.
//! * **Never swap-to-broken.** A corrupt or truncated replacement
//!   artifact is rejected by name (`reload.rejected`), and the old
//!   generation keeps answering.
//! * **Self-healing.** A panicked accept worker is restarted
//!   (`worker.restarts`); a crash loop trips the breaker into a 503
//!   `degraded` healthz that recovers after the cooldown.
//! * **Deadline budgets.** An exhausted per-request budget is a named
//!   503 `deadline-exceeded`, not a hung connection.
//!
//! The reload request flag and the failpoint registry are process-wide,
//! so every test here takes a [`scoped_failpoints`] guard (possibly
//! with an empty spec) — the same lock the rest of the workspace uses
//! to serialize chaos tests.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use thor_core::{MapMode, PreparedEngine, ResilientOptions, RunMode, Thor, ThorConfig};
use thor_data::{Schema, Table};
use thor_embed::SemanticSpaceBuilder;
use thor_fault::failpoint::set_failpoints;
use thor_fault::scoped_failpoints;
use thor_obs::MetricsSnapshot;
use thor_serve::http::request;
use thor_serve::{ReloadConfig, ServeOptions, Server};

/// Two semantically different engines: different integrated tables (and
/// τ), so fingerprints and served bytes both differ.
fn engine_a() -> PreparedEngine {
    let store = SemanticSpaceBuilder::new(16, 3)
        .topic("anatomy")
        .words("anatomy", ["lung", "heart", "skin"])
        .generic_words(["damages", "the"])
        .build()
        .into_store();
    let mut table = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
    table.fill_slot("Tuberculosis", "Anatomy", "lung");
    Thor::new(store, ThorConfig::with_tau(0.6)).prepare(&table)
}

fn engine_b() -> PreparedEngine {
    let store = SemanticSpaceBuilder::new(16, 3)
        .topic("anatomy")
        .words("anatomy", ["lung", "heart", "skin"])
        .generic_words(["damages", "the"])
        .build()
        .into_store();
    let mut table = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
    table.fill_slot("Tuberculosis", "Anatomy", "lung");
    table.fill_slot("Dermatitis", "Anatomy", "skin");
    Thor::new(store, ThorConfig::with_tau(0.7)).prepare(&table)
}

fn batch_body() -> Vec<u8> {
    br#"{"documents":[{"id":"d0","text":"Tuberculosis damages the heart."}]}"#.to_vec()
}

/// The bytes `/enrich` must answer for `engine` — the same resilient
/// lenient path the server runs.
fn expected_csv(engine: &PreparedEngine) -> String {
    let docs = vec![thor_core::Document::new(
        "d0".to_string(),
        "Tuberculosis damages the heart.".to_string(),
    )];
    let opts = ResilientOptions {
        mode: RunMode::Lenient,
        ..ResilientOptions::default()
    };
    let outcome = engine.enrich_resilient(&docs, &opts).expect("enrich");
    thor_data::to_csv(&outcome.result.table)
}

fn tmp_artifact(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "thor-reload-test-{}-{name}.thor",
        std::process::id()
    ))
}

struct LiveServer {
    addr: std::net::SocketAddr,
    handle: thor_serve::ShutdownHandle,
    join: Option<std::thread::JoinHandle<()>>,
}

impl LiveServer {
    /// Serve the artifact at `path` with hot reload wired up.
    fn start(path: &Path, opts: ServeOptions, poll: Option<Duration>) -> LiveServer {
        let engine = PreparedEngine::load_with(path, MapMode::Owned).expect("load");
        let reload = ReloadConfig {
            path: path.to_path_buf(),
            mode: MapMode::Owned,
            threads: None,
            reference_refine: false,
            prune: thor_core::PruneMode::Exact,
            poll,
        };
        let server = Server::bind_with(engine, "127.0.0.1:0", opts, Some(reload)).expect("bind");
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run().expect("serve loop"));
        LiveServer {
            addr,
            handle,
            join: Some(join),
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            join.join().expect("server thread");
        }
    }
}

/// `(fingerprint, epoch)` currently being served, from the
/// `X-Thor-Engine` header every routed response carries.
fn current_tag(addr: &std::net::SocketAddr) -> (String, u64) {
    let resp = request(addr, "GET", "/healthz", b"").expect("healthz");
    let tag = resp
        .header("X-Thor-Engine")
        .expect("X-Thor-Engine header")
        .trim();
    let (fp, epoch) = tag.rsplit_once('@').expect("fp@epoch");
    (fp.to_string(), epoch.parse().expect("numeric epoch"))
}

/// Wait until the serving fingerprint becomes `fp`.
fn wait_for_fp(addr: &std::net::SocketAddr, fp: &str, ctx: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if current_tag(addr).0 == fp {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{ctx}: never started serving {fp}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A counter's value as `/metrics` reports it.
fn metric_count(addr: &std::net::SocketAddr, name: &str) -> u64 {
    let resp = request(addr, "GET", "/metrics", b"").expect("metrics");
    let snapshot = MetricsSnapshot::from_json_str(&resp.body_str()).expect("metrics JSON");
    snapshot.count(name)
}

/// Wait until a counter reaches at least `want`.
fn wait_for_count(addr: &std::net::SocketAddr, name: &str, want: u64, ctx: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if metric_count(addr, name) >= want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{ctx}: `{name}` never reached {want}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A structurally valid THORENG container that is not an engine: its
/// stamp reads fine (so polling notices the change), but the full load
/// rejects it — the candidate must never be swapped in.
fn bogus_artifact(seed: usize) -> Vec<u8> {
    let mut w = thor_fault::SectionWriter::new();
    w.add("meta", 1, format!("not an engine #{seed}").as_bytes());
    w.finish()
}

/// Tentpole: hundreds of requests from concurrent clients race dozens
/// of SIGHUP-driven swaps; every response is attributable to exactly
/// one generation and byte-identical to that generation's engine.
#[test]
fn hot_swap_under_traffic_never_drops_or_mixes_generations() {
    let _guard = scoped_failpoints("");
    let path = tmp_artifact("hot-swap");
    let (a, b) = (engine_a(), engine_b());
    a.save(&path).expect("save a");
    let fp_a = a.fingerprint().to_string();
    let fp_b = b.fingerprint().to_string();
    assert_ne!(fp_a, fp_b, "engines must be distinguishable");
    let (want_a, want_b) = (expected_csv(&a), expected_csv(&b));
    assert_ne!(want_a, want_b, "served bytes must differ across engines");

    let srv = LiveServer::start(&path, ServeOptions::default(), None);
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let addr = srv.addr;
            let stop = Arc::clone(&stop);
            let (fp_a, fp_b) = (fp_a.clone(), fp_b.clone());
            let (want_a, want_b) = (want_a.clone(), want_b.clone());
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let resp = request(&addr, "POST", "/enrich", &batch_body()).expect("enrich");
                    assert_eq!(resp.status, 200, "body: {}", resp.body_str());
                    let tag = resp.header("X-Thor-Engine").expect("engine header").trim();
                    let (fp, epoch) = tag.rsplit_once('@').expect("fp@epoch");
                    let epoch: u64 = epoch.parse().expect("numeric epoch");
                    // Sequential requests on one client never go back
                    // in time across a swap.
                    assert!(epoch >= last_epoch, "epoch went backwards: {tag}");
                    last_epoch = epoch;
                    let want = match fp {
                        f if f == fp_a => &want_a,
                        f if f == fp_b => &want_b,
                        other => panic!("unknown generation fingerprint {other}"),
                    };
                    assert_eq!(
                        resp.body_str(),
                        want.as_str(),
                        "generation {tag} served foreign bytes"
                    );
                    served += 1;
                }
                served
            })
        })
        .collect();

    // Dozens of swaps, alternating engines, each driven exactly the way
    // SIGHUP drives it.
    for i in 0..24 {
        let (next, fp) = if i % 2 == 0 {
            (&b, fp_b.as_str())
        } else {
            (&a, fp_a.as_str())
        };
        next.save(&path).expect("rewrite artifact");
        thor_serve::signal::request_reload();
        wait_for_fp(&srv.addr, fp, &format!("swap {i}"));
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = clients.into_iter().map(|c| c.join().expect("client")).sum();
    assert!(total >= 50, "only {total} requests landed during the churn");
    let (_, epoch) = current_tag(&srv.addr);
    assert_eq!(epoch, 25, "24 swaps on top of the initial generation");
    assert_eq!(metric_count(&srv.addr, "reload.ok"), 24);
    std::fs::remove_file(&path).ok();
}

/// Corrupt and truncated replacement artifacts — detected by polling,
/// no signal involved — are rejected while the old generation keeps
/// answering with its exact bytes; a good artifact then swaps in.
#[test]
fn corrupt_replacement_is_rejected_and_old_engine_keeps_serving() {
    let _guard = scoped_failpoints("");
    let path = tmp_artifact("corrupt");
    let (a, b) = (engine_a(), engine_b());
    a.save(&path).expect("save a");
    let want_a = expected_csv(&a);

    let srv = LiveServer::start(
        &path,
        ServeOptions::default(),
        Some(Duration::from_millis(25)),
    );
    let (fp0, epoch0) = current_tag(&srv.addr);
    assert_eq!(fp0, a.fingerprint());

    // A structurally plausible but non-engine replacement: polling
    // notices it, validation rejects it, the slot is untouched.
    thor_fault::atomic_write(&path, &bogus_artifact(1)).expect("corrupt write");
    wait_for_count(&srv.addr, "reload.rejected", 1, "bogus container");

    // Truncated garbage on top: the stamp itself is unreadable, which
    // must never trigger a swap either.
    thor_fault::atomic_write(&path, b"THORENG\0 oops").expect("truncated write");
    std::thread::sleep(Duration::from_millis(120));

    let (fp_now, epoch_now) = current_tag(&srv.addr);
    assert_eq!((fp_now, epoch_now), (fp0.clone(), epoch0), "slot moved");
    let resp = request(&srv.addr, "POST", "/enrich", &batch_body()).expect("enrich");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body_str(), want_a, "old generation's bytes changed");

    // Recovery: a good artifact lands and polling swaps it in.
    b.save(&path).expect("save b");
    wait_for_fp(&srv.addr, b.fingerprint(), "recovery swap");
    assert_eq!(metric_count(&srv.addr, "reload.ok"), 1);
    std::fs::remove_file(&path).ok();
}

/// Every injectable step of the reload state machine — open, validate,
/// swap — fails without moving the slot; the next (uninjected) reload
/// succeeds on the same process.
#[test]
fn reload_failpoints_never_swap_to_broken() {
    let guard = scoped_failpoints("");
    let path = tmp_artifact("failpoints");
    let (a, b) = (engine_a(), engine_b());
    a.save(&path).expect("save a");
    let srv = LiveServer::start(&path, ServeOptions::default(), None);
    let (fp0, epoch0) = current_tag(&srv.addr);

    b.save(&path).expect("save b");
    for (i, spec) in ["reload_open:err@1", "reload_validate:err@1", "swap:err@1"]
        .iter()
        .enumerate()
    {
        set_failpoints(spec).expect("arm");
        thor_serve::signal::request_reload();
        wait_for_count(&srv.addr, "reload.rejected", i as u64 + 1, spec);
        let (fp, epoch) = current_tag(&srv.addr);
        assert_eq!((fp, epoch), (fp0.clone(), epoch0), "{spec} moved the slot");
        let resp = request(&srv.addr, "POST", "/enrich", &batch_body()).expect("enrich");
        assert_eq!(resp.status, 200, "{spec} broke serving");
    }

    set_failpoints("").expect("disarm");
    thor_serve::signal::request_reload();
    wait_for_fp(&srv.addr, b.fingerprint(), "post-chaos reload");
    assert_eq!(current_tag(&srv.addr).1, epoch0 + 1);
    drop(guard);
    std::fs::remove_file(&path).ok();
}

/// A panicked accept worker is restarted and the server keeps
/// answering; a crash loop trips the breaker into 503 `degraded`, and
/// the breaker resets after the cooldown.
#[test]
fn worker_panics_recover_and_crash_loops_degrade_health() {
    let guard = scoped_failpoints("");
    let path = tmp_artifact("supervision");
    engine_a().save(&path).expect("save");
    let opts = ServeOptions {
        breaker_threshold: 2,
        breaker_window: Duration::from_secs(30),
        breaker_cooldown: Duration::from_millis(300),
        ..ServeOptions::default()
    };
    let srv = LiveServer::start(&path, opts, None);

    // One injected panic: a worker dies, the supervisor restarts it,
    // requests keep succeeding.
    set_failpoints("worker_panic:panic@1").expect("arm");
    wait_for_count(&srv.addr, "worker.restarts", 1, "first panic");
    let resp = request(&srv.addr, "POST", "/enrich", &batch_body()).expect("after panic");
    assert_eq!(resp.status, 200);
    let health = request(&srv.addr, "GET", "/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200, "one restart must not degrade");

    // A second restart inside the window trips the breaker.
    set_failpoints("worker_panic:err@1").expect("re-arm");
    wait_for_count(&srv.addr, "worker.restarts", 2, "second panic");
    set_failpoints("").expect("disarm");
    let deadline = Instant::now() + Duration::from_secs(5);
    let degraded = loop {
        let health = request(&srv.addr, "GET", "/healthz", b"").expect("healthz");
        if health.status == 503 {
            assert!(
                health.body_str().contains("degraded"),
                "{}",
                health.body_str()
            );
            break health;
        }
        assert!(Instant::now() < deadline, "breaker never tripped");
        std::thread::sleep(Duration::from_millis(20));
    };
    drop(degraded);
    // Degraded is a health report, not an outage: enrichment still works.
    let resp = request(&srv.addr, "POST", "/enrich", &batch_body()).expect("degraded enrich");
    assert_eq!(resp.status, 200);

    // After a quiet cooldown, the breaker resets.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = request(&srv.addr, "GET", "/healthz", b"").expect("healthz");
        if health.status == 200 {
            assert!(health.body_str().contains("serving"));
            break;
        }
        assert!(Instant::now() < deadline, "breaker never reset");
        std::thread::sleep(Duration::from_millis(50));
    }
    drop(guard);
    std::fs::remove_file(&path).ok();
}

/// An exhausted deadline budget answers 503 `deadline-exceeded` and is
/// counted; a sane budget changes nothing.
#[test]
fn exhausted_deadline_budget_is_a_named_503() {
    let _guard = scoped_failpoints("");
    let path = tmp_artifact("deadline");
    engine_a().save(&path).expect("save");
    let opts = ServeOptions {
        deadline: Some(Duration::from_nanos(1)),
        ..ServeOptions::default()
    };
    let srv = LiveServer::start(&path, opts, None);
    let resp = request(&srv.addr, "POST", "/enrich", &batch_body()).expect("enrich");
    assert_eq!(resp.status, 503, "body: {}", resp.body_str());
    assert!(
        resp.body_str().contains("deadline-exceeded"),
        "{}",
        resp.body_str()
    );
    assert!(metric_count(&srv.addr, "deadline.exceeded") >= 1);
    drop(srv);

    let opts = ServeOptions {
        deadline: Some(Duration::from_secs(30)),
        ..ServeOptions::default()
    };
    let srv = LiveServer::start(&path, opts, None);
    let resp = request(&srv.addr, "POST", "/enrich", &batch_body()).expect("enrich");
    assert_eq!(resp.status, 200, "body: {}", resp.body_str());
    std::fs::remove_file(&path).ok();
}

/// Property: under any small interleaving of good rewrites, bogus
/// rewrites and concurrent clients, every 200 response's body is
/// byte-identical to the engine its `X-Thor-Engine` fingerprint names.
#[derive(Debug, Clone, Copy)]
enum Op {
    SwapA,
    SwapB,
    Corrupt,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..3).prop_map(|i| match i {
        0 => Op::SwapA,
        1 => Op::SwapB,
        _ => Op::Corrupt,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn interleaved_rewrites_preserve_per_epoch_byte_identity(
        ops in prop::collection::vec(op_strategy(), 1..5),
    ) {
        let _guard = scoped_failpoints("");
        let path = tmp_artifact("interleave");
        let (a, b) = (engine_a(), engine_b());
        a.save(&path).expect("save a");
        let fp_a = a.fingerprint().to_string();
        let fp_b = b.fingerprint().to_string();
        let (want_a, want_b) = (expected_csv(&a), expected_csv(&b));

        let srv = LiveServer::start(
            &path,
            ServeOptions::default(),
            Some(Duration::from_millis(20)),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let clients: Vec<_> = (0..2)
            .map(|_| {
                let addr = srv.addr;
                let stop = Arc::clone(&stop);
                let (fp_a, fp_b) = (fp_a.clone(), fp_b.clone());
                let (want_a, want_b) = (want_a.clone(), want_b.clone());
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let resp =
                            request(&addr, "POST", "/enrich", &batch_body()).expect("enrich");
                        assert_eq!(resp.status, 200, "body: {}", resp.body_str());
                        let tag =
                            resp.header("X-Thor-Engine").expect("engine header").trim();
                        let fp = tag.rsplit_once('@').expect("fp@epoch").0;
                        let want = match fp {
                            f if f == fp_a => &want_a,
                            f if f == fp_b => &want_b,
                            other => panic!("unknown fingerprint {other}"),
                        };
                        assert_eq!(resp.body_str(), want.as_str(), "mixed bytes in {tag}");
                    }
                })
            })
            .collect();

        let mut rejected = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::SwapA => {
                    a.save(&path).expect("rewrite a");
                    wait_for_fp(&srv.addr, &fp_a, &format!("op {i}: swap a"));
                }
                Op::SwapB => {
                    b.save(&path).expect("rewrite b");
                    wait_for_fp(&srv.addr, &fp_b, &format!("op {i}: swap b"));
                }
                Op::Corrupt => {
                    let before = current_tag(&srv.addr);
                    rejected += 1;
                    thor_fault::atomic_write(&path, &bogus_artifact(i)).expect("corrupt");
                    wait_for_count(
                        &srv.addr,
                        "reload.rejected",
                        rejected,
                        &format!("op {i}: corrupt"),
                    );
                    prop_assert_eq!(current_tag(&srv.addr), before, "corrupt op moved the slot");
                    // Put a good artifact back so a trailing corrupt op
                    // leaves the next op's baseline well-defined.
                    let (fp_now, _) = current_tag(&srv.addr);
                    let restore = if fp_now == fp_a { &a } else { &b };
                    restore.save(&path).expect("restore");
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        for c in clients {
            c.join().expect("client");
        }
        std::fs::remove_file(&path).ok();
    }
}
