//! Protocol robustness battery for the `thor serve` front end.
//!
//! Two layers:
//!
//! 1. **Parser fuzzing** (proptest over in-memory streams): arbitrary
//!    bytes, truncated request lines, oversized headers, bad
//!    `Content-Length` values, and pipelined keep-alive sequences must
//!    all produce either a valid head or a *named* 4xx/5xx error —
//!    never a panic, never a hang.
//! 2. **Live-server chaos** (real sockets against a tiny engine):
//!    slowloris partial writes time out with 408 under the read
//!    timeout, a full admission queue yields 429 + `Retry-After`,
//!    injected faults surface as 500 without killing the process,
//!    pipelined requests come back in order, and a drain leaves the
//!    accept loop cleanly.

use std::io::{Cursor, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use proptest::prelude::*;
use thor_core::{PreparedEngine, Thor, ThorConfig};
use thor_data::{Schema, Table};
use thor_embed::SemanticSpaceBuilder;
use thor_serve::http::{self, parse_head, request, send_request};
use thor_serve::{HttpError, HttpLimits, RequestReader, Response, ServeOptions, Server};

fn limits() -> HttpLimits {
    HttpLimits::default()
}

/// Feed raw bytes through the streaming reader exactly as a connection
/// thread would.
fn read_one(raw: &[u8]) -> Result<Option<http::RequestHead>, HttpError> {
    RequestReader::new(Cursor::new(raw.to_vec())).read_head(&limits(), None)
}

/// Every error the parser can emit must carry a named 4xx/5xx status.
fn assert_named(err: &HttpError) {
    let status = err.status();
    assert!(
        (400..=599).contains(&status),
        "error {err:?} maps to non-error status {status}"
    );
    assert!(!err.name().is_empty(), "error {err:?} has no name");
}

// ---------------------------------------------------------------------
// Layer 1: parser fuzzing.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes never panic or hang the head reader; failures
    /// are always named errors.
    #[test]
    fn arbitrary_bytes_never_panic(raw in prop::collection::vec(0u8..=255, 0..600)) {
        match read_one(&raw) {
            Ok(_) => {}
            Err(e) => assert_named(&e),
        }
    }

    /// Arbitrary *text* aimed at the pure parser never panics.
    #[test]
    fn arbitrary_text_never_panics_parse_head(text in "\\PC{0,400}") {
        match parse_head(text.as_bytes(), &limits()) {
            Ok(_) => {}
            Err(e) => assert_named(&e),
        }
    }

    /// Truncating a valid request at any byte yields either the parsed
    /// head (cut past the terminator) or a named error — and an
    /// incomplete head is always `Truncated` (408-able), not a parse.
    #[test]
    fn truncated_requests_fail_closed(cut in 0usize..120, path in "/[a-z]{0,12}") {
        let full = format!("POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: 3\r\n\r\nabc");
        let raw = &full.as_bytes()[..cut.min(full.len())];
        let head_end = full.find("\r\n\r\n").unwrap() + 4;
        match read_one(raw) {
            Ok(Some(head)) => {
                prop_assert!(raw.len() >= head_end, "parsed a head from an incomplete prefix");
                prop_assert_eq!(head.method.as_str(), "POST");
                prop_assert_eq!(head.target.as_str(), path.as_str());
            }
            Ok(None) => prop_assert!(raw.is_empty(), "non-empty prefix read as clean close"),
            Err(e) => {
                assert_named(&e);
                prop_assert!(raw.len() < head_end, "complete head errored: {:?}", e);
            }
        }
    }

    /// Oversized header blocks are capped with 431, never accumulated
    /// without bound.
    #[test]
    fn oversized_headers_are_capped(n in 1usize..200, width in 256usize..1024) {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..n {
            raw.extend_from_slice(format!("X-Pad-{i}: {}\r\n", "v".repeat(width)).as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let lim = limits();
        match read_one(&raw) {
            Ok(Some(head)) => {
                prop_assert!(raw.len() <= lim.max_request_line + lim.max_header_bytes + 4);
                prop_assert!(head.headers.len() <= lim.max_headers);
            }
            Ok(None) => prop_assert!(false, "header block read as clean close"),
            Err(e) => {
                assert_named(&e);
                prop_assert!(
                    matches!(e, HttpError::HeadersTooLarge | HttpError::TooManyHeaders),
                    "unexpected error for oversized headers: {:?}", e
                );
            }
        }
    }

    /// A request line with no newline inside the cap is 414, not an
    /// unbounded buffer.
    #[test]
    fn endless_request_line_is_414(extra in 1usize..4096) {
        let raw = vec![b'A'; limits().max_request_line + extra];
        let err = read_one(&raw).unwrap_err();
        prop_assert!(
            matches!(err, HttpError::UriTooLong | HttpError::Truncated),
            "got {:?}", err
        );
    }

    /// Garbage Content-Length values are named 400s; huge ones are 413.
    #[test]
    fn bad_content_length_is_named(value in "[-+a-z0-9 ]{0,24}") {
        let raw = format!("POST /enrich HTTP/1.1\r\nContent-Length: {value}\r\n\r\n");
        let head = match read_one(raw.as_bytes()) {
            Ok(Some(h)) => h,
            other => panic!("head must parse: {other:?}"),
        };
        let lim = limits();
        match head.content_length(&lim) {
            Ok(Some(n)) => prop_assert!(n <= lim.max_body_bytes),
            Ok(None) => prop_assert!(false, "header with value {:?} vanished", value),
            Err(e) => {
                assert_named(&e);
                prop_assert!(
                    matches!(e, HttpError::BadContentLength(_) | HttpError::BodyTooLarge(_)),
                    "got {:?}", e
                );
            }
        }
    }

    /// Pipelined keep-alive requests: N heads written back-to-back into
    /// one stream parse in order with bodies intact.
    #[test]
    fn pipelined_requests_parse_in_order(bodies in prop::collection::vec("[a-z]{0,16}", 1..6)) {
        let mut raw = Vec::new();
        for (i, b) in bodies.iter().enumerate() {
            raw.extend_from_slice(
                format!("POST /p{i} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{b}", b.len()).as_bytes(),
            );
        }
        let mut reader = RequestReader::new(Cursor::new(raw));
        for (i, b) in bodies.iter().enumerate() {
            let head = reader.read_head(&limits(), None).unwrap().expect("head");
            prop_assert_eq!(head.target, format!("/p{i}"));
            let len = head.content_length(&limits()).unwrap().unwrap_or(0);
            let body = reader.read_body(len).unwrap();
            prop_assert_eq!(body, b.as_bytes().to_vec());
        }
        prop_assert!(reader.read_head(&limits(), None).unwrap().is_none());
    }
}

/// Duplicate conflicting Content-Length headers are rejected by name.
#[test]
fn conflicting_content_lengths_rejected() {
    let raw = b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\n";
    let head = read_one(raw).unwrap().unwrap();
    let err = head.content_length(&limits()).unwrap_err();
    assert!(matches!(err, HttpError::BadContentLength(_)));
    assert_eq!(err.status(), 400);
}

/// Transfer-Encoding is refused with 501 — the server only frames by
/// Content-Length.
#[test]
fn transfer_encoding_is_refused() {
    let raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    let head = read_one(raw).unwrap().unwrap();
    let err = head.content_length(&limits()).unwrap_err();
    assert!(matches!(err, HttpError::UnsupportedTransferEncoding));
    assert_eq!(err.status(), 501);
}

// ---------------------------------------------------------------------
// Layer 2: live-server chaos.
// ---------------------------------------------------------------------

fn tiny_engine() -> PreparedEngine {
    let store = SemanticSpaceBuilder::new(16, 3)
        .topic("anatomy")
        .words("anatomy", ["lung", "heart", "skin"])
        .generic_words(["damages", "the"])
        .build()
        .into_store();
    let mut table = Table::new(Schema::new(["Disease", "Anatomy"], "Disease"));
    table.fill_slot("Tuberculosis", "Anatomy", "lung");
    Thor::new(store, ThorConfig::with_tau(0.6)).prepare(&table)
}

struct LiveServer {
    addr: std::net::SocketAddr,
    handle: thor_serve::server::ShutdownHandle,
    join: Option<std::thread::JoinHandle<()>>,
}

impl LiveServer {
    fn start(opts: ServeOptions) -> LiveServer {
        let server = Server::bind(tiny_engine(), "127.0.0.1:0", opts).expect("bind");
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run().expect("serve loop"));
        LiveServer {
            addr,
            handle,
            join: Some(join),
        }
    }
}

impl Drop for LiveServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            join.join().expect("server thread");
        }
    }
}

fn batch_body() -> Vec<u8> {
    br#"{"documents":[{"id":"d0","text":"Tuberculosis damages the heart."}]}"#.to_vec()
}

/// A slow peer that stalls mid-head is answered 408 under the read
/// timeout; the server stays up for the next client.
#[test]
fn slowloris_partial_head_gets_408() {
    let opts = ServeOptions {
        read_timeout: Duration::from_millis(300),
        ..ServeOptions::default()
    };
    let srv = LiveServer::start(opts);

    let mut stream = TcpStream::connect(srv.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Half a request line, then silence.
    stream.write_all(b"GET /healthz HT").unwrap();
    stream.flush().unwrap();

    let mut reader = RequestReader::new(stream.try_clone().unwrap());
    let resp = Response::read_from(&mut reader).expect("408 response");
    assert_eq!(resp.status, 408, "body: {}", resp.body_str());
    assert!(resp.body_str().contains("read-timeout"));

    // The process is still serving.
    let ok = request(&srv.addr, "GET", "/healthz", b"").expect("healthz after slowloris");
    assert_eq!(ok.status, 200);
}

/// With a single admission permit held by a stalled POST, a second
/// request is turned away with 429 + Retry-After, and the server
/// recovers once the stall resolves.
#[test]
fn full_queue_gets_429_with_retry_after() {
    let opts = ServeOptions {
        queue: 1,
        read_timeout: Duration::from_secs(2),
        ..ServeOptions::default()
    };
    let srv = LiveServer::start(opts);

    // Occupy the only permit: send a complete head claiming a body that
    // never arrives. The permit is held until the body read times out.
    let mut stall = TcpStream::connect(srv.addr).expect("connect");
    stall
        .write_all(b"POST /enrich HTTP/1.1\r\nContent-Length: 10\r\n\r\n")
        .unwrap();
    stall.flush().unwrap();
    // Give the connection thread time to pass head-parsing and take the
    // permit before the probe arrives.
    std::thread::sleep(Duration::from_millis(300));

    let resp = request(&srv.addr, "POST", "/enrich", &batch_body()).expect("probe");
    assert_eq!(resp.status, 429, "body: {}", resp.body_str());
    assert_eq!(resp.header("Retry-After").map(str::trim), Some("1"));
    assert!(resp.body_str().contains("overloaded"));

    // Health and metrics never take a permit.
    let health = request(&srv.addr, "GET", "/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200);

    // After the stalled request times out, the permit is released.
    drop(stall);
    let mut ok = None;
    for _ in 0..50 {
        let resp = request(&srv.addr, "POST", "/enrich", &batch_body()).expect("retry");
        if resp.status == 200 {
            ok = Some(resp);
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let ok = ok.expect("permit released after stall");
    assert_eq!(ok.header("X-Thor-Quarantined").map(str::trim), Some("0"));
}

/// An injected fault at the per-request seam surfaces as a named 500
/// and the process keeps serving — the chaos contract.
#[test]
fn injected_fault_is_500_and_survivable() {
    let _guard = thor_fault::scoped_failpoints("serve_request:err@1");
    let srv = LiveServer::start(ServeOptions::default());

    let failed = request(&srv.addr, "POST", "/enrich", &batch_body()).expect("faulted request");
    assert_eq!(failed.status, 500, "body: {}", failed.body_str());
    assert!(failed.body_str().contains("injected-fault"));

    // err@1 fires once; the very next request succeeds on the same
    // process.
    let ok = request(&srv.addr, "POST", "/enrich", &batch_body()).expect("recovery");
    assert_eq!(ok.status, 200, "body: {}", ok.body_str());
    assert!(ok.body_str().starts_with("Disease"));
}

/// Garbage request bodies are per-request failures (named 4xx), never
/// process failures.
#[test]
fn garbage_bodies_never_kill_the_server() {
    let srv = LiveServer::start(ServeOptions::default());
    let cases: &[(&[u8], &str)] = &[
        (b"\xff\xfe\x00garbage", "bad-utf8"),
        (b"{not json", "bad-json"),
        (b"[1,2,3]", "bad-request-shape"),
        (br#"{"documents":[]}"#, "empty-batch"),
        (br#"{"documents":[{"id":"d0"}]}"#, "bad-document"),
    ];
    for (body, want) in cases {
        let resp = request(&srv.addr, "POST", "/enrich", body).expect("garbage request");
        assert!(
            (400..500).contains(&resp.status),
            "{want}: status {}",
            resp.status
        );
        assert!(
            resp.body_str().contains(want),
            "{want}: body {}",
            resp.body_str()
        );
    }
    let ok = request(&srv.addr, "POST", "/enrich", &batch_body()).expect("after garbage");
    assert_eq!(ok.status, 200);
}

/// Pipelined keep-alive requests on one connection are answered in
/// order, one response per request.
#[test]
fn pipelined_live_requests_answered_in_order() {
    let srv = LiveServer::start(ServeOptions::default());
    let mut stream = TcpStream::connect(srv.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Two healthz and one enrich, written back-to-back before reading.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n")
        .unwrap();
    send_request(&mut stream, "POST", "/enrich", &batch_body()).unwrap();

    let mut reader = RequestReader::new(stream);
    let health = Response::read_from(&mut reader).expect("healthz");
    assert_eq!(health.status, 200);
    let health_body = health.body_str();
    assert!(
        health_body.contains("\"status\"") && health_body.contains("\"serving\""),
        "healthz body: {health_body}"
    );
    assert!(
        health_body.contains("\"epoch\"") && health_body.contains("\"fingerprint\""),
        "healthz body: {health_body}"
    );
    let metrics = Response::read_from(&mut reader).expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body_str().contains("serve.requests"));
    let enrich = Response::read_from(&mut reader).expect("enrich");
    assert_eq!(enrich.status, 200);
    assert!(enrich.body_str().starts_with("Disease"));
}

/// Unknown routes and wrong methods are named errors that keep the
/// connection usable.
#[test]
fn routing_errors_are_named() {
    let srv = LiveServer::start(ServeOptions::default());
    let missing = request(&srv.addr, "GET", "/nope", b"").expect("404");
    assert_eq!(missing.status, 404);
    assert!(missing.body_str().contains("not-found"));
    let wrong = request(&srv.addr, "GET", "/enrich", b"").expect("405");
    assert_eq!(wrong.status, 405);
    assert!(wrong.body_str().contains("method-not-allowed"));
}

/// Shutdown drains: in-flight work finishes, the accept loop exits, and
/// new connections are refused afterwards.
#[test]
fn drain_finishes_in_flight_and_stops_accepting() {
    let srv = LiveServer::start(ServeOptions::default());
    let addr = srv.addr;

    let ok = request(&addr, "POST", "/enrich", &batch_body()).expect("pre-drain");
    assert_eq!(ok.status, 200);

    drop(srv); // shutdown + join via Drop: run() must return.

    // The listener is gone; a fresh connection either fails outright or
    // is never answered.
    match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut buf = Vec::new();
            let n = s.read_to_end(&mut buf).unwrap_or(0);
            assert_eq!(
                n,
                0,
                "drained server answered: {:?}",
                String::from_utf8_lossy(&buf)
            );
        }
    }
}
