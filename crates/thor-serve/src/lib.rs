//! The online front end of the THOR reproduction: a std-only HTTP/1.1
//! server over the frozen [`thor_core::PreparedEngine`].
//!
//! The paper's conceptualization pipeline only mitigates sparsity in
//! *integrated* data if it can be queried continuously as new text
//! arrives; this crate turns the build/serve split into an actual
//! serving process. `POST /enrich` and `POST /extract` accept document
//! batches and answer with exactly the bytes the batch CLI writes
//! (enriched-table CSV, entity TSV) — served output is diff-able
//! against `thor enrich`. `GET /healthz` and `GET /metrics` expose
//! liveness and the thor-obs metrics document, including per-request
//! latency histograms.
//!
//! Design constraints, in order:
//!
//! * **No new dependencies.** The protocol layer ([`http`]) is a small
//!   hand-written HTTP/1.1 parser/writer over `std::net`, hardened by a
//!   proptest battery (truncation, oversized headers, bad
//!   `Content-Length`, pipelining, slowloris) — every malformed input
//!   is a *named* 4xx/408, never a panic or a hang.
//! * **One bad request costs one request.** Handlers run under
//!   `catch_unwind`; malformed documents go through the same admission
//!   checks and quarantine ledger as the batch resilient runner.
//! * **Overload is refused, not queued.** A bounded admission gate
//!   yields `429 Retry-After` the moment the configured concurrency is
//!   exceeded — the server never accumulates an unbounded backlog.
//! * **Drain, don't drop.** SIGTERM/ctrl-c stops accepting, finishes
//!   in-flight requests, and leaves metrics flushable by the caller.
//! * **Reload without a restart.** SIGHUP (or `--watch-engine` polling)
//!   drives the [`reload`] state machine: candidates are validated
//!   end-to-end — including a re-verified section-directory checksum —
//!   before the epoch-versioned hot swap; a corrupt candidate is
//!   rejected by name while the old generation keeps serving. Panicked
//!   accept workers are restarted with backoff, and a crash loop trips
//!   a breaker that turns `/healthz` into a 503 `degraded` report.

#![warn(missing_docs)]

pub mod http;
pub mod reload;
pub mod server;
pub mod signal;

pub use http::{HttpError, HttpLimits, RequestHead, RequestReader, Response};
pub use reload::{artifact_stamp, try_reload, ArtifactStamp, ReloadConfig};
pub use server::{ServeOptions, Server, ShutdownHandle};
