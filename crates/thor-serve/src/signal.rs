//! Graceful-drain and hot-reload signal handling without a libc crate.
//!
//! On Unix, `std` already links libc, so the classic `signal(2)` entry
//! point can be declared directly. Each handler does the only thing an
//! async-signal-safe handler may do here: set an atomic flag. The
//! accept loop polls the drain flag (SIGTERM/SIGINT → stop accepting,
//! finish in-flight requests, flush metrics); the reload loop polls the
//! reload flag (SIGHUP → re-open the engine artifact and hot-swap).

use std::sync::atomic::{AtomicBool, Ordering};

/// Set once SIGTERM or SIGINT has been delivered.
static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Set when SIGHUP (or [`request_reload`]) asks for an engine reload;
/// consumed by [`take_reload_request`].
static RELOAD: AtomicBool = AtomicBool::new(false);

/// True once a termination signal has been received (or
/// [`trigger`] was called).
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Raise the drain flag programmatically (tests, embedders).
pub fn trigger() {
    TRIGGERED.store(true, Ordering::SeqCst);
}

/// Raise the reload flag programmatically (tests, embedders) — the
/// same effect as delivering SIGHUP.
pub fn request_reload() {
    RELOAD.store(true, Ordering::SeqCst);
}

/// Consume a pending reload request. Returns true at most once per
/// request (SIGHUPs delivered while a reload is running coalesce into
/// one follow-up reload).
pub fn take_reload_request() -> bool {
    RELOAD.swap(false, Ordering::SeqCst)
}

/// Install SIGTERM + SIGINT handlers that raise the drain flag.
/// Idempotent; a no-op on non-Unix targets.
pub fn install_handlers() {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" fn on_signal(_signum: i32) {
            TRIGGERED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Install a SIGHUP handler that raises the reload flag. Idempotent; a
/// no-op on non-Unix targets.
pub fn install_reload_handler() {
    #[cfg(unix)]
    {
        const SIGHUP: i32 = 1;
        extern "C" fn on_hup(_signum: i32) {
            RELOAD.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        unsafe {
            signal(SIGHUP, on_hup as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_raises_the_flag() {
        install_handlers();
        trigger();
        assert!(triggered());
    }

    #[test]
    fn reload_requests_are_consumed_once() {
        install_reload_handler();
        assert!(!take_reload_request());
        request_reload();
        request_reload(); // coalesces
        assert!(take_reload_request());
        assert!(!take_reload_request());
    }
}
