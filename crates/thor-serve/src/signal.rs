//! Graceful-drain signal handling without a libc crate.
//!
//! On Unix, `std` already links libc, so the classic `signal(2)` entry
//! point can be declared directly. The handler does the only thing an
//! async-signal-safe handler may do here: set an atomic flag. The
//! accept loop polls the flag and turns it into a drain (stop
//! accepting, finish in-flight requests, flush metrics).

use std::sync::atomic::{AtomicBool, Ordering};

/// Set once SIGTERM or SIGINT has been delivered.
static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// True once a termination signal has been received (or
/// [`trigger`] was called).
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Raise the drain flag programmatically (tests, embedders).
pub fn trigger() {
    TRIGGERED.store(true, Ordering::SeqCst);
}

/// Install SIGTERM + SIGINT handlers that raise the drain flag.
/// Idempotent; a no-op on non-Unix targets.
pub fn install_handlers() {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" fn on_signal(_signum: i32) {
            TRIGGERED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_raises_the_flag() {
        install_handlers();
        trigger();
        assert!(triggered());
    }
}
