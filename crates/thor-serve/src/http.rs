//! Minimal, hardened HTTP/1.1 protocol layer: request parsing with
//! explicit limits, response writing, and a tiny client for tests and
//! the load harness.
//!
//! The parser is deliberately boring: bounded buffers, named errors,
//! no allocation proportional to anything the peer controls beyond the
//! configured caps. Every way a request can be malformed maps to one
//! [`HttpError`] variant with a stable machine-readable name and an
//! HTTP status — the protocol proptest battery asserts arbitrary bytes
//! can only ever produce one of those, never a panic or a hang.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Hard limits applied while parsing a request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Longest accepted request line (method + target + version).
    pub max_request_line: usize,
    /// Cap on the total header block, in bytes.
    pub max_header_bytes: usize,
    /// Cap on the number of header fields.
    pub max_headers: usize,
    /// Cap on the declared request body size.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self {
            max_request_line: 8 * 1024,
            max_header_bytes: 32 * 1024,
            max_headers: 128,
            // A batch of documents; per-document size is additionally
            // capped by the admission policy.
            max_body_bytes: 32 * 1024 * 1024,
        }
    }
}

/// Everything that can go wrong while reading one request. Each variant
/// carries a stable name (for JSON error bodies) and an HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Connection ended mid-request (after at least one byte arrived).
    Truncated,
    /// The request line is not `METHOD SP TARGET SP HTTP/x.y`.
    BadRequestLine,
    /// Syntactically valid but unrecognized method token.
    UnsupportedMethod(String),
    /// An HTTP version other than 1.0 or 1.1.
    UnsupportedVersion(String),
    /// Request line exceeded [`HttpLimits::max_request_line`].
    UriTooLong,
    /// Header block exceeded [`HttpLimits::max_header_bytes`].
    HeadersTooLarge,
    /// More than [`HttpLimits::max_headers`] header fields.
    TooManyHeaders,
    /// A header line without a colon, or with an invalid field name.
    BadHeader,
    /// A body-bearing request without a `Content-Length`.
    LengthRequired,
    /// `Content-Length` not a number, or conflicting duplicates.
    BadContentLength(String),
    /// `Transfer-Encoding` is declared (chunked bodies unsupported).
    UnsupportedTransferEncoding,
    /// Declared body larger than [`HttpLimits::max_body_bytes`].
    BodyTooLarge(usize),
    /// The peer stalled past the read deadline with a request partially
    /// sent (slowloris).
    Timeout,
    /// Transport error while reading.
    Io(io::ErrorKind),
}

impl HttpError {
    /// The HTTP status this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Truncated | HttpError::BadRequestLine | HttpError::BadHeader => 400,
            HttpError::BadContentLength(_) => 400,
            HttpError::Io(_) => 400,
            HttpError::Timeout => 408,
            HttpError::LengthRequired => 411,
            HttpError::BodyTooLarge(_) => 413,
            HttpError::UriTooLong => 414,
            HttpError::HeadersTooLarge | HttpError::TooManyHeaders => 431,
            HttpError::UnsupportedMethod(_) | HttpError::UnsupportedTransferEncoding => 501,
            HttpError::UnsupportedVersion(_) => 505,
        }
    }

    /// Stable machine-readable name for JSON error bodies.
    pub fn name(&self) -> &'static str {
        match self {
            HttpError::Truncated => "truncated-request",
            HttpError::BadRequestLine => "bad-request-line",
            HttpError::UnsupportedMethod(_) => "unsupported-method",
            HttpError::UnsupportedVersion(_) => "unsupported-version",
            HttpError::UriTooLong => "uri-too-long",
            HttpError::HeadersTooLarge => "headers-too-large",
            HttpError::TooManyHeaders => "too-many-headers",
            HttpError::BadHeader => "bad-header",
            HttpError::LengthRequired => "length-required",
            HttpError::BadContentLength(_) => "bad-content-length",
            HttpError::UnsupportedTransferEncoding => "unsupported-transfer-encoding",
            HttpError::BodyTooLarge(_) => "body-too-large",
            HttpError::Timeout => "read-timeout",
            HttpError::Io(_) => "io-error",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::UnsupportedMethod(m) => write!(f, "unsupported method `{m}`"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version `{v}`"),
            HttpError::BadContentLength(v) => write!(f, "bad Content-Length `{v}`"),
            HttpError::BodyTooLarge(n) => write!(f, "declared body of {n} bytes exceeds the cap"),
            HttpError::Io(kind) => write!(f, "transport error: {kind:?}"),
            other => f.write_str(other.name()),
        }
    }
}

/// Methods the parser recognizes. Routing (405 vs 404) happens in the
/// server; an unknown *token* is a protocol-level 501.
const KNOWN_METHODS: &[&str] = &["GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH"];

/// The parsed request line + headers (the body is read separately, so
/// the admission gate can refuse overload *before* buffering a body).
#[derive(Debug, Clone)]
pub struct RequestHead {
    /// Request method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path, no normalization).
    pub target: String,
    /// True for HTTP/1.1, false for HTTP/1.0.
    pub http11: bool,
    /// Header fields in arrival order.
    pub headers: Vec<(String, String)>,
}

impl RequestHead {
    /// First value of `name`, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection persists after this exchange
    /// (HTTP/1.1 default keep-alive, HTTP/1.0 default close).
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }

    /// The validated `Content-Length`, if declared.
    ///
    /// Bad syntax, conflicting duplicates, chunked transfer encoding
    /// and over-cap declarations are all named errors — the server
    /// rejects them before reading a single body byte.
    pub fn content_length(&self, limits: &HttpLimits) -> Result<Option<usize>, HttpError> {
        if self.header("transfer-encoding").is_some() {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        let mut declared: Option<usize> = None;
        for (k, v) in &self.headers {
            if !k.eq_ignore_ascii_case("content-length") {
                continue;
            }
            let n: usize = v
                .trim()
                .parse()
                .map_err(|_| HttpError::BadContentLength(v.clone()))?;
            match declared {
                Some(prev) if prev != n => {
                    return Err(HttpError::BadContentLength(format!("{prev} vs {n}")))
                }
                _ => declared = Some(n),
            }
        }
        if let Some(n) = declared {
            if n > limits.max_body_bytes {
                return Err(HttpError::BodyTooLarge(n));
            }
        }
        Ok(declared)
    }
}

/// Parse a complete head block (request line + header lines, *without*
/// the terminating blank line). Pure function — this is the surface the
/// proptest battery fuzzes directly.
pub fn parse_head(head: &[u8], limits: &HttpLimits) -> Result<RequestHead, HttpError> {
    if head.len() > limits.max_request_line + limits.max_header_bytes {
        return Err(HttpError::HeadersTooLarge);
    }
    let mut lines = split_crlf_lines(head);
    let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
    if request_line.len() > limits.max_request_line {
        return Err(HttpError::UriTooLong);
    }
    let request_line = std::str::from_utf8(request_line).map_err(|_| HttpError::BadRequestLine)?;
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::BadRequestLine);
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine);
    }
    if !KNOWN_METHODS.contains(&method) {
        return Err(HttpError::UnsupportedMethod(method.to_string()));
    }
    if target.is_empty() || !target.starts_with('/') {
        return Err(HttpError::BadRequestLine);
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            if other.starts_with("HTTP/") {
                return Err(HttpError::UnsupportedVersion(other.to_string()));
            }
            return Err(HttpError::BadRequestLine);
        }
    };

    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders);
        }
        let line = std::str::from_utf8(line).map_err(|_| HttpError::BadHeader)?;
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::BadHeader);
        }
        let value = value.trim();
        if value.bytes().any(|b| b == b'\r' || b == b'\n' || b == 0) {
            return Err(HttpError::BadHeader);
        }
        headers.push((name.to_string(), value.to_string()));
    }
    Ok(RequestHead {
        method: method.to_string(),
        target: target.to_string(),
        http11,
        headers,
    })
}

/// RFC 7230 token characters, the legal alphabet of header field names.
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

/// Iterate `\r\n`-separated lines (tolerating bare `\n` as the
/// separator, which curl never sends but sloppy clients do).
fn split_crlf_lines(block: &[u8]) -> impl Iterator<Item = &[u8]> {
    block.split(|&b| b == b'\n').filter_map(|line| {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if line.is_empty() {
            None
        } else {
            Some(line)
        }
    })
}

/// What one buffer refill produced.
enum Fill {
    /// At least one new byte arrived.
    Data,
    /// Orderly end of stream.
    Eof,
    /// The read timed out (socket read-timeout tick).
    TimedOut,
}

/// A buffered, pipelining-aware request reader over any [`Read`].
///
/// Keep-alive connections leave the next request's bytes in the buffer;
/// `read_head` picks them up without touching the socket. The socket is
/// expected to have a short read timeout installed — the reader treats
/// each timeout as a poll tick, re-checking the shutdown flag and the
/// per-request deadline, so a drain never waits on an idle peer and a
/// slowloris peer gets a deterministic [`HttpError::Timeout`].
#[derive(Debug)]
pub struct RequestReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Total time a single head/body read may span (slowloris bound).
    pub read_timeout: Option<Duration>,
}

impl<R: Read> RequestReader<R> {
    /// A reader with no deadline (tests, in-memory streams).
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            read_timeout: None,
        }
    }

    fn fill(&mut self) -> Result<Fill, HttpError> {
        let mut chunk = [0u8; 8192];
        match self.inner.read(&mut chunk) {
            Ok(0) => Ok(Fill::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(Fill::Data)
            }
            Err(e) => match e.kind() {
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => Ok(Fill::TimedOut),
                io::ErrorKind::Interrupted => Ok(Fill::TimedOut),
                kind => Err(HttpError::Io(kind)),
            },
        }
    }

    /// Read the next request head. `Ok(None)` means the peer closed (or
    /// went idle past the deadline / into a drain) cleanly *between*
    /// requests; errors name what was wrong with a partial request.
    pub fn read_head(
        &mut self,
        limits: &HttpLimits,
        shutdown: Option<&AtomicBool>,
    ) -> Result<Option<RequestHead>, HttpError> {
        let deadline = self.read_timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(end) = find_head_end(&self.buf) {
                let head = self.buf[..end].to_vec();
                self.buf.drain(..end + 4);
                return parse_head(&head, limits).map(Some);
            }
            // No complete head yet: enforce the size caps on what has
            // accumulated so a peer cannot grow the buffer unboundedly.
            if !self.buf.contains(&b'\n') && self.buf.len() > limits.max_request_line {
                return Err(HttpError::UriTooLong);
            }
            if self.buf.len() > limits.max_request_line + limits.max_header_bytes {
                return Err(HttpError::HeadersTooLarge);
            }
            match self.fill()? {
                Fill::Data => {}
                Fill::Eof => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(HttpError::Truncated)
                    }
                }
                Fill::TimedOut => {
                    if self.buf.is_empty() {
                        // Idle between requests: a drain or an expired
                        // keep-alive closes silently, otherwise keep
                        // polling.
                        if shutdown.is_some_and(|s| s.load(Ordering::SeqCst)) {
                            return Ok(None);
                        }
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            return Ok(None);
                        }
                    } else if deadline.is_some_and(|d| Instant::now() >= d) {
                        // Mid-request stall: the slowloris case.
                        return Err(HttpError::Timeout);
                    }
                }
            }
        }
    }

    /// Read exactly `len` body bytes (the head's validated
    /// `Content-Length`).
    pub fn read_body(&mut self, len: usize) -> Result<Vec<u8>, HttpError> {
        let deadline = self.read_timeout.map(|t| Instant::now() + t);
        while self.buf.len() < len {
            match self.fill()? {
                Fill::Data => {}
                Fill::Eof => return Err(HttpError::Truncated),
                Fill::TimedOut => {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return Err(HttpError::Timeout);
                    }
                }
            }
        }
        let body: Vec<u8> = self.buf.drain(..len).collect();
        Ok(body)
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Canonical reason phrase for the statuses this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Write one response. `Content-Length` and (when `!keep_alive`)
/// `Connection: close` are added automatically.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut out = format!("HTTP/1.1 {status} {}\r\n", status_reason(status));
    for (k, v) in headers {
        out.push_str(k);
        out.push_str(": ");
        out.push_str(v);
        out.push_str("\r\n");
    }
    out.push_str(&format!("Content-Length: {}\r\n", body.len()));
    if !keep_alive {
        out.push_str("Connection: close\r\n");
    }
    out.push_str("\r\n");
    w.write_all(out.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// A parsed response, for the test suite and the load harness.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Header fields in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body, as framed by `Content-Length`.
    pub body: Vec<u8>,
}

impl Response {
    /// First value of `name`, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy — test convenience).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Read one response off `r` (client side of the protocol).
    pub fn read_from(r: &mut RequestReader<impl Read>) -> Result<Response, String> {
        let mut head_end;
        loop {
            head_end = find_head_end(&r.buf);
            if head_end.is_some() {
                break;
            }
            match r.fill().map_err(|e| e.to_string())? {
                Fill::Data => {}
                Fill::Eof => return Err("connection closed before response head".into()),
                Fill::TimedOut => {}
            }
        }
        let end = head_end.expect("loop exits with a head");
        let head: Vec<u8> = r.buf.drain(..end + 4).collect();
        let head = String::from_utf8_lossy(&head[..end]).into_owned();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or("empty response head")?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad status line `{status_line}`"))?;
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (k, v) = line.split_once(':').ok_or("bad response header")?;
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
        let len: usize = headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        let body = r.read_body(len).map_err(|e| e.to_string())?;
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}

/// One-shot client request against `addr` (its own connection). Used by
/// the equivalence tests, the smoke paths and the load generators.
pub fn request(
    addr: &std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<Response, String> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    send_request(&mut stream, method, path, body)?;
    let mut reader = RequestReader::new(stream);
    Response::read_from(&mut reader)
}

/// Write one request (used for keep-alive clients that own the stream).
pub fn send_request(
    stream: &mut std::net::TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(), String> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: thor\r\nContent-Length: {}\r\nContent-Type: application/json\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn limits() -> HttpLimits {
        HttpLimits::default()
    }

    fn read_one(raw: &[u8]) -> Result<Option<RequestHead>, HttpError> {
        RequestReader::new(Cursor::new(raw.to_vec())).read_head(&limits(), None)
    }

    #[test]
    fn parses_a_plain_get() {
        let head = read_one(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(head.method, "GET");
        assert_eq!(head.target, "/healthz");
        assert!(head.http11);
        assert!(head.keep_alive());
        assert_eq!(head.header("host"), Some("x"));
        assert_eq!(head.content_length(&limits()).unwrap(), None);
    }

    #[test]
    fn pipelined_requests_come_back_in_order() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = RequestReader::new(Cursor::new(raw.to_vec()));
        let a = r.read_head(&limits(), None).unwrap().unwrap();
        let b = r.read_head(&limits(), None).unwrap().unwrap();
        assert_eq!((a.target.as_str(), b.target.as_str()), ("/a", "/b"));
        assert!(a.keep_alive());
        assert!(!b.keep_alive());
        assert!(r.read_head(&limits(), None).unwrap().is_none());
    }

    #[test]
    fn body_spans_refills_and_leaves_next_request_buffered() {
        let raw = b"POST /enrich HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /z HTTP/1.1\r\n\r\n";
        let mut r = RequestReader::new(Cursor::new(raw.to_vec()));
        let head = r.read_head(&limits(), None).unwrap().unwrap();
        let len = head.content_length(&limits()).unwrap().unwrap();
        assert_eq!(r.read_body(len).unwrap(), b"hello");
        let next = r.read_head(&limits(), None).unwrap().unwrap();
        assert_eq!(next.target, "/z");
    }

    #[test]
    fn named_errors_for_malformed_heads() {
        let cases: &[(&[u8], HttpError)] = &[
            (b"GET /x\r\n\r\n", HttpError::BadRequestLine),
            (b"GET /x HTTP/1.1 extra\r\n\r\n", HttpError::BadRequestLine),
            (b"get /x HTTP/1.1\r\n\r\n", HttpError::BadRequestLine),
            (
                b"BREW /x HTTP/1.1\r\n\r\n",
                HttpError::UnsupportedMethod("BREW".into()),
            ),
            (
                b"GET /x HTTP/2.0\r\n\r\n",
                HttpError::UnsupportedVersion("HTTP/2.0".into()),
            ),
            (b"GET /x FTP/1.1\r\n\r\n", HttpError::BadRequestLine),
            (b"GET x HTTP/1.1\r\n\r\n", HttpError::BadRequestLine),
            (
                b"GET /x HTTP/1.1\r\nno colon here\r\n\r\n",
                HttpError::BadHeader,
            ),
            (
                b"GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n",
                HttpError::BadHeader,
            ),
        ];
        for (raw, want) in cases {
            let got = read_one(raw).unwrap_err();
            assert_eq!(&got, want, "{}", String::from_utf8_lossy(raw));
        }
    }

    #[test]
    fn truncated_request_is_named_not_hung() {
        assert_eq!(
            read_one(b"POST /enrich HTTP/1.1\r\nContent-Le").unwrap_err(),
            HttpError::Truncated
        );
        let mut r = RequestReader::new(Cursor::new(
            b"POST /e HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc".to_vec(),
        ));
        r.read_head(&limits(), None).unwrap().unwrap();
        assert_eq!(r.read_body(10).unwrap_err(), HttpError::Truncated);
    }

    #[test]
    fn content_length_validation() {
        let head = read_one(b"POST /e HTTP/1.1\r\nContent-Length: abc\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(matches!(
            head.content_length(&limits()),
            Err(HttpError::BadContentLength(_))
        ));
        let head = read_one(b"POST /e HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(matches!(
            head.content_length(&limits()),
            Err(HttpError::BadContentLength(_))
        ));
        let head = read_one(b"POST /e HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(
            head.content_length(&limits()),
            Err(HttpError::UnsupportedTransferEncoding)
        );
        let head = read_one(b"POST /e HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(matches!(
            head.content_length(&limits()),
            Err(HttpError::BodyTooLarge(_))
        ));
    }

    #[test]
    fn oversized_heads_are_capped() {
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(9000));
        assert_eq!(
            read_one(long_line.as_bytes()).unwrap_err(),
            HttpError::UriTooLong
        );

        // An endless unterminated request line trips the cap even
        // though no newline ever arrives.
        let endless = vec![b'G'; 10_000];
        assert_eq!(read_one(&endless).unwrap_err(), HttpError::UriTooLong);

        let mut many = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..200 {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert_eq!(
            read_one(many.as_bytes()).unwrap_err(),
            HttpError::TooManyHeaders
        );

        let mut big = String::from("GET /x HTTP/1.1\r\n");
        for i in 0..90 {
            big.push_str(&format!("h{i}: {}\r\n", "v".repeat(512)));
        }
        big.push_str("\r\n");
        assert_eq!(
            read_one(big.as_bytes()).unwrap_err(),
            HttpError::HeadersTooLarge
        );
    }

    #[test]
    fn every_error_maps_to_a_4xx_5xx_with_a_name() {
        let errors = [
            HttpError::Truncated,
            HttpError::BadRequestLine,
            HttpError::UnsupportedMethod("X".into()),
            HttpError::UnsupportedVersion("HTTP/9".into()),
            HttpError::UriTooLong,
            HttpError::HeadersTooLarge,
            HttpError::TooManyHeaders,
            HttpError::BadHeader,
            HttpError::LengthRequired,
            HttpError::BadContentLength("x".into()),
            HttpError::UnsupportedTransferEncoding,
            HttpError::BodyTooLarge(1),
            HttpError::Timeout,
            HttpError::Io(io::ErrorKind::ConnectionReset),
        ];
        for e in errors {
            assert!((400..=599).contains(&e.status()), "{e:?}");
            assert!(!e.name().is_empty());
            assert_ne!(status_reason(e.status()), "Unknown", "{e:?}");
        }
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(
            &mut wire,
            200,
            &[("Content-Type", "text/csv".to_string())],
            b"a,b\n1,2\n",
            true,
        )
        .unwrap();
        let mut r = RequestReader::new(Cursor::new(wire));
        let resp = Response::read_from(&mut r).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("text/csv"));
        assert_eq!(resp.body, b"a,b\n1,2\n");
    }
}
