//! The serving loop: admission-gated request handling over a frozen
//! [`PreparedEngine`].
//!
//! One blocking accept loop hands each connection to a handler thread;
//! the heavy lifting inside a request (document-parallel extraction)
//! runs on the process-wide `thor_core::WorkerPool`, exactly as a batch
//! run would. Admission is a fixed pool of permits acquired *after* the
//! request head and *before* the body — an overloaded server refuses
//! with `429 Retry-After` instead of buffering bodies it cannot chew,
//! and a stalled client holds exactly one permit until the read
//! deadline fires.
//!
//! Batch requests flow through [`PreparedEngine::enrich_resilient`] in
//! lenient mode: per-document admission control and `catch_unwind`
//! isolation are the same code the batch CLI runs, so a malformed
//! document costs one document (reported per-request), and the clean
//! documents produce byte-identical output to `thor enrich`.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use thor_core::{entities_tsv, Document, PreparedEngine, ResilientOptions, RunMode};
use thor_fault::{fail_point, DocumentPolicy, ErrorKind, ThorError, ThorResult};
use thor_obs::{Counter, Histogram, Json, PipelineMetrics};

use crate::http::{write_response, HttpLimits, RequestHead, RequestReader};
use crate::signal;

/// Tunables of one serving process.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Concurrent admitted batch requests; one more is a 429.
    pub queue: usize,
    /// Total time one request head/body may take to arrive (slowloris
    /// bound; also the longest a drain waits on an idle connection).
    pub read_timeout: Duration,
    /// Protocol limits.
    pub limits: HttpLimits,
    /// Per-document admission policy for batch bodies.
    pub policy: DocumentPolicy,
    /// Also honor the process-wide SIGTERM/SIGINT drain flag
    /// ([`signal::triggered`]). The CLI sets this; tests drive the
    /// shutdown handle directly.
    pub watch_signals: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            queue: 32,
            read_timeout: Duration::from_secs(10),
            limits: HttpLimits::default(),
            policy: DocumentPolicy::default(),
            watch_signals: false,
        }
    }
}

/// Serve-layer metric handles + the admission permit pool.
struct ServeStats {
    permits: AtomicUsize,
    requests: Arc<Counter>,
    rejected: Arc<Counter>,
    http_errors: Arc<Counter>,
    panics: Arc<Counter>,
    lat_enrich: Arc<Histogram>,
    lat_extract: Arc<Histogram>,
}

/// RAII admission permit.
struct Permit<'a>(&'a ServeStats);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.permits.fetch_add(1, Ordering::AcqRel);
    }
}

impl ServeStats {
    fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut cur = self.permits.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return None;
            }
            match self
                .permits
                .compare_exchange(cur, cur - 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(Permit(self)),
                Err(now) => cur = now,
            }
        }
    }
}

/// Shared per-connection context.
struct Ctx {
    engine: PreparedEngine,
    metrics: PipelineMetrics,
    stats: ServeStats,
    opts: ServeOptions,
    shutdown: AtomicBool,
}

impl Ctx {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || (self.opts.watch_signals && signal::triggered())
    }
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Bind `addr` and wire the engine up for serving: a fresh
    /// [`PipelineMetrics`] is attached (so `/metrics` sees pipeline
    /// stages and quarantine counts) and the serve-layer counters and
    /// latency histograms are registered alongside.
    pub fn bind(engine: PreparedEngine, addr: &str, opts: ServeOptions) -> ThorResult<Server> {
        let metrics = PipelineMetrics::new();
        let engine = engine.with_metrics(metrics.clone());
        let registry = metrics.registry();
        let stats = ServeStats {
            permits: AtomicUsize::new(opts.queue.max(1)),
            requests: registry.counter("serve.requests"),
            rejected: registry.counter("serve.rejected"),
            http_errors: registry.counter("serve.http_errors"),
            panics: registry.counter("serve.panics"),
            lat_enrich: registry.histogram("serve.latency.enrich"),
            lat_extract: registry.histogram("serve.latency.extract"),
        };
        let listener =
            TcpListener::bind(addr).map_err(|e| ThorError::io(format!("bind {addr}"), e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ThorError::io("local_addr", e))?;
        Ok(Server {
            listener,
            local_addr,
            ctx: Arc::new(Ctx {
                engine,
                metrics,
                stats,
                opts,
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The address actually bound (port resolved for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The metrics handle `/metrics` serves — clone it before
    /// [`Server::run`] to flush a final snapshot after the drain.
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.ctx.metrics
    }

    /// A handle that, once set, drains the server: the accept loop
    /// stops taking connections, in-flight requests finish, idle
    /// keep-alive connections close at their next poll tick.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.ctx))
    }

    /// Run the blocking accept loop until drained. Returns after every
    /// in-flight connection has finished.
    pub fn run(self) -> ThorResult<()> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ThorError::io("set_nonblocking", e))?;
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.ctx.draining() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Responses are written head + body in separate
                    // syscalls; without NODELAY, Nagle + delayed ACK
                    // stalls keep-alive round trips by ~40-130ms.
                    let _ = stream.set_nodelay(true);
                    let ctx = Arc::clone(&self.ctx);
                    conns.push(std::thread::spawn(move || handle_connection(stream, &ctx)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(ThorError::io("accept", e)),
            }
            conns.retain(|h| !h.is_finished());
        }
        // Drain: finish in-flight connections before returning so the
        // caller can flush metrics knowing nothing is still recording.
        for h in conns {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Cloneable drain trigger for a running server.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<Ctx>);

impl ShutdownHandle {
    /// Begin the drain.
    pub fn shutdown(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Poll tick installed as the socket read timeout: short enough that a
/// drain is noticed promptly, while [`ServeOptions::read_timeout`]
/// bounds how long one request may take in total.
fn poll_tick(opts: &ServeOptions) -> Duration {
    opts.read_timeout.min(Duration::from_millis(100))
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let _ = read_half.set_read_timeout(Some(poll_tick(&ctx.opts)));
    let mut reader = RequestReader::new(read_half);
    reader.read_timeout = Some(ctx.opts.read_timeout);
    let mut writer = stream;
    loop {
        match reader.read_head(&ctx.opts.limits, Some(&ctx.shutdown)) {
            Ok(None) => break,
            Err(e) => {
                ctx.stats.http_errors.inc();
                let _ = write_error(&mut writer, e.status(), e.name(), &e.to_string(), false);
                break;
            }
            Ok(Some(head)) => {
                let keep_alive = handle_request(&mut writer, &mut reader, &head, ctx)
                    && head.keep_alive()
                    && !ctx.draining();
                if !keep_alive {
                    break;
                }
            }
        }
    }
}

/// Write a JSON error body: `{"error": name, "detail": ...}`.
fn write_error(
    w: &mut impl std::io::Write,
    status: u16,
    name: &str,
    detail: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = Json::Object(
        [
            ("error".to_string(), Json::Str(name.to_string())),
            ("detail".to_string(), Json::Str(detail.to_string())),
        ]
        .into_iter()
        .collect(),
    )
    .render();
    let mut headers = vec![("Content-Type", "application/json".to_string())];
    if status == 429 {
        headers.push(("Retry-After", "1".to_string()));
    }
    write_response(w, status, &headers, body.as_bytes(), keep_alive)
}

/// Dispatch one parsed request. Returns whether the connection may
/// continue (protocol-level failures close it so framing stays sound).
fn handle_request(
    writer: &mut TcpStream,
    reader: &mut RequestReader<TcpStream>,
    head: &RequestHead,
    ctx: &Ctx,
) -> bool {
    match (head.method.as_str(), head.target.as_str()) {
        ("GET", "/healthz") => {
            let engine = &ctx.engine;
            let body = Json::Object(
                [
                    ("status".to_string(), Json::Str("ok".into())),
                    (
                        "fingerprint".to_string(),
                        Json::Str(engine.fingerprint().to_string()),
                    ),
                    ("tau".to_string(), Json::Float(engine.tau())),
                    (
                        "concepts".to_string(),
                        Json::UInt(engine.prepared_matcher().concept_names().len() as u64),
                    ),
                    ("draining".to_string(), Json::Bool(ctx.draining())),
                ]
                .into_iter()
                .collect(),
            )
            .render();
            ctx.stats.requests.inc();
            write_ok(writer, "application/json", body.into_bytes(), &[], true)
        }
        ("GET", "/metrics") => {
            let body = ctx.metrics.render_json();
            ctx.stats.requests.inc();
            write_ok(writer, "application/json", body.into_bytes(), &[], true)
        }
        ("POST", path @ ("/enrich" | "/extract")) => handle_batch(writer, reader, head, path, ctx),
        (_, "/healthz" | "/metrics") => {
            ctx.stats.http_errors.inc();
            let _ = write_error(writer, 405, "method-not-allowed", "use GET", true);
            true
        }
        (_, "/enrich" | "/extract") => {
            ctx.stats.http_errors.inc();
            let _ = write_error(writer, 405, "method-not-allowed", "use POST", true);
            true
        }
        (_, other) => {
            ctx.stats.http_errors.inc();
            let _ = write_error(
                writer,
                404,
                "not-found",
                &format!("no route `{other}`"),
                true,
            );
            true
        }
    }
}

fn write_ok(
    writer: &mut TcpStream,
    content_type: &str,
    body: Vec<u8>,
    extra: &[(&str, String)],
    keep_alive: bool,
) -> bool {
    let mut headers = vec![("Content-Type", content_type.to_string())];
    headers.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
    write_response(writer, 200, &headers, &body, keep_alive).is_ok()
}

/// One batch request: admission permit → body → parse → resilient
/// enrichment → CSV/TSV bytes identical to the batch CLI.
fn handle_batch(
    writer: &mut TcpStream,
    reader: &mut RequestReader<TcpStream>,
    head: &RequestHead,
    path: &str,
    ctx: &Ctx,
) -> bool {
    // Overload is decided on the head alone: refusing before the body
    // keeps a saturated server from buffering payloads it cannot
    // process, and closes so the unread body never corrupts framing.
    let Some(_permit) = ctx.stats.try_acquire() else {
        ctx.stats.rejected.inc();
        let _ = write_error(
            writer,
            429,
            "overloaded",
            "admission queue full; retry",
            false,
        );
        return false;
    };
    let len = match head.content_length(&ctx.opts.limits) {
        Ok(Some(len)) => len,
        Ok(None) => {
            ctx.stats.http_errors.inc();
            let _ = write_error(
                writer,
                411,
                "length-required",
                "body must declare Content-Length",
                false,
            );
            return false;
        }
        Err(e) => {
            ctx.stats.http_errors.inc();
            let _ = write_error(writer, e.status(), e.name(), &e.to_string(), false);
            return false;
        }
    };
    let body = match reader.read_body(len) {
        Ok(body) => body,
        Err(e) => {
            ctx.stats.http_errors.inc();
            let _ = write_error(writer, e.status(), e.name(), &e.to_string(), false);
            return false;
        }
    };

    let t0 = Instant::now();
    // One panicking request costs one request: the same isolation the
    // resilient runner gives documents, applied at the request seam.
    let reply = catch_unwind(AssertUnwindSafe(|| process_batch(ctx, path, &body)));
    let elapsed = t0.elapsed();
    let histogram = match path {
        "/enrich" => &ctx.stats.lat_enrich,
        _ => &ctx.stats.lat_extract,
    };
    histogram.record(elapsed.as_micros() as u64);

    match reply {
        Err(_panic) => {
            ctx.stats.panics.inc();
            let _ = write_error(
                writer,
                500,
                "handler-panic",
                "request handler panicked",
                false,
            );
            false
        }
        Ok(Err((status, name, detail))) => {
            ctx.stats.requests.inc();
            let _ = write_error(writer, status, name, &detail, true);
            true
        }
        Ok(Ok(reply)) => {
            ctx.stats.requests.inc();
            write_ok(
                writer,
                reply.content_type,
                reply.body,
                &[
                    ("X-Thor-Quarantined", reply.quarantined.to_string()),
                    ("X-Thor-Docs", reply.docs.to_string()),
                ],
                true,
            )
        }
    }
}

/// A successful batch reply.
struct BatchReply {
    body: Vec<u8>,
    content_type: &'static str,
    quarantined: usize,
    docs: usize,
}

type BatchError = (u16, &'static str, String);

/// Decode and run one batch. Everything refusable is a named 4xx; the
/// enrichment itself reuses the resilient runner (lenient mode), so
/// malformed documents are quarantined per-request rather than failing
/// it, and clean output is byte-identical to the batch CLI's.
fn process_batch(ctx: &Ctx, path: &str, body: &[u8]) -> Result<BatchReply, BatchError> {
    fail_point("serve_request").map_err(|e| (500u16, "injected-fault", e.to_string()))?;
    let docs = parse_documents(body)?;
    let opts = ResilientOptions {
        mode: RunMode::Lenient,
        policy: ctx.opts.policy,
        ..ResilientOptions::default()
    };
    let outcome = ctx.engine.enrich_resilient(&docs, &opts).map_err(|e| {
        let status = if e.kind() == ErrorKind::Config {
            422
        } else {
            500
        };
        (status, "batch-failed", e.to_string())
    })?;
    if !docs.is_empty() && outcome.quarantine.len() == docs.len() {
        let entries: Vec<Json> = outcome
            .quarantine
            .entries()
            .iter()
            .map(|q| {
                Json::Object(
                    [
                        ("doc_id".to_string(), Json::Str(q.doc_id.clone())),
                        ("stage".to_string(), Json::Str(q.stage.clone())),
                        ("kind".to_string(), Json::Str(q.kind.label().to_string())),
                        ("error".to_string(), Json::Str(q.error.clone())),
                    ]
                    .into_iter()
                    .collect(),
                )
            })
            .collect();
        let report = Json::Object(
            [
                (
                    "error".to_string(),
                    Json::Str("all-documents-rejected".into()),
                ),
                ("quarantine".to_string(), Json::Array(entries)),
            ]
            .into_iter()
            .collect(),
        )
        .render();
        return Err((422, "all-documents-rejected", report));
    }
    let (body, content_type) = match path {
        "/enrich" => (
            thor_data::to_csv(&outcome.result.table).into_bytes(),
            "text/csv",
        ),
        _ => (
            entities_tsv(&outcome.result.entities).into_bytes(),
            "text/tab-separated-values",
        ),
    };
    Ok(BatchReply {
        body,
        content_type,
        quarantined: outcome.quarantine.len(),
        docs: outcome.processed_docs,
    })
}

/// Parse the request body: `{"documents":[{"id":"...","text":"..."},…]}`.
fn parse_documents(body: &[u8]) -> Result<Vec<Document>, BatchError> {
    let text = std::str::from_utf8(body)
        .map_err(|e| (400u16, "bad-utf8", format!("body is not UTF-8: {e}")))?;
    let json = Json::parse(text).map_err(|e| (400u16, "bad-json", e))?;
    let Some(Json::Array(items)) = json.get("documents") else {
        return Err((
            400,
            "bad-request-shape",
            "expected {\"documents\":[{\"id\",\"text\"},...]}".to_string(),
        ));
    };
    if items.is_empty() {
        return Err((
            422,
            "empty-batch",
            "batch contains no documents".to_string(),
        ));
    }
    let mut docs = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let (Some(Json::Str(id)), Some(Json::Str(text))) = (item.get("id"), item.get("text"))
        else {
            return Err((
                400,
                "bad-document",
                format!("documents[{i}] needs string `id` and `text`"),
            ));
        };
        docs.push(Document::new(id.clone(), text.clone()));
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_documents_accepts_a_batch() {
        let docs =
            parse_documents(br#"{"documents":[{"id":"a","text":"t1"},{"id":"b","text":"t2"}]}"#)
                .unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].id, "a");
        assert_eq!(docs[1].text, "t2");
    }

    #[test]
    fn parse_documents_names_each_refusal() {
        let cases: &[(&[u8], &str)] = &[
            (b"\xff\xfe", "bad-utf8"),
            (b"{not json", "bad-json"),
            (br#"{"docs":[]}"#, "bad-request-shape"),
            (br#"{"documents":[]}"#, "empty-batch"),
            (br#"{"documents":[{"id":"a"}]}"#, "bad-document"),
            (br#"{"documents":[{"id":1,"text":"t"}]}"#, "bad-document"),
        ];
        for (body, want) in cases {
            let (_, name, _) = parse_documents(body).unwrap_err();
            assert_eq!(&name, want, "{}", String::from_utf8_lossy(body));
        }
    }

    #[test]
    fn permits_are_bounded_and_returned() {
        let metrics = PipelineMetrics::new();
        let r = metrics.registry();
        let stats = ServeStats {
            permits: AtomicUsize::new(2),
            requests: r.counter("serve.requests"),
            rejected: r.counter("serve.rejected"),
            http_errors: r.counter("serve.http_errors"),
            panics: r.counter("serve.panics"),
            lat_enrich: r.histogram("serve.latency.enrich"),
            lat_extract: r.histogram("serve.latency.extract"),
        };
        let a = stats.try_acquire().expect("first");
        let _b = stats.try_acquire().expect("second");
        assert!(stats.try_acquire().is_none(), "pool exhausted");
        drop(a);
        assert!(stats.try_acquire().is_some(), "permit returned on drop");
    }
}
