//! The serving loop: admission-gated request handling over a hot-
//! swappable [`EngineSlot`] of frozen [`PreparedEngine`] generations.
//!
//! A fixed pool of supervised accept workers shares one nonblocking
//! listener; each accepted connection gets its own handler thread, and
//! the heavy lifting inside a request (document-parallel extraction)
//! runs on the process-wide `thor_core::WorkerPool`, exactly as a batch
//! run would. Admission is a fixed pool of permits acquired *after* the
//! request head and *before* the body — an overloaded server refuses
//! with `429 Retry-After` instead of buffering bodies it cannot chew.
//!
//! Robustness layers added around that core:
//!
//! * **Hot reload.** The engine lives in an epoch-versioned
//!   [`EngineSlot`]; SIGHUP and/or `--watch-engine` polling drive the
//!   reload state machine ([`crate::reload`]), which validates a
//!   candidate artifact end-to-end before swapping. Each request pins
//!   the generation it started on, so in-flight work finishes on the
//!   old engine while new requests land on the new one; every routed
//!   response carries `X-Thor-Engine: <fingerprint>@<epoch>`.
//! * **Supervision.** A panicked accept worker is restarted with
//!   exponential backoff + deterministic jitter; a crash loop trips a
//!   breaker that reports `degraded` (healthz 503) until the loop
//!   cools down.
//! * **Deadline budgets.** With [`ServeOptions::deadline`] set, each
//!   batch request carries a [`CancelToken`] checked between pipeline
//!   stages; an expired budget answers `503 deadline-exceeded` instead
//!   of hanging the connection.
//!
//! Batch requests flow through [`PreparedEngine::enrich_resilient`] in
//! lenient mode: per-document admission control and `catch_unwind`
//! isolation are the same code the batch CLI runs, so a malformed
//! document costs one document (reported per-request), and the clean
//! documents produce byte-identical output to `thor enrich`.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use thor_core::{
    entities_tsv, CancelToken, Document, EngineGeneration, EngineSlot, PreparedEngine,
    ResilientOptions, RunMode,
};
use thor_fault::{fail_point, DocumentPolicy, ErrorKind, ThorError, ThorResult};
use thor_obs::{Counter, Gauge, Histogram, Json, PipelineMetrics};

use crate::http::{write_response, HttpLimits, RequestHead, RequestReader};
use crate::reload::{try_reload, ReloadConfig};
use crate::signal;

/// Tunables of one serving process.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Concurrent admitted batch requests; one more is a 429.
    pub queue: usize,
    /// Total time one request head/body may take to arrive (slowloris
    /// bound; also the longest a drain waits on an idle connection).
    pub read_timeout: Duration,
    /// Protocol limits.
    pub limits: HttpLimits,
    /// Per-document admission policy for batch bodies.
    pub policy: DocumentPolicy,
    /// Also honor the process-wide SIGTERM/SIGINT drain flag
    /// ([`signal::triggered`]). The CLI sets this; tests drive the
    /// shutdown handle directly.
    pub watch_signals: bool,
    /// Supervised accept workers sharing the listener. Each panicked
    /// worker is restarted with backoff; connections get their own
    /// handler threads, so this bounds accept parallelism, not request
    /// concurrency (that is `queue`).
    pub workers: usize,
    /// Per-request deadline budget for batch requests; `None` disables
    /// budget enforcement.
    pub deadline: Option<Duration>,
    /// Worker restarts within [`ServeOptions::breaker_window`] that
    /// trip the crash-loop breaker into `degraded`.
    pub breaker_threshold: usize,
    /// Sliding window the breaker counts restarts over.
    pub breaker_window: Duration,
    /// Quiet time (no restarts) after which a tripped breaker resets.
    pub breaker_cooldown: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            queue: 32,
            read_timeout: Duration::from_secs(10),
            limits: HttpLimits::default(),
            policy: DocumentPolicy::default(),
            watch_signals: false,
            workers: 2,
            deadline: None,
            breaker_threshold: 5,
            breaker_window: Duration::from_secs(10),
            breaker_cooldown: Duration::from_secs(2),
        }
    }
}

/// Serve-layer metric handles + the admission permit pool.
struct ServeStats {
    permits: AtomicUsize,
    requests: Arc<Counter>,
    rejected: Arc<Counter>,
    http_errors: Arc<Counter>,
    panics: Arc<Counter>,
    reload_ok: Arc<Counter>,
    reload_rejected: Arc<Counter>,
    worker_restarts: Arc<Counter>,
    deadline_exceeded: Arc<Counter>,
    health: Arc<Gauge>,
    lat_enrich: Arc<Histogram>,
    lat_extract: Arc<Histogram>,
}

impl ServeStats {
    fn new(registry: &thor_obs::MetricsRegistry, queue: usize) -> Self {
        Self {
            permits: AtomicUsize::new(queue.max(1)),
            requests: registry.counter("serve.requests"),
            rejected: registry.counter("serve.rejected"),
            http_errors: registry.counter("serve.http_errors"),
            panics: registry.counter("serve.panics"),
            reload_ok: registry.counter("reload.ok"),
            reload_rejected: registry.counter("reload.rejected"),
            worker_restarts: registry.counter("worker.restarts"),
            deadline_exceeded: registry.counter("deadline.exceeded"),
            health: registry.gauge("serve.health"),
            lat_enrich: registry.histogram("serve.latency.enrich"),
            lat_extract: registry.histogram("serve.latency.extract"),
        }
    }
}

/// RAII admission permit.
struct Permit<'a>(&'a ServeStats);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.permits.fetch_add(1, Ordering::AcqRel);
    }
}

impl ServeStats {
    fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut cur = self.permits.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return None;
            }
            match self
                .permits
                .compare_exchange(cur, cur - 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Some(Permit(self)),
                Err(now) => cur = now,
            }
        }
    }
}

/// [`Gauge`] encoding of the health state (`serve.health`).
const HEALTH_SERVING: u64 = 0;
const HEALTH_RELOADING: u64 = 1;
const HEALTH_DEGRADED: u64 = 2;

/// Shared per-connection context.
struct Ctx {
    slot: EngineSlot,
    metrics: PipelineMetrics,
    stats: ServeStats,
    opts: ServeOptions,
    reload: Option<ReloadConfig>,
    shutdown: AtomicBool,
    /// Crash-loop breaker state: tripped → healthz reports 503.
    degraded: AtomicBool,
    /// A reload attempt is in flight (transient, informational).
    reloading: AtomicBool,
    /// Recent worker-restart instants inside the breaker window.
    restarts: Mutex<Vec<Instant>>,
    started: Instant,
}

impl Ctx {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || (self.opts.watch_signals && signal::triggered())
    }

    fn health_label(&self) -> &'static str {
        if self.degraded.load(Ordering::SeqCst) {
            "degraded"
        } else if self.reloading.load(Ordering::SeqCst) {
            "reloading"
        } else {
            "serving"
        }
    }

    fn set_health_gauge(&self) {
        let v = if self.degraded.load(Ordering::SeqCst) {
            HEALTH_DEGRADED
        } else if self.reloading.load(Ordering::SeqCst) {
            HEALTH_RELOADING
        } else {
            HEALTH_SERVING
        };
        self.stats.health.set(v);
    }

    /// Count one worker restart into the breaker's sliding window; trip
    /// into `degraded` when the window fills up.
    fn record_worker_restart(&self) {
        self.stats.worker_restarts.inc();
        let now = Instant::now();
        let mut window = self.restarts.lock().unwrap_or_else(|p| p.into_inner());
        window.push(now);
        window.retain(|t| now.duration_since(*t) <= self.opts.breaker_window);
        if window.len() >= self.opts.breaker_threshold.max(1)
            && !self.degraded.swap(true, Ordering::SeqCst)
        {
            eprintln!(
                "serve: crash-loop breaker tripped ({} worker restarts in {:?}); health degraded",
                window.len(),
                self.opts.breaker_window
            );
        }
        drop(window);
        self.set_health_gauge();
    }

    /// Reset a tripped breaker once the loop has been quiet for the
    /// cooldown. Called from the accept loop's poll tick.
    fn breaker_tick(&self) {
        if !self.degraded.load(Ordering::SeqCst) {
            return;
        }
        let quiet = {
            let window = self.restarts.lock().unwrap_or_else(|p| p.into_inner());
            window
                .last()
                .is_none_or(|t| t.elapsed() >= self.opts.breaker_cooldown)
        };
        if quiet && self.degraded.swap(false, Ordering::SeqCst) {
            eprintln!("serve: crash-loop breaker reset; health serving");
            self.set_health_gauge();
        }
    }
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    ctx: Arc<Ctx>,
}

impl Server {
    /// Bind `addr` and wire the engine up for serving: a fresh
    /// [`PipelineMetrics`] is attached (so `/metrics` sees pipeline
    /// stages and quarantine counts) and the serve-layer counters,
    /// health gauge and latency histograms are registered alongside.
    pub fn bind(engine: PreparedEngine, addr: &str, opts: ServeOptions) -> ThorResult<Server> {
        Self::bind_with(engine, addr, opts, None)
    }

    /// [`Server::bind`] plus a hot-reload configuration: the returned
    /// server re-validates and swaps in `reload.path` on SIGHUP
    /// ([`signal::install_reload_handler`]) / programmatic request
    /// ([`signal::request_reload`]) and, when `reload.poll` is set, on
    /// detected artifact changes.
    pub fn bind_with(
        engine: PreparedEngine,
        addr: &str,
        opts: ServeOptions,
        reload: Option<ReloadConfig>,
    ) -> ThorResult<Server> {
        let metrics = PipelineMetrics::new();
        let engine = engine.with_metrics(metrics.clone());
        // Chain provenance of the serving engine (0 = plain artifact),
        // kept current by the reload loop across hot swaps.
        metrics
            .registry()
            .gauge("engine.chain_depth")
            .set(engine.chain_depth() as u64);
        let stats = ServeStats::new(metrics.registry(), opts.queue);
        let listener =
            TcpListener::bind(addr).map_err(|e| ThorError::io(format!("bind {addr}"), e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ThorError::io("local_addr", e))?;
        let ctx = Arc::new(Ctx {
            slot: EngineSlot::new(engine),
            metrics,
            stats,
            opts,
            reload,
            shutdown: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            reloading: AtomicBool::new(false),
            restarts: Mutex::new(Vec::new()),
            started: Instant::now(),
        });
        ctx.set_health_gauge();
        Ok(Server {
            listener,
            local_addr,
            ctx,
        })
    }

    /// The address actually bound (port resolved for `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The metrics handle `/metrics` serves — clone it before
    /// [`Server::run`] to flush a final snapshot after the drain.
    pub fn metrics(&self) -> &PipelineMetrics {
        &self.ctx.metrics
    }

    /// The generation currently being served (`fingerprint@epoch`).
    pub fn generation(&self) -> Arc<EngineGeneration> {
        self.ctx.slot.load()
    }

    /// A handle that, once set, drains the server: the accept loop
    /// stops taking connections, in-flight requests finish, idle
    /// keep-alive connections close at their next poll tick.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.ctx))
    }

    /// Run the supervised accept workers (and the reload loop, when
    /// configured) until drained. Returns after every in-flight
    /// connection has finished.
    pub fn run(self) -> ThorResult<()> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ThorError::io("set_nonblocking", e))?;
        let listener = Arc::new(self.listener);
        let ctx = self.ctx;
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let reloader = ctx.reload.is_some().then(|| {
            let ctx = Arc::clone(&ctx);
            std::thread::spawn(move || reload_loop(&ctx))
        });

        let supervisors: Vec<_> = (0..ctx.opts.workers.max(1))
            .map(|worker| {
                let ctx = Arc::clone(&ctx);
                let listener = Arc::clone(&listener);
                let conns = Arc::clone(&conns);
                std::thread::spawn(move || supervise_worker(worker, &listener, &ctx, &conns))
            })
            .collect();
        for handle in supervisors {
            let _ = handle.join();
        }
        if let Some(handle) = reloader {
            let _ = handle.join();
        }
        // Drain: finish in-flight connections before returning so the
        // caller can flush metrics knowing nothing is still recording.
        let handles = std::mem::take(&mut *conns.lock().unwrap_or_else(|p| p.into_inner()));
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Cloneable drain trigger for a running server.
#[derive(Clone)]
pub struct ShutdownHandle(Arc<Ctx>);

impl ShutdownHandle {
    /// Begin the drain.
    pub fn shutdown(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }
}

/// One supervised worker slot: run the accept loop, and when it
/// panics (a `worker_panic` injection or a real bug above the
/// per-request `catch_unwind`), restart it with exponential backoff and
/// deterministic jitter. A clean return means the server is draining.
fn supervise_worker(
    worker: usize,
    listener: &TcpListener,
    ctx: &Arc<Ctx>,
    conns: &Mutex<Vec<std::thread::JoinHandle<()>>>,
) {
    // SplitMix64 seeded per worker slot: jitter is deterministic for a
    // given restart sequence but decorrelated across workers.
    let mut jitter_state = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(worker as u64 + 1);
    let mut attempt = 0u32;
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| accept_loop(listener, ctx, conns)));
        match result {
            Ok(()) => break, // draining
            Err(_) => {
                ctx.record_worker_restart();
                if ctx.draining() {
                    break;
                }
                attempt += 1;
                let backoff = backoff_with_jitter(attempt, &mut jitter_state);
                eprintln!("serve: worker {worker} panicked; restart {attempt} in {backoff:?}");
                std::thread::sleep(backoff);
            }
        }
    }
}

/// Exponential backoff (10ms base, doubling, 1s cap) with ±50%
/// deterministic jitter from a SplitMix64 stream.
fn backoff_with_jitter(attempt: u32, state: &mut u64) -> Duration {
    let base_ms = 10u64
        .saturating_mul(1u64 << attempt.min(7).saturating_sub(1))
        .min(1000);
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    Duration::from_millis(base_ms / 2 + z % (base_ms / 2 + 1))
}

/// The accept loop one worker runs: poll for drain, tick the breaker,
/// accept, hand the connection to its own handler thread.
fn accept_loop(
    listener: &TcpListener,
    ctx: &Arc<Ctx>,
    conns: &Mutex<Vec<std::thread::JoinHandle<()>>>,
) {
    loop {
        if ctx.draining() {
            return;
        }
        ctx.breaker_tick();
        // The worker-kill seam: any armed action takes this worker down
        // (between accepts, so no accepted connection is dropped) and
        // the supervisor restarts it.
        if let Err(e) = fail_point("worker_panic") {
            panic!("{e}");
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Responses are written head + body in separate
                // syscalls; without NODELAY, Nagle + delayed ACK
                // stalls keep-alive round trips by ~40-130ms.
                let _ = stream.set_nodelay(true);
                let ctx = Arc::clone(ctx);
                let mut pool = conns.lock().unwrap_or_else(|p| p.into_inner());
                pool.retain(|h| !h.is_finished());
                pool.push(std::thread::spawn(move || handle_connection(stream, &ctx)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            // A fatal accept error kills the worker; the supervisor
            // restarts it with backoff, and a persistent failure trips
            // the breaker into `degraded` instead of spinning silently.
            Err(e) => panic!("accept failed: {e}"),
        }
    }
}

/// The reload loop: consume SIGHUP/programmatic requests and (when
/// polling is configured) watch the artifact stamp for changes. One
/// log line per attempt, success or rejection; a rejected candidate
/// leaves the serving generation untouched.
fn reload_loop(ctx: &Arc<Ctx>) {
    let Some(cfg) = ctx.reload.as_ref() else {
        return;
    };
    let tick = Duration::from_millis(20);
    let mut last_poll = Instant::now();
    // The chain stamps the serving engine was loaded under, and those
    // of the last rejected candidate — so a corrupt artifact is
    // attempted once per distinct content, not once per poll. A delta
    // chain is stamped file by file: touching any link (re-cutting a
    // delta, compacting, swapping the base) triggers a reload attempt.
    let mut serving = crate::reload::chain_stamps(&cfg.path).ok();
    let mut rejected = None;
    loop {
        if ctx.draining() {
            return;
        }
        let mut want = signal::take_reload_request();
        if let Some(every) = cfg.poll {
            if last_poll.elapsed() >= every {
                last_poll = Instant::now();
                // An unreadable stamp (mid-rewrite, truncated) is not a
                // trigger; the completed artifact shows up next poll.
                if let Ok(stamps) = crate::reload::chain_stamps(&cfg.path) {
                    if Some(&stamps) != serving.as_ref() && Some(&stamps) != rejected.as_ref() {
                        want = true;
                    }
                }
            }
        }
        if want {
            ctx.reloading.store(true, Ordering::SeqCst);
            ctx.set_health_gauge();
            match try_reload(cfg, &ctx.slot, &ctx.metrics) {
                Ok((generation, stamps)) => {
                    serving = Some(stamps);
                    rejected = None;
                    ctx.stats.reload_ok.inc();
                    eprintln!(
                        "serve: reloaded {} as {}",
                        cfg.path.display(),
                        generation.tag()
                    );
                }
                Err(e) => {
                    rejected = crate::reload::chain_stamps(&cfg.path).ok();
                    ctx.stats.reload_rejected.inc();
                    eprintln!(
                        "serve: reload of {} rejected ({e}); still serving {}",
                        cfg.path.display(),
                        ctx.slot.load().tag()
                    );
                }
            }
            ctx.reloading.store(false, Ordering::SeqCst);
            ctx.set_health_gauge();
        }
        std::thread::sleep(tick);
    }
}

/// Poll tick installed as the socket read timeout: short enough that a
/// drain is noticed promptly, while [`ServeOptions::read_timeout`]
/// bounds how long one request may take in total.
fn poll_tick(opts: &ServeOptions) -> Duration {
    opts.read_timeout.min(Duration::from_millis(100))
}

fn handle_connection(stream: TcpStream, ctx: &Ctx) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let _ = read_half.set_read_timeout(Some(poll_tick(&ctx.opts)));
    let mut reader = RequestReader::new(read_half);
    reader.read_timeout = Some(ctx.opts.read_timeout);
    let mut writer = stream;
    loop {
        match reader.read_head(&ctx.opts.limits, Some(&ctx.shutdown)) {
            Ok(None) => break,
            Err(e) => {
                ctx.stats.http_errors.inc();
                let _ = write_error(
                    &mut writer,
                    e.status(),
                    e.name(),
                    &e.to_string(),
                    &[],
                    false,
                );
                break;
            }
            Ok(Some(head)) => {
                let keep_alive = handle_request(&mut writer, &mut reader, &head, ctx)
                    && head.keep_alive()
                    && !ctx.draining();
                if !keep_alive {
                    break;
                }
            }
        }
    }
}

/// Write a JSON error body: `{"error": name, "detail": ...}`.
fn write_error(
    w: &mut impl std::io::Write,
    status: u16,
    name: &str,
    detail: &str,
    extra: &[(&str, String)],
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = Json::Object(
        [
            ("error".to_string(), Json::Str(name.to_string())),
            ("detail".to_string(), Json::Str(detail.to_string())),
        ]
        .into_iter()
        .collect(),
    )
    .render();
    let mut headers = vec![("Content-Type", "application/json".to_string())];
    headers.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
    if status == 429 {
        headers.push(("Retry-After", "1".to_string()));
    }
    write_response(w, status, &headers, body.as_bytes(), keep_alive)
}

/// Dispatch one parsed request. The serving generation is pinned once,
/// up front: everything this request does — including a long enrichment
/// racing a hot swap — happens on that generation, and the response
/// names it in `X-Thor-Engine`. Returns whether the connection may
/// continue (protocol-level failures close it so framing stays sound).
fn handle_request(
    writer: &mut TcpStream,
    reader: &mut RequestReader<TcpStream>,
    head: &RequestHead,
    ctx: &Ctx,
) -> bool {
    let generation = ctx.slot.load();
    let engine_header = ("X-Thor-Engine", generation.tag());
    match (head.method.as_str(), head.target.as_str()) {
        ("GET", "/healthz") => {
            let label = ctx.health_label();
            let body = Json::Object(
                [
                    ("status".to_string(), Json::Str(label.into())),
                    (
                        "fingerprint".to_string(),
                        Json::Str(generation.engine.fingerprint().to_string()),
                    ),
                    ("epoch".to_string(), Json::UInt(generation.epoch)),
                    (
                        "uptime_secs".to_string(),
                        Json::UInt(ctx.started.elapsed().as_secs()),
                    ),
                    ("tau".to_string(), Json::Float(generation.engine.tau())),
                    (
                        "chain_depth".to_string(),
                        Json::UInt(generation.engine.chain_depth() as u64),
                    ),
                    (
                        "concepts".to_string(),
                        Json::UInt(
                            generation.engine.prepared_matcher().concept_names().len() as u64
                        ),
                    ),
                    ("draining".to_string(), Json::Bool(ctx.draining())),
                ]
                .into_iter()
                .collect(),
            )
            .render();
            ctx.stats.requests.inc();
            let status = if label == "degraded" { 503 } else { 200 };
            let headers = [
                ("Content-Type", "application/json".to_string()),
                engine_header,
            ];
            write_response(writer, status, &headers, body.as_bytes(), true).is_ok()
        }
        ("GET", "/metrics") => {
            let body = ctx.metrics.render_json();
            ctx.stats.requests.inc();
            write_ok(
                writer,
                "application/json",
                body.into_bytes(),
                &[engine_header],
                true,
            )
        }
        ("POST", path @ ("/enrich" | "/extract")) => {
            handle_batch(writer, reader, head, path, ctx, &generation, engine_header)
        }
        (_, "/healthz" | "/metrics") => {
            ctx.stats.http_errors.inc();
            let _ = write_error(
                writer,
                405,
                "method-not-allowed",
                "use GET",
                &[engine_header],
                true,
            );
            true
        }
        (_, "/enrich" | "/extract") => {
            ctx.stats.http_errors.inc();
            let _ = write_error(
                writer,
                405,
                "method-not-allowed",
                "use POST",
                &[engine_header],
                true,
            );
            true
        }
        (_, other) => {
            ctx.stats.http_errors.inc();
            let _ = write_error(
                writer,
                404,
                "not-found",
                &format!("no route `{other}`"),
                &[engine_header],
                true,
            );
            true
        }
    }
}

fn write_ok(
    writer: &mut TcpStream,
    content_type: &str,
    body: Vec<u8>,
    extra: &[(&str, String)],
    keep_alive: bool,
) -> bool {
    let mut headers = vec![("Content-Type", content_type.to_string())];
    headers.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
    write_response(writer, 200, &headers, &body, keep_alive).is_ok()
}

/// One batch request: admission permit → body → parse → resilient
/// enrichment on the pinned generation → CSV/TSV bytes identical to the
/// batch CLI.
fn handle_batch(
    writer: &mut TcpStream,
    reader: &mut RequestReader<TcpStream>,
    head: &RequestHead,
    path: &str,
    ctx: &Ctx,
    generation: &EngineGeneration,
    engine_header: (&'static str, String),
) -> bool {
    let extra = [engine_header];
    // Overload is decided on the head alone: refusing before the body
    // keeps a saturated server from buffering payloads it cannot
    // process, and closes so the unread body never corrupts framing.
    let Some(_permit) = ctx.stats.try_acquire() else {
        ctx.stats.rejected.inc();
        let _ = write_error(
            writer,
            429,
            "overloaded",
            "admission queue full; retry",
            &extra,
            false,
        );
        return false;
    };
    let len = match head.content_length(&ctx.opts.limits) {
        Ok(Some(len)) => len,
        Ok(None) => {
            ctx.stats.http_errors.inc();
            let _ = write_error(
                writer,
                411,
                "length-required",
                "body must declare Content-Length",
                &extra,
                false,
            );
            return false;
        }
        Err(e) => {
            ctx.stats.http_errors.inc();
            let _ = write_error(writer, e.status(), e.name(), &e.to_string(), &extra, false);
            return false;
        }
    };
    let body = match reader.read_body(len) {
        Ok(body) => body,
        Err(e) => {
            ctx.stats.http_errors.inc();
            let _ = write_error(writer, e.status(), e.name(), &e.to_string(), &extra, false);
            return false;
        }
    };

    let t0 = Instant::now();
    // One panicking request costs one request: the same isolation the
    // resilient runner gives documents, applied at the request seam.
    let reply = catch_unwind(AssertUnwindSafe(|| {
        process_batch(ctx, &generation.engine, path, &body)
    }));
    let elapsed = t0.elapsed();
    let histogram = match path {
        "/enrich" => &ctx.stats.lat_enrich,
        _ => &ctx.stats.lat_extract,
    };
    histogram.record(elapsed.as_micros() as u64);

    match reply {
        Err(_panic) => {
            ctx.stats.panics.inc();
            let _ = write_error(
                writer,
                500,
                "handler-panic",
                "request handler panicked",
                &extra,
                false,
            );
            false
        }
        Ok(Err((status, name, detail))) => {
            ctx.stats.requests.inc();
            let _ = write_error(writer, status, name, &detail, &extra, true);
            true
        }
        Ok(Ok(reply)) => {
            ctx.stats.requests.inc();
            write_ok(
                writer,
                reply.content_type,
                reply.body,
                &[
                    extra[0].clone(),
                    ("X-Thor-Quarantined", reply.quarantined.to_string()),
                    ("X-Thor-Docs", reply.docs.to_string()),
                ],
                true,
            )
        }
    }
}

/// A successful batch reply.
struct BatchReply {
    body: Vec<u8>,
    content_type: &'static str,
    quarantined: usize,
    docs: usize,
}

type BatchError = (u16, &'static str, String);

/// Decode and run one batch on `engine` (the request's pinned
/// generation). Everything refusable is a named 4xx; an expired
/// deadline budget is a 503; the enrichment itself reuses the resilient
/// runner (lenient mode), so malformed documents are quarantined
/// per-request rather than failing it, and clean output is
/// byte-identical to the batch CLI's.
fn process_batch(
    ctx: &Ctx,
    engine: &PreparedEngine,
    path: &str,
    body: &[u8],
) -> Result<BatchReply, BatchError> {
    fail_point("serve_request").map_err(|e| (500u16, "injected-fault", e.to_string()))?;
    let docs = parse_documents(body)?;
    let cancel = match ctx.opts.deadline {
        Some(budget) => CancelToken::with_deadline(budget),
        None => CancelToken::none(),
    };
    let opts = ResilientOptions {
        mode: RunMode::Lenient,
        policy: ctx.opts.policy,
        cancel,
        ..ResilientOptions::default()
    };
    let outcome = engine.enrich_resilient(&docs, &opts).map_err(|e| {
        if e.kind() == ErrorKind::Deadline {
            ctx.stats.deadline_exceeded.inc();
            return (503u16, "deadline-exceeded", e.to_string());
        }
        let status = if e.kind() == ErrorKind::Config {
            422
        } else {
            500
        };
        (status, "batch-failed", e.to_string())
    })?;
    if !docs.is_empty() && outcome.quarantine.len() == docs.len() {
        let entries: Vec<Json> = outcome
            .quarantine
            .entries()
            .iter()
            .map(|q| {
                Json::Object(
                    [
                        ("doc_id".to_string(), Json::Str(q.doc_id.clone())),
                        ("stage".to_string(), Json::Str(q.stage.clone())),
                        ("kind".to_string(), Json::Str(q.kind.label().to_string())),
                        ("error".to_string(), Json::Str(q.error.clone())),
                    ]
                    .into_iter()
                    .collect(),
                )
            })
            .collect();
        let report = Json::Object(
            [
                (
                    "error".to_string(),
                    Json::Str("all-documents-rejected".into()),
                ),
                ("quarantine".to_string(), Json::Array(entries)),
            ]
            .into_iter()
            .collect(),
        )
        .render();
        return Err((422, "all-documents-rejected", report));
    }
    let (body, content_type) = match path {
        "/enrich" => (
            thor_data::to_csv(&outcome.result.table).into_bytes(),
            "text/csv",
        ),
        _ => (
            entities_tsv(&outcome.result.entities).into_bytes(),
            "text/tab-separated-values",
        ),
    };
    Ok(BatchReply {
        body,
        content_type,
        quarantined: outcome.quarantine.len(),
        docs: outcome.processed_docs,
    })
}

/// Parse the request body: `{"documents":[{"id":"...","text":"..."},…]}`.
fn parse_documents(body: &[u8]) -> Result<Vec<Document>, BatchError> {
    let text = std::str::from_utf8(body)
        .map_err(|e| (400u16, "bad-utf8", format!("body is not UTF-8: {e}")))?;
    let json = Json::parse(text).map_err(|e| (400u16, "bad-json", e))?;
    let Some(Json::Array(items)) = json.get("documents") else {
        return Err((
            400,
            "bad-request-shape",
            "expected {\"documents\":[{\"id\",\"text\"},...]}".to_string(),
        ));
    };
    if items.is_empty() {
        return Err((
            422,
            "empty-batch",
            "batch contains no documents".to_string(),
        ));
    }
    let mut docs = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let (Some(Json::Str(id)), Some(Json::Str(text))) = (item.get("id"), item.get("text"))
        else {
            return Err((
                400,
                "bad-document",
                format!("documents[{i}] needs string `id` and `text`"),
            ));
        };
        docs.push(Document::new(id.clone(), text.clone()));
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_documents_accepts_a_batch() {
        let docs =
            parse_documents(br#"{"documents":[{"id":"a","text":"t1"},{"id":"b","text":"t2"}]}"#)
                .unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].id, "a");
        assert_eq!(docs[1].text, "t2");
    }

    #[test]
    fn parse_documents_names_each_refusal() {
        let cases: &[(&[u8], &str)] = &[
            (b"\xff\xfe", "bad-utf8"),
            (b"{not json", "bad-json"),
            (br#"{"docs":[]}"#, "bad-request-shape"),
            (br#"{"documents":[]}"#, "empty-batch"),
            (br#"{"documents":[{"id":"a"}]}"#, "bad-document"),
            (br#"{"documents":[{"id":1,"text":"t"}]}"#, "bad-document"),
        ];
        for (body, want) in cases {
            let (_, name, _) = parse_documents(body).unwrap_err();
            assert_eq!(&name, want, "{}", String::from_utf8_lossy(body));
        }
    }

    #[test]
    fn permits_are_bounded_and_returned() {
        let metrics = PipelineMetrics::new();
        let stats = ServeStats::new(metrics.registry(), 2);
        let a = stats.try_acquire().expect("first");
        let _b = stats.try_acquire().expect("second");
        assert!(stats.try_acquire().is_none(), "pool exhausted");
        drop(a);
        assert!(stats.try_acquire().is_some(), "permit returned on drop");
    }

    #[test]
    fn backoff_grows_and_is_capped() {
        let mut state = 7u64;
        let early = backoff_with_jitter(1, &mut state);
        assert!(early >= Duration::from_millis(5) && early <= Duration::from_millis(10));
        for attempt in 2..20 {
            let b = backoff_with_jitter(attempt, &mut state);
            assert!(b <= Duration::from_secs(1), "attempt {attempt}: {b:?}");
            assert!(b >= Duration::from_millis(5));
        }
        // Deterministic for a fixed state sequence.
        let mut s1 = 42u64;
        let mut s2 = 42u64;
        assert_eq!(
            backoff_with_jitter(3, &mut s1),
            backoff_with_jitter(3, &mut s2)
        );
    }
}
