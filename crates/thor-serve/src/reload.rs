//! The hot-reload state machine: validate a candidate engine artifact,
//! then swap it into the serving [`EngineSlot`] — or reject it by name
//! and keep the old generation serving.
//!
//! The invariant is **never swap-to-broken**: every step that can fail
//! happens *before* the swap, and the swap itself is the last,
//! injectable step. The load is bracketed by two reads of the
//! artifact's *stamp* (header + re-verified section-directory
//! checksum): if the file changed between them — an in-place rewrite
//! racing the load — the candidate is rejected even though each
//! individual read looked sound. Artifacts produced by
//! `thor_fault::atomic_write` (temp + fsync + rename + parent fsync)
//! never trip this; it exists to catch non-atomic rewrites and
//! truncation.
//!
//! Failpoints `reload_open`, `reload_validate` and `swap` make each
//! step of the machine injectable for the reload chaos suite.

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use thor_core::{EngineGeneration, EngineSlot, MapMode, PreparedEngine, PruneMode};
use thor_fault::{fail_point, fnv1a, SectionChain, ThorError, ThorResult, SECTION_MAGIC};
use thor_obs::PipelineMetrics;

/// How a serving process reloads its engine.
#[derive(Debug, Clone)]
pub struct ReloadConfig {
    /// The artifact path reloads re-open (the same path `--engine`
    /// loaded at startup).
    pub path: PathBuf,
    /// Backing mode for reloaded engines (same as the startup load).
    pub mode: MapMode,
    /// Re-applied `--threads` override, if any.
    pub threads: Option<usize>,
    /// Re-applied `--refine reference` override.
    pub reference_refine: bool,
    /// Re-applied `--prune` override.
    pub prune: PruneMode,
    /// `--watch-engine` poll interval; `None` reloads on SIGHUP only.
    pub poll: Option<Duration>,
}

/// A cheap identity of the artifact bytes on disk: the header fields
/// plus the section-directory checksum, *recomputed* from the directory
/// bytes (not trusted from the header). Two stamps compare equal only
/// if the header and directory were identical at both reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactStamp {
    /// Recomputed FNV-1a of the section directory bytes.
    pub dir_checksum: u64,
    /// Header checksum field (covers bytes 0..48 of the header).
    pub header_checksum: u64,
    /// Total file length the header declares.
    pub total_len: u64,
}

/// Read and structurally validate the artifact stamp of `path`: magic,
/// header checksum, and the section-directory checksum recomputed over
/// the directory bytes. This is the reload path's re-verification of
/// the directory before any swap, and it is cheap — the directory is a
/// few hundred bytes regardless of artifact size.
pub fn artifact_stamp(path: &Path) -> ThorResult<ArtifactStamp> {
    let mut f = std::fs::File::open(path).map_err(|e| ThorError::io(path.display(), e))?;
    let mut header = [0u8; 56];
    f.read_exact(&mut header).map_err(|e| {
        ThorError::validation(format!(
            "{}: truncated engine artifact header: {e}",
            path.display()
        ))
    })?;
    if &header[0..8] != SECTION_MAGIC {
        return Err(ThorError::validation(format!(
            "{}: bad magic (not a THORENG artifact)",
            path.display()
        )));
    }
    let u64_at = |off: usize| u64::from_le_bytes(header[off..off + 8].try_into().expect("8 bytes"));
    let header_checksum = u64_at(48);
    if fnv1a(&header[..48]) != header_checksum {
        return Err(ThorError::validation(format!(
            "{}: engine artifact header checksum mismatch",
            path.display()
        )));
    }
    let dir_offset = u64_at(16);
    let dir_len = u64_at(24);
    let dir_checksum = u64_at(32);
    let total_len = u64_at(40);
    if dir_offset.checked_add(dir_len) != Some(total_len) {
        return Err(ThorError::validation(format!(
            "{}: engine artifact directory bounds are inconsistent",
            path.display()
        )));
    }
    f.seek(SeekFrom::Start(dir_offset))
        .map_err(|e| ThorError::io(path.display(), e))?;
    let mut dir = vec![0u8; dir_len as usize];
    f.read_exact(&mut dir).map_err(|e| {
        ThorError::validation(format!(
            "{}: truncated engine artifact directory: {e}",
            path.display()
        ))
    })?;
    if fnv1a(&dir) != dir_checksum {
        return Err(ThorError::validation(format!(
            "{}: engine artifact section-directory checksum mismatch",
            path.display()
        )));
    }
    Ok(ArtifactStamp {
        dir_checksum,
        header_checksum,
        total_len,
    })
}

/// The stamps of every file in a delta chain, base first.
pub type ChainStamps = Vec<(PathBuf, ArtifactStamp)>;

/// Stamp every file of the delta chain under `path`, base first. For a
/// plain artifact this is a one-element vector equivalent to
/// [`artifact_stamp`]; for a delta artifact the parent links are walked
/// (and link-checked) first, so a chain whose base was swapped
/// underneath is already rejected here. Two stamp vectors compare equal
/// only if every file of the chain was identical at both reads.
pub fn chain_stamps(path: &Path) -> ThorResult<ChainStamps> {
    let chain = SectionChain::open(path, MapMode::Mapped)?;
    chain
        .paths()
        .iter()
        .map(|p| Ok((p.clone(), artifact_stamp(p)?)))
        .collect()
}

/// Load and validate a candidate engine from `cfg.path`, re-applying
/// the serve-time overrides and the live metrics handle. Returns the
/// candidate plus the stamp it was loaded under.
fn load_candidate(
    cfg: &ReloadConfig,
    metrics: &PipelineMetrics,
) -> ThorResult<(PreparedEngine, ChainStamps)> {
    fail_point("reload_open")?;
    let before = chain_stamps(&cfg.path)?;
    let mut engine = PreparedEngine::load_with(&cfg.path, cfg.mode)?;
    fail_point("reload_validate")?;
    // Re-stamp after the load: a file that changed underneath the load
    // may have produced a self-consistent-looking read of mixed bytes,
    // so the whole candidate is rejected, not just patched over. For a
    // delta chain every file is bracketed — a base rewritten while its
    // deltas load is caught the same way.
    let after = chain_stamps(&cfg.path)?;
    if before != after {
        return Err(ThorError::validation(format!(
            "{}: artifact chain changed during load",
            cfg.path.display()
        )));
    }
    if let Some(threads) = cfg.threads {
        engine = engine.with_threads(threads);
    }
    if cfg.reference_refine {
        engine = engine.with_reference_refine(true);
    }
    if cfg.prune != PruneMode::Exact {
        engine = engine.with_prune(cfg.prune);
    }
    let engine = engine.with_metrics(metrics.clone());
    Ok((engine, after))
}

/// One reload attempt: validate the candidate, then swap. On any error
/// the slot is untouched and the previous generation keeps serving.
pub fn try_reload(
    cfg: &ReloadConfig,
    slot: &EngineSlot,
    metrics: &PipelineMetrics,
) -> ThorResult<(Arc<EngineGeneration>, ChainStamps)> {
    let (engine, stamps) = load_candidate(cfg, metrics)?;
    let generation = slot.swap(engine)?;
    metrics
        .registry()
        .gauge("engine.chain_depth")
        .set(generation.engine.chain_depth() as u64);
    Ok((generation, stamps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use thor_fault::atomic_write;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("thor-reload-{}-{name}", std::process::id()))
    }

    fn tiny_artifact() -> Vec<u8> {
        let mut w = thor_fault::SectionWriter::new();
        w.add("meta", 1, b"hello");
        w.finish()
    }

    #[test]
    fn stamp_round_trips_and_detects_change() {
        let path = tmp("stamp");
        atomic_write(&path, &tiny_artifact()).unwrap();
        let a = artifact_stamp(&path).unwrap();
        let b = artifact_stamp(&path).unwrap();
        assert_eq!(a, b);

        let mut w = thor_fault::SectionWriter::new();
        w.add("meta", 1, b"other bytes");
        atomic_write(&path, &w.finish()).unwrap();
        let c = artifact_stamp(&path).unwrap();
        assert_ne!(a, c);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stamp_rejects_truncation_and_corruption_by_name() {
        let path = tmp("corrupt");
        let bytes = tiny_artifact();

        atomic_write(&path, &bytes[..40]).unwrap();
        let e = artifact_stamp(&path).unwrap_err();
        assert!(e.to_string().contains("truncated"), "{e}");

        let mut flipped = bytes.clone();
        flipped[50] ^= 0xFF; // header checksum field
        atomic_write(&path, &flipped).unwrap();
        let e = artifact_stamp(&path).unwrap_err();
        assert!(e.to_string().contains("header checksum"), "{e}");

        let mut dir_flip = bytes.clone();
        let n = dir_flip.len();
        dir_flip[n - 1] ^= 0xFF; // last directory byte
        atomic_write(&path, &dir_flip).unwrap();
        let e = artifact_stamp(&path).unwrap_err();
        assert!(e.to_string().contains("section-directory"), "{e}");

        atomic_write(
            &path,
            b"not an artifact at all, far too short pad pad pad pad pad",
        )
        .unwrap();
        assert!(artifact_stamp(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stamp_rejects_missing_file() {
        assert!(artifact_stamp(Path::new("/nonexistent/engine.thor")).is_err());
    }

    #[test]
    fn chain_stamps_walk_deltas_and_notice_base_changes() {
        use thor_fault::{DeltaMeta, SectionFile, DELTA_META_SECTION, DELTA_META_VERSION};
        let dir = std::env::temp_dir().join(format!("thor-chain-stamp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.eng");
        atomic_write(&base, &tiny_artifact()).unwrap();

        // A plain artifact stamps as a one-element chain.
        let plain = chain_stamps(&base).unwrap();
        assert_eq!(plain.len(), 1);
        assert_eq!(plain[0].1, artifact_stamp(&base).unwrap());

        let parent = SectionFile::open(&base, MapMode::Owned).unwrap();
        let meta = DeltaMeta {
            parent: "base.eng".into(),
            parent_dir_checksum: parent.dir_checksum(),
            parent_fingerprint: "fp".into(),
            depth: 1,
            note: String::new(),
        };
        drop(parent);
        let mut w = thor_fault::SectionWriter::new();
        w.add(DELTA_META_SECTION, DELTA_META_VERSION, &meta.encode());
        w.add("meta", 1, b"patched");
        let delta = dir.join("d1.eng");
        atomic_write(&delta, &w.finish()).unwrap();

        let stamps = chain_stamps(&delta).unwrap();
        assert_eq!(stamps.len(), 2, "base first, then the delta");
        assert_eq!(stamps[0].0, base);
        assert_eq!(stamps[1].0, delta);

        // Rewriting the base breaks the link: the chain walk itself
        // rejects it, so a poll never sees a half-valid chain as new.
        let mut w = thor_fault::SectionWriter::new();
        w.add("meta", 1, b"rebuilt base");
        atomic_write(&base, &w.finish()).unwrap();
        let err = chain_stamps(&delta).unwrap_err();
        assert!(err.to_string().contains("delta base mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
