#![warn(missing_docs)]
//! # thor-text
//!
//! Text-processing substrate for the THOR reproduction.
//!
//! THOR (ICDE 2024) conceptualizes external documents against the concepts
//! of an integrated schema. Everything it does starts from plain text, so
//! this crate provides the low-level linguistic machinery the rest of the
//! workspace builds on:
//!
//! * [`token`] — word tokenization with byte-offset spans,
//! * [`sentence`] — sentence segmentation of documents,
//! * [`inflect`] — rule-based English singularization (seeds are
//!   lemma-like, mentions inflect),
//! * [`normalize`] — case folding, punctuation stripping,
//! * [`stopwords`] — the stop-word list used when trimming noun phrases,
//! * [`similarity`] — the syntactic similarity measures of Algorithm 1:
//!   word-level Jaccard and character-level gestalt (Ratcliff–Obershelp)
//!   pattern matching, plus Levenshtein and n-gram measures used by tests
//!   and ablations,
//! * [`kernels`] — allocation-free fast paths for the two refinement
//!   similarities: precomputed per-phrase syntax ([`PhraseSyntax`] /
//!   [`SeedSyntax`]) plus reusable per-worker scratch ([`ScoreScratch`]),
//!   bit-identical to the [`similarity`] reference implementations,
//! * [`shape`] — word-shape features consumed by the perceptron tagger in
//!   `thor-baselines`.
//!
//! All functions are pure and allocation-conscious; the pipeline calls
//! them once per candidate subphrase, which is the hot loop of the system.

pub mod inflect;
pub mod kernels;
pub mod normalize;
pub mod sentence;
pub mod shape;
pub mod similarity;
pub mod stopwords;
pub mod token;

pub use inflect::{same_lemma, singularize, singularize_phrase};
pub use kernels::{
    gestalt_bound, gestalt_prepared, jaccard_prepared, PhraseSyntax, ScoreScratch, SeedSyntax,
};
pub use normalize::{fold_token, normalize_phrase};
pub use sentence::{split_sentences, Sentence};
pub use similarity::{gestalt_similarity, jaccard_words, levenshtein, ngram_similarity};
pub use stopwords::{is_stopword, strip_stopwords};
pub use token::{tokenize, tokenize_words, Token};
