//! Sentence segmentation.
//!
//! Phase ① of the THOR pipeline segments each document into sentences
//! before associating them with subject instances. We use a rule-based
//! segmenter: sentences end at `.`, `!`, `?` or newlines, except when the
//! period belongs to a known abbreviation, an initial (`J. Smith`), or a
//! decimal number. This is the same class of segmenter spaCy's
//! `sentencizer` implements and is sufficient for the generated corpora,
//! which follow natural-prose conventions.

/// A sentence with its byte span in the source document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sentence {
    /// The sentence text (trimmed of surrounding whitespace).
    pub text: String,
    /// Byte offset of the sentence start in the document.
    pub start: usize,
    /// Byte offset one past the sentence end in the document.
    pub end: usize,
}

/// Abbreviations after which a period does not end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "dr", "mr", "mrs", "ms", "prof", "sr", "jr", "st", "vs", "etc", "e.g", "i.e", "fig", "al",
    "inc", "ltd", "co", "dept", "univ", "approx", "no",
];

fn is_abbreviation(word: &str) -> bool {
    let w = word.trim_end_matches('.').to_ascii_lowercase();
    ABBREVIATIONS.contains(&w.as_str()) || (w.len() == 1 && w.chars().all(|c| c.is_alphabetic()))
}

/// Split `doc` into sentences.
///
/// ```
/// use thor_text::split_sentences;
/// let s = split_sentences("Tuberculosis damages the lungs. It can be fatal.");
/// assert_eq!(s.len(), 2);
/// assert_eq!(s[0].text, "Tuberculosis damages the lungs.");
/// ```
pub fn split_sentences(doc: &str) -> Vec<Sentence> {
    let mut sentences = Vec::new();
    let bytes = doc.as_bytes();
    let mut sent_start = 0usize;

    let push = |sentences: &mut Vec<Sentence>, start: usize, end: usize| {
        let raw = &doc[start..end];
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return;
        }
        let lead = raw.len() - raw.trim_start().len();
        let trail = raw.len() - raw.trim_end().len();
        sentences.push(Sentence {
            text: trimmed.to_string(),
            start: start + lead,
            end: end - trail,
        });
    };

    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let boundary = match c {
            '!' | '?' => true,
            '\n' => {
                // Blank line or single newline both end a sentence (the
                // generated corpora are one-sentence-per-line friendly).
                true
            }
            '.' => {
                // Look back at the word containing the period. The
                // preceding whitespace may be multi-byte (NBSP etc.), so
                // advance by its UTF-8 length, not by 1.
                let word_start = doc[..i]
                    .rfind(|ch: char| ch.is_whitespace())
                    .map(|p| {
                        p + doc[p..]
                            .chars()
                            .next()
                            .expect("rfind hit a char")
                            .len_utf8()
                    })
                    .unwrap_or(0);
                let word = &doc[word_start..i];
                let next_is_digit = bytes
                    .get(i + 1)
                    .is_some_and(|&b| (b as char).is_ascii_digit());
                let prev_is_digit = i > 0 && (bytes[i - 1] as char).is_ascii_digit();
                // A decimal like `12.5`: digit on both sides.
                let decimal = prev_is_digit && next_is_digit;
                // Followed by lowercase start => likely abbreviation usage.
                !(is_abbreviation(word) || decimal)
            }
            _ => false,
        };
        if boundary {
            // Absorb any run of closing punctuation after the terminator.
            let mut end = i + 1;
            while end < bytes.len() && matches!(bytes[end] as char, ')' | '"' | '\'' | ']' | '”')
            {
                end += 1;
            }
            push(&mut sentences, sent_start, end);
            sent_start = end;
            i = end;
            continue;
        }
        i += 1;
    }
    if sent_start < doc.len() {
        push(&mut sentences, sent_start, doc.len());
    }
    sentences
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_doc() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   \n\n  ").is_empty());
    }

    #[test]
    fn single_sentence_no_terminator() {
        let s = split_sentences("Tuberculosis damages the lungs");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].text, "Tuberculosis damages the lungs");
    }

    #[test]
    fn multiple_sentences() {
        let doc = "Acoustic neuroma is a tumor. It grows slowly. Treatment exists!";
        let s = split_sentences(doc);
        assert_eq!(s.len(), 3);
        assert_eq!(s[1].text, "It grows slowly.");
        assert_eq!(s[2].text, "Treatment exists!");
    }

    #[test]
    fn abbreviation_not_a_boundary() {
        let s = split_sentences("Dr. Smith treated the patient. The patient recovered.");
        assert_eq!(s.len(), 2);
        assert!(s[0].text.starts_with("Dr. Smith"));
    }

    #[test]
    fn decimal_not_a_boundary() {
        let s = split_sentences("The dose is 12.5 mg per day. Take it twice.");
        assert_eq!(s.len(), 2);
        assert!(s[0].text.contains("12.5"));
    }

    #[test]
    fn newline_is_a_boundary() {
        let s = split_sentences("First line\nSecond line");
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].text, "First line");
        assert_eq!(s[1].text, "Second line");
    }

    #[test]
    fn spans_point_into_document() {
        let doc = "One sentence here. Another one follows? Yes.";
        for s in split_sentences(doc) {
            assert_eq!(&doc[s.start..s.end], s.text);
        }
    }

    #[test]
    fn closing_quote_absorbed() {
        let s = split_sentences("He said \"stop.\" Then he left.");
        assert_eq!(s.len(), 2);
        assert!(s[0].text.ends_with('"'));
    }

    #[test]
    fn multibyte_whitespace_before_period() {
        // U+00A0 no-break space directly before a period-terminated word
        // used to slice mid-character.
        let s = split_sentences("One\u{a0}word. Two.");
        assert_eq!(s.len(), 2);
        for sent in &s {
            assert!(!sent.text.is_empty());
        }
        // Single letters after NBSP read as initials (no boundary) but
        // must not panic either.
        let s = split_sentences("One\u{a0}b. Two.");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn question_and_exclamation() {
        let s = split_sentences("Is it serious? Yes! See a doctor.");
        assert_eq!(s.len(), 3);
    }
}
