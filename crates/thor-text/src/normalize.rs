//! Normalization used before comparing phrases and looking up embeddings.
//!
//! THOR compares extracted subphrases against table instances both
//! semantically (via embeddings of normalized words) and syntactically.
//! Both sides must therefore share a canonical form: lowercase, no outer
//! punctuation, collapsed whitespace.

/// Case-fold a single token and strip outer punctuation.
///
/// Inner hyphens/apostrophes survive so that `Slow-Growing` folds to
/// `slow-growing` and `Alzheimer's` to `alzheimer's`.
pub fn fold_token(token: &str) -> String {
    token
        .trim_matches(|c: char| c.is_ascii_punctuation() && c != '-' && c != '\'')
        .to_lowercase()
}

/// Normalize a multi-word phrase: fold every token, drop empties, join
/// with single spaces.
///
/// ```
/// use thor_text::normalize_phrase;
/// assert_eq!(normalize_phrase("  The Nervous  SYSTEM. "), "the nervous system");
/// ```
pub fn normalize_phrase(phrase: &str) -> String {
    let mut out = String::with_capacity(phrase.len());
    for tok in phrase.split_whitespace() {
        let folded = fold_token(tok);
        if folded.is_empty() {
            continue;
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&folded);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_basic() {
        assert_eq!(fold_token("Lungs"), "lungs");
        assert_eq!(fold_token("LUNGS,"), "lungs");
        assert_eq!(fold_token("(brain)"), "brain");
    }

    #[test]
    fn fold_keeps_inner_marks() {
        assert_eq!(fold_token("Non-Cancerous"), "non-cancerous");
        assert_eq!(fold_token("Alzheimer's"), "alzheimer's");
    }

    #[test]
    fn fold_pure_punct_to_empty() {
        assert_eq!(fold_token("..."), "");
        assert_eq!(fold_token("!?"), "");
    }

    #[test]
    fn phrase_collapses_whitespace() {
        assert_eq!(normalize_phrase("nervous   system"), "nervous system");
        assert_eq!(normalize_phrase(" a  b\tc "), "a b c");
    }

    #[test]
    fn phrase_drops_punct_only_tokens() {
        assert_eq!(
            normalize_phrase("the lungs , and heart ."),
            "the lungs and heart"
        );
    }

    #[test]
    fn idempotent() {
        let p = "slow-growing non-cancerous brain tumor";
        assert_eq!(normalize_phrase(&normalize_phrase(p)), normalize_phrase(p));
    }
}
