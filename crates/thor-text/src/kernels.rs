//! Allocation-free fast paths for the refinement similarities of
//! Algorithm 1.
//!
//! The serve-path hot loop scores every `(phrase, matched seed)` pair
//! with [`jaccard_words`](crate::jaccard_words) and
//! [`gestalt_similarity`](crate::gestalt_similarity). The reference
//! implementations in [`similarity`](crate::similarity) allocate two
//! `HashSet<String>`s per Jaccard call and per-row `HashMap`s inside the
//! Ratcliff–Obershelp DP — fine as documented ground truth, ruinous once
//! every candidate of every noun phrase of every document pays for them.
//!
//! This module provides the same scores, **bit-identical**, without the
//! allocations:
//!
//! * [`PhraseSyntax`] — the per-phrase precomputation (sorted distinct
//!   lowercase words + raw `char` array). For seed instances it is
//!   computed once per build and frozen into a [`SeedSyntax`] table, so
//!   the seed side of every similarity costs a hash lookup instead of a
//!   re-tokenization.
//! * [`ScoreScratch`] — reusable per-worker buffers (lowercase fold,
//!   word spans, query chars, two flat DP rows, an explicit block
//!   stack). After warm-up, [`jaccard_prepared`] and
//!   [`gestalt_prepared`] perform no heap allocation at all.
//! * a flat two-row longest-common-block DP shared with
//!   [`similarity`](crate::similarity) (which keeps the recursive shape
//!   but no longer builds `HashMap` rows).
//!
//! Bit-equality with the reference functions is load-bearing — the
//! pipeline's early-abandon optimization and the kernel/reference CLI
//! toggle both assert byte-identical output — and is enforced by the
//! property tests at the bottom of this file. The one subtle case is
//! Unicode lowercasing: `str::to_lowercase` maps a word-final `'Σ'` to
//! `'ς'` while the char-wise mapping always yields `'σ'`, so words
//! containing `'Σ'` take a cold path through `str::to_lowercase`.

use std::collections::HashMap;

/// Reusable scratch buffers for the refinement kernels. One per worker
/// thread; after the first few calls the buffers stop growing and the
/// kernels run allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ScoreScratch {
    /// Concatenated lowercase words of the query phrase.
    lower: String,
    /// Byte spans of the (sorted, deduplicated) words within `lower`.
    spans: Vec<(usize, usize)>,
    /// The query phrase's raw characters.
    chars: Vec<char>,
    /// Previous DP row of the longest-common-block search.
    prev: Vec<usize>,
    /// Current DP row of the longest-common-block search.
    curr: Vec<usize>,
    /// Row slots written in `prev`, for sparse re-zeroing.
    touched_prev: Vec<u32>,
    /// Row slots written in `curr`, for sparse re-zeroing.
    touched_curr: Vec<u32>,
    /// Explicit recursion stack of `(alo, ahi, blo, bhi)` block ranges.
    stack: Vec<(usize, usize, usize, usize)>,
}

impl ScoreScratch {
    /// Fresh, empty scratch. Buffers grow on demand and are retained
    /// across calls.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The syntactic precomputation of one phrase: its distinct lowercase
/// words (sorted, for linear-merge intersection) and its raw character
/// sequence (case-sensitive, exactly what
/// [`gestalt_similarity`](crate::gestalt_similarity) compares).
#[derive(Debug, Clone, Default)]
pub struct PhraseSyntax {
    /// Distinct lowercase words, sorted ascending by byte order.
    words: Vec<String>,
    /// The phrase's characters, case preserved.
    chars: Vec<char>,
    /// CSR char→positions index over `chars` (difflib's `b2j`): the
    /// distinct characters, sorted.
    keys: Vec<char>,
    /// `keys[k]`'s positions live at `positions[offsets[k]..offsets[k+1]]`.
    offsets: Vec<u32>,
    /// Ascending positions in `chars`, grouped by character.
    positions: Vec<u32>,
}

impl PhraseSyntax {
    /// Precompute the syntax of `phrase`. Lowercasing matches
    /// `str::to_lowercase` exactly (including the word-final `'Σ'`
    /// special case), so scores against this syntax are bit-identical
    /// to the reference similarities over the raw strings.
    pub fn new(phrase: &str) -> Self {
        let mut lower = String::new();
        let mut spans = Vec::new();
        collect_words(&mut lower, &mut spans, phrase);
        let chars: Vec<char> = phrase.chars().collect();
        let mut pairs: Vec<(char, u32)> = chars.iter().copied().zip(0..).collect();
        pairs.sort_unstable();
        let mut keys = Vec::new();
        let mut offsets: Vec<u32> = Vec::new();
        let mut positions = Vec::with_capacity(pairs.len());
        for (c, idx) in pairs {
            if keys.last() != Some(&c) {
                keys.push(c);
                offsets.push(positions.len() as u32);
            }
            positions.push(idx);
        }
        offsets.push(positions.len() as u32);
        Self {
            words: spans
                .iter()
                .map(|&(s, e)| lower[s..e].to_string())
                .collect(),
            chars,
            keys,
            offsets,
            positions,
        }
    }

    /// Ascending positions of `c` in the phrase (empty if absent).
    fn positions_of(&self, c: char) -> &[u32] {
        match self.keys.binary_search(&c) {
            Ok(k) => {
                let lo = self.offsets[k] as usize;
                let hi = self.offsets[k + 1] as usize;
                &self.positions[lo..hi]
            }
            Err(_) => &[],
        }
    }

    /// Number of distinct lowercase words.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Number of characters in the raw phrase.
    pub fn char_count(&self) -> usize {
        self.chars.len()
    }
}

/// Precomputed [`PhraseSyntax`] for every seed instance of a prepared
/// matcher, keyed by the exact instance string candidates carry in
/// `matched_instance`. Built once at preparation time and frozen into
/// the engine, so the seed side of every refinement score is computed
/// once per build instead of once per candidate.
#[derive(Debug, Clone, Default)]
pub struct SeedSyntax {
    table: HashMap<String, PhraseSyntax>,
}

impl SeedSyntax {
    /// Build the table from seed-instance strings (duplicates are
    /// computed once).
    pub fn build<'a>(seeds: impl IntoIterator<Item = &'a str>) -> Self {
        let mut table = HashMap::new();
        for seed in seeds {
            table
                .entry(seed.to_string())
                .or_insert_with(|| PhraseSyntax::new(seed));
        }
        Self { table }
    }

    /// Incrementally re-freeze the table with additional seed-instance
    /// strings: instances already present keep their precomputed syntax,
    /// new ones are computed now. Because `PhraseSyntax::new` is
    /// deterministic, the result is indistinguishable from
    /// [`SeedSyntax::build`] over the union — this is the delta path of
    /// engine evolution, where a seed addition must not recompute the
    /// syntax of every existing instance.
    pub fn extend<'a>(&self, seeds: impl IntoIterator<Item = &'a str>) -> Self {
        let mut table = self.table.clone();
        for seed in seeds {
            table
                .entry(seed.to_string())
                .or_insert_with(|| PhraseSyntax::new(seed));
        }
        Self { table }
    }

    /// The distinct seed instances in sorted order, for artifact
    /// serialization. [`SeedSyntax::build`] over this list reproduces
    /// the table exactly (`PhraseSyntax::new` is deterministic), so a
    /// load rebuilds rather than persisting the derived arrays.
    pub fn instances(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.table.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// The precomputed syntax of `instance`, if it was a seed.
    pub fn get(&self, instance: &str) -> Option<&PhraseSyntax> {
        self.table.get(instance)
    }

    /// Number of distinct seed instances in the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

/// Split `phrase` on whitespace, lowercase each word into `lower`, and
/// leave the **sorted, deduplicated** word spans in `spans`. The spans
/// then enumerate exactly the distinct lowercase words the reference
/// `HashSet<String>` would contain, in ascending byte order.
fn collect_words(lower: &mut String, spans: &mut Vec<(usize, usize)>, phrase: &str) {
    lower.clear();
    spans.clear();
    for word in phrase.split_whitespace() {
        let start = lower.len();
        if word.contains('Σ') {
            // Cold path: `str::to_lowercase` maps word-final 'Σ' to 'ς'
            // where the char-wise mapping yields 'σ'. Allocate to match
            // the reference bit for bit.
            lower.push_str(&word.to_lowercase());
        } else {
            for ch in word.chars() {
                if ch.is_ascii() {
                    // `char::to_lowercase` agrees with the ASCII table
                    // on ASCII input; skip the Unicode-table walk.
                    lower.push(ch.to_ascii_lowercase());
                } else {
                    for lc in ch.to_lowercase() {
                        lower.push(lc);
                    }
                }
            }
        }
        spans.push((start, lower.len()));
    }
    let buf: &str = lower;
    spans.sort_unstable_by(|&(s1, e1), &(s2, e2)| buf[s1..e1].cmp(&buf[s2..e2]));
    spans.dedup_by(|&mut (s1, e1), &mut (s2, e2)| buf[s1..e1] == buf[s2..e2]);
}

/// Allocation-free fast path of [`jaccard_words`](crate::jaccard_words):
/// word-level Jaccard between `phrase` and a precomputed seed syntax,
/// bit-identical to the reference over the raw strings.
pub fn jaccard_prepared(scratch: &mut ScoreScratch, phrase: &str, seed: &PhraseSyntax) -> f64 {
    collect_words(&mut scratch.lower, &mut scratch.spans, phrase);
    let na = scratch.spans.len();
    let nb = seed.words.len();
    if na == 0 && nb == 0 {
        return 1.0;
    }
    if na == 0 || nb == 0 {
        return 0.0;
    }
    // Both word lists are sorted and distinct: a two-pointer merge
    // counts the intersection the reference counts via hash lookups.
    let mut inter = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < na && j < nb {
        let (s, e) = scratch.spans[i];
        match scratch.lower[s..e].cmp(&seed.words[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = na + nb - inter;
    inter as f64 / union as f64
}

/// Cheap upper bound on [`gestalt_prepared`] — difflib's
/// `real_quick_ratio`: at most `min(|a|, |b|)` characters can match, so
/// the similarity is at most `2·min/(|a| + |b|)`. One `chars()` pass
/// over the phrase, no allocation, no DP; callers use it to skip the
/// quadratic block search for candidates that cannot win. Both-empty
/// returns 1.0, matching the similarity's own convention.
pub fn gestalt_bound(phrase: &str, seed: &PhraseSyntax) -> f64 {
    let a = phrase.chars().count();
    let b = seed.char_count();
    let total = a + b;
    if total == 0 {
        return 1.0;
    }
    2.0 * a.min(b) as f64 / total as f64
}

/// Allocation-free fast path of
/// [`gestalt_similarity`](crate::gestalt_similarity): Ratcliff–Obershelp
/// similarity between `phrase` and a precomputed seed syntax,
/// bit-identical to the reference over the raw strings.
pub fn gestalt_prepared(scratch: &mut ScoreScratch, phrase: &str, seed: &PhraseSyntax) -> f64 {
    let ScoreScratch {
        chars,
        prev,
        curr,
        touched_prev,
        touched_curr,
        stack,
        ..
    } = scratch;
    chars.clear();
    chars.extend(phrase.chars());
    let total = chars.len() + seed.chars.len();
    if total == 0 {
        return 1.0;
    }
    let m = matching_chars_seeded(prev, curr, touched_prev, touched_curr, stack, chars, seed);
    2.0 * m as f64 / total as f64
}

/// Total matched characters of the recursive longest-common-block
/// decomposition, with the recursion replaced by an explicit stack.
/// Summation order differs from the recursive reference but the summed
/// block set — and therefore the integer total — is identical.
#[allow(clippy::too_many_arguments)] // scratch split into its parts
fn matching_chars_seeded(
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
    touched_prev: &mut Vec<u32>,
    touched_curr: &mut Vec<u32>,
    stack: &mut Vec<(usize, usize, usize, usize)>,
    a: &[char],
    seed: &PhraseSyntax,
) -> usize {
    stack.clear();
    stack.push((0, a.len(), 0, seed.chars.len()));
    let mut total = 0;
    while let Some((alo, ahi, blo, bhi)) = stack.pop() {
        let (i, j, k) = longest_match_seeded(
            prev,
            curr,
            touched_prev,
            touched_curr,
            a,
            seed,
            alo,
            ahi,
            blo,
            bhi,
        );
        if k == 0 {
            continue;
        }
        total += k;
        stack.push((alo, i, blo, j));
        stack.push((i + k, ahi, j + k, bhi));
    }
    total
}

/// Sparse variant of [`longest_match_flat`] using the seed's
/// precomputed char→positions index (difflib's own `b2j` strategy):
/// only `(i, j)` cells where `a[i] == seed.chars[j]` are visited, and
/// rows are re-zeroed through touched-slot lists instead of range
/// fills. The dense DP writes a nonzero `curr[j]` only at those same
/// matching cells and updates `best` in the same `(i asc, j asc)`
/// order with the same strict `>`, so the returned triple is identical
/// bit for bit.
///
/// Invariant: `prev`/`curr` are all-zero on entry and restored to
/// all-zero before returning (touched lists record every write).
#[allow(clippy::too_many_arguments)] // scratch split into its parts
#[allow(clippy::needless_range_loop)] // index loops mirror the difflib reference
fn longest_match_seeded(
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
    touched_prev: &mut Vec<u32>,
    touched_curr: &mut Vec<u32>,
    a: &[char],
    seed: &PhraseSyntax,
    alo: usize,
    ahi: usize,
    blo: usize,
    bhi: usize,
) -> (usize, usize, usize) {
    let mut best = (alo, blo, 0usize);
    if alo >= ahi || blo >= bhi {
        return best;
    }
    if prev.len() < bhi {
        prev.resize(bhi, 0);
        curr.resize(bhi, 0);
    }
    touched_prev.clear();
    touched_curr.clear();
    for i in alo..ahi {
        let positions = seed.positions_of(a[i]);
        let start = positions.partition_point(|&j| (j as usize) < blo);
        for &j in &positions[start..] {
            let j = j as usize;
            if j >= bhi {
                break;
            }
            let k = if j > blo { prev[j - 1] } else { 0 } + 1;
            curr[j] = k;
            touched_curr.push(j as u32);
            if k > best.2 {
                best = (i + 1 - k, j + 1 - k, k);
            }
        }
        for &j in touched_prev.iter() {
            prev[j as usize] = 0;
        }
        touched_prev.clear();
        std::mem::swap(prev, curr);
        std::mem::swap(touched_prev, touched_curr);
    }
    for &j in touched_prev.iter() {
        prev[j as usize] = 0;
    }
    touched_prev.clear();
    best
}

/// Flat two-row replacement for the difflib-style `HashMap` DP: longest
/// common contiguous block between `a[alo..ahi]` and `b[blo..bhi]` as
/// `(start_a, start_b, len)`, ties broken toward the earliest position
/// in `a`, then `b` — the identical scan order and tie-break of the
/// reference, so the returned block is the same triple bit for bit.
///
/// `prev[j]` holds the match length ending at `(i-1, j)`; a missing
/// `HashMap` entry of the reference corresponds to a zeroed slot (rows
/// are re-zeroed over `blo..bhi` each iteration, and `j == blo` reads 0
/// exactly where the reference's `j.checked_sub(1)` lookup misses).
#[allow(clippy::needless_range_loop)] // index loops mirror the difflib reference
#[allow(clippy::too_many_arguments)] // (a, b) ranges plus the two DP rows
pub(crate) fn longest_match_flat(
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
    a: &[char],
    b: &[char],
    alo: usize,
    ahi: usize,
    blo: usize,
    bhi: usize,
) -> (usize, usize, usize) {
    let mut best = (alo, blo, 0usize);
    if alo >= ahi || blo >= bhi {
        return best;
    }
    if prev.len() < bhi {
        prev.resize(bhi, 0);
        curr.resize(bhi, 0);
    }
    prev[blo..bhi].fill(0);
    for i in alo..ahi {
        curr[blo..bhi].fill(0);
        for j in blo..bhi {
            if a[i] == b[j] {
                let k = if j > blo { prev[j - 1] } else { 0 } + 1;
                curr[j] = k;
                if k > best.2 {
                    best = (i + 1 - k, j + 1 - k, k);
                }
            }
        }
        std::mem::swap(prev, curr);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{gestalt_similarity, jaccard_words};
    use proptest::prelude::*;

    fn jaccard_kernel(a: &str, b: &str) -> f64 {
        let mut scratch = ScoreScratch::new();
        jaccard_prepared(&mut scratch, a, &PhraseSyntax::new(b))
    }

    fn gestalt_kernel(a: &str, b: &str) -> f64 {
        let mut scratch = ScoreScratch::new();
        gestalt_prepared(&mut scratch, a, &PhraseSyntax::new(b))
    }

    #[test]
    fn jaccard_kernel_matches_reference_basics() {
        for (a, b) in [
            ("brain tumor", "brain tumor"),
            ("Nervous System", "nervous system"),
            ("blood clot", "blood"),
            ("non-cancerous brain tumor", "skin cancer"),
            ("", ""),
            ("", "brain"),
            ("brain brain brain", "brain"),
            ("  spaced   out  ", "spaced out"),
        ] {
            assert_eq!(
                jaccard_kernel(a, b).to_bits(),
                jaccard_words(a, b).to_bits(),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn gestalt_kernel_matches_reference_basics() {
        for (a, b) in [
            ("abcd", "bcde"),
            ("apple", "aple"),
            ("gestalt", "pattern"),
            ("brain", "brian"),
            ("", ""),
            ("a", ""),
            ("aaaa", "aa"),
        ] {
            assert_eq!(
                gestalt_kernel(a, b).to_bits(),
                gestalt_similarity(a, b).to_bits(),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn sigma_lowercasing_matches_str_to_lowercase() {
        // str::to_lowercase maps word-final 'Σ' to 'ς'; char-wise maps
        // to 'σ'. The kernels must follow the reference's str semantics.
        for (a, b) in [
            ("ΟΔΥΣΣΕΥΣ", "οδυσσευς"),
            ("ΟΔΥΣΣΕΥΣ", "οδυσσευσ"),
            ("ΣΣ Σ", "σς ς"),
            ("İstanbul Σ", "istanbul"),
        ] {
            assert_eq!(
                jaccard_kernel(a, b).to_bits(),
                jaccard_words(a, b).to_bits(),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn scratch_reuse_does_not_contaminate_results() {
        let mut scratch = ScoreScratch::new();
        let pairs = [
            ("slow-growing non-cancerous brain tumor", "skin cancer"),
            ("x", "a much longer seed instance phrase"),
            ("", "brain"),
            ("brain tumor", "brain tumor"),
        ];
        for (a, b) in pairs {
            let seed = PhraseSyntax::new(b);
            let jw = jaccard_prepared(&mut scratch, a, &seed);
            let gc = gestalt_prepared(&mut scratch, a, &seed);
            assert_eq!(jw.to_bits(), jaccard_words(a, b).to_bits(), "{a:?}/{b:?}");
            assert_eq!(
                gc.to_bits(),
                gestalt_similarity(a, b).to_bits(),
                "{a:?}/{b:?}"
            );
        }
    }

    #[test]
    fn seed_syntax_lookup() {
        let syntax = SeedSyntax::build(["skin cancer", "nervous system", "skin cancer"]);
        assert_eq!(syntax.len(), 2);
        assert!(!syntax.is_empty());
        let seed = syntax.get("skin cancer").unwrap();
        assert_eq!(seed.word_count(), 2);
        assert_eq!(seed.char_count(), "skin cancer".chars().count());
        assert!(syntax.get("unknown").is_none());
    }

    #[test]
    fn seed_syntax_extend_matches_fresh_build() {
        let base = SeedSyntax::build(["skin cancer", "nervous system"]);
        let extended = base.extend(["stroke", "skin cancer", "blood clot"]);
        let fresh = SeedSyntax::build(["skin cancer", "nervous system", "stroke", "blood clot"]);
        assert_eq!(extended.instances(), fresh.instances());
        assert_eq!(extended.len(), 4);
        for inst in extended.instances() {
            let a = extended.get(inst).unwrap();
            let b = fresh.get(inst).unwrap();
            assert_eq!(a.word_count(), b.word_count());
            assert_eq!(a.char_count(), b.char_count());
        }
        // The original table is untouched.
        assert_eq!(base.len(), 2);
    }

    proptest! {
        #[test]
        fn jaccard_bit_equal_unicode(a in "\\PC{0,24}", b in "\\PC{0,24}") {
            prop_assert_eq!(
                jaccard_kernel(&a, &b).to_bits(),
                jaccard_words(&a, &b).to_bits()
            );
        }

        #[test]
        fn gestalt_bound_is_sound(a in "\\PC{0,18}", b in "\\PC{0,18}") {
            let seed = PhraseSyntax::new(&b);
            let mut scratch = ScoreScratch::new();
            let actual = gestalt_prepared(&mut scratch, &a, &seed);
            prop_assert!(gestalt_bound(&a, &seed) >= actual);
        }

        #[test]
        fn jaccard_bit_equal_wordy(a in "[a-cA-C ]{0,30}", b in "[a-cA-C ]{0,30}") {
            // Narrow alphabet forces word collisions and duplicates.
            prop_assert_eq!(
                jaccard_kernel(&a, &b).to_bits(),
                jaccard_words(&a, &b).to_bits()
            );
        }

        #[test]
        fn gestalt_bit_equal_unicode(a in "\\PC{0,18}", b in "\\PC{0,18}") {
            prop_assert_eq!(
                gestalt_kernel(&a, &b).to_bits(),
                gestalt_similarity(&a, &b).to_bits()
            );
        }

        #[test]
        fn gestalt_bit_equal_repeats(a in "[ab]{0,14}", b in "[ab]{0,14}") {
            // Repeated characters stress the block decomposition.
            prop_assert_eq!(
                gestalt_kernel(&a, &b).to_bits(),
                gestalt_similarity(&a, &b).to_bits()
            );
        }

        #[test]
        fn shared_scratch_equals_fresh_scratch(
            a in "\\PC{0,16}", b in "\\PC{0,16}", c in "\\PC{0,16}"
        ) {
            let mut shared = ScoreScratch::new();
            let sb = PhraseSyntax::new(&b);
            let sc = PhraseSyntax::new(&c);
            // Interleave two seed targets through one scratch.
            let j1 = jaccard_prepared(&mut shared, &a, &sb);
            let g1 = gestalt_prepared(&mut shared, &a, &sc);
            let j2 = jaccard_prepared(&mut shared, &a, &sc);
            let g2 = gestalt_prepared(&mut shared, &a, &sb);
            prop_assert_eq!(j1.to_bits(), jaccard_words(&a, &b).to_bits());
            prop_assert_eq!(g1.to_bits(), gestalt_similarity(&a, &c).to_bits());
            prop_assert_eq!(j2.to_bits(), jaccard_words(&a, &c).to_bits());
            prop_assert_eq!(g2.to_bits(), gestalt_similarity(&a, &b).to_bits());
        }
    }
}
