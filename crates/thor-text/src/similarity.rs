//! Syntactic string-similarity measures from Algorithm 1 and its tests.
//!
//! THOR's syntactic refinement scores every candidate entity against its
//! best-matching seed instance with:
//!
//! * **word-level Jaccard** ([`jaccard_words`]) — intersection over union
//!   of the word sets (`e.score_w`);
//! * **character-level gestalt pattern matching**
//!   ([`gestalt_similarity`]) — the Ratcliff–Obershelp algorithm, the same
//!   measure as Python's `difflib.SequenceMatcher.ratio()` (`e.score_c`).
//!
//! [`levenshtein`] and [`ngram_similarity`] are additional measures used
//! by ablation benches and tests. All similarities return values in
//! `[0, 1]` (1 = identical).

use std::collections::{HashMap, HashSet};

use crate::kernels::longest_match_flat;

/// Word-level Jaccard similarity: |A ∩ B| / |A ∪ B| over the lowercase
/// word sets of the two phrases. Empty-vs-empty is defined as 1.0
/// (identical), empty-vs-nonempty as 0.0.
///
/// ```
/// use thor_text::jaccard_words;
/// assert_eq!(jaccard_words("brain tumor", "brain tumor"), 1.0);
/// assert_eq!(jaccard_words("brain tumor", "skin tumor"), 1.0 / 3.0);
/// ```
pub fn jaccard_words(a: &str, b: &str) -> f64 {
    let set_a: HashSet<String> = a.split_whitespace().map(str::to_lowercase).collect();
    let set_b: HashSet<String> = b.split_whitespace().map(str::to_lowercase).collect();
    if set_a.is_empty() && set_b.is_empty() {
        return 1.0;
    }
    if set_a.is_empty() || set_b.is_empty() {
        return 0.0;
    }
    let inter = set_a.intersection(&set_b).count();
    let union = set_a.len() + set_b.len() - inter;
    inter as f64 / union as f64
}

/// Length of the longest common contiguous block between `a[alo..ahi]`
/// and `b[blo..bhi]`, returned as (start_a, start_b, len). Ties are
/// broken toward the earliest position in `a`, then `b` (as in
/// Ratcliff–Obershelp / difflib without junk handling).
///
/// The DP rows are two flat, reusable buffers threaded down from
/// [`gestalt_similarity`] — [`crate::kernels::longest_match_flat`]
/// replaces the `HashMap<usize, usize>` rows the difflib reference
/// builds per iteration (a missing map entry is a zeroed slot; the
/// `longest_match_flat_equals_difflib_reference` proptest pins the
/// equivalence on random unicode).
#[allow(clippy::too_many_arguments)] // (a, b) ranges plus the two DP rows
fn longest_match(
    a: &[char],
    b: &[char],
    alo: usize,
    ahi: usize,
    blo: usize,
    bhi: usize,
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
) -> (usize, usize, usize) {
    longest_match_flat(prev, curr, a, b, alo, ahi, blo, bhi)
}

#[allow(clippy::too_many_arguments)] // mirrors the difflib recursion plus the two DP rows
fn matching_chars(
    a: &[char],
    b: &[char],
    alo: usize,
    ahi: usize,
    blo: usize,
    bhi: usize,
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
) -> usize {
    let (i, j, k) = longest_match(a, b, alo, ahi, blo, bhi, prev, curr);
    if k == 0 {
        return 0;
    }
    k + matching_chars(a, b, alo, i, blo, j, prev, curr)
        + matching_chars(a, b, i + k, ahi, j + k, bhi, prev, curr)
}

/// Gestalt pattern matching (Ratcliff–Obershelp) similarity:
/// `2 * M / (|a| + |b|)` where `M` is the total number of characters in
/// recursively found longest common blocks. Case-sensitive; callers
/// normalize first. Equivalent to Python `difflib.SequenceMatcher(None,
/// a, b).ratio()`.
///
/// ```
/// use thor_text::gestalt_similarity;
/// assert_eq!(gestalt_similarity("abc", "abc"), 1.0);
/// assert!(gestalt_similarity("brain", "brian") > 0.7);
/// assert_eq!(gestalt_similarity("", ""), 1.0);
/// ```
pub fn gestalt_similarity(a: &str, b: &str) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let ca: Vec<char> = a.chars().collect();
    let cb: Vec<char> = b.chars().collect();
    let total = ca.len() + cb.len();
    if total == 0 {
        return 1.0;
    }
    let (mut prev, mut curr) = (Vec::new(), Vec::new());
    let m = matching_chars(&ca, &cb, 0, ca.len(), 0, cb.len(), &mut prev, &mut curr);
    2.0 * m as f64 / total as f64
}

/// Levenshtein edit distance (unit costs) between `a` and `b`, over
/// Unicode scalar values.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let ca: Vec<char> = a.chars().collect();
    let cb: Vec<char> = b.chars().collect();
    if ca.is_empty() {
        return cb.len();
    }
    if cb.is_empty() {
        return ca.len();
    }
    let mut prev: Vec<usize> = (0..=cb.len()).collect();
    let mut curr = vec![0usize; cb.len() + 1];
    for (i, &ac) in ca.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &bc) in cb.iter().enumerate() {
            let cost = usize::from(ac != bc);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[cb.len()]
}

/// Normalized Levenshtein similarity: `1 - dist / max(|a|, |b|)`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Character n-gram (Dice-coefficient) similarity over multiset n-grams.
/// Strings shorter than `n` are compared as whole strings.
pub fn ngram_similarity(a: &str, b: &str, n: usize) -> f64 {
    assert!(n > 0, "n-gram size must be positive");
    let grams = |s: &str| -> HashMap<String, usize> {
        let chars: Vec<char> = s.chars().collect();
        let mut m = HashMap::new();
        if chars.len() < n {
            if !chars.is_empty() {
                *m.entry(s.to_string()).or_insert(0) += 1;
            }
            return m;
        }
        for w in chars.windows(n) {
            *m.entry(w.iter().collect::<String>()).or_insert(0) += 1;
        }
        m
    };
    let ga = grams(a);
    let gb = grams(b);
    let na: usize = ga.values().sum();
    let nb: usize = gb.values().sum();
    if na == 0 && nb == 0 {
        return 1.0;
    }
    if na == 0 || nb == 0 {
        return 0.0;
    }
    let overlap: usize = ga
        .iter()
        .map(|(g, &c)| c.min(gb.get(g).copied().unwrap_or(0)))
        .sum();
    2.0 * overlap as f64 / (na + nb) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The original difflib-style DP with per-row `HashMap`s, retained
    /// verbatim as the ground truth the flat-buffer DP is checked
    /// against.
    #[allow(clippy::needless_range_loop)] // kept verbatim as the reference
    fn longest_match_difflib(
        a: &[char],
        b: &[char],
        alo: usize,
        ahi: usize,
        blo: usize,
        bhi: usize,
    ) -> (usize, usize, usize) {
        let mut best = (alo, blo, 0usize);
        let mut j2len: HashMap<usize, usize> = HashMap::new();
        for i in alo..ahi {
            let mut new_j2len: HashMap<usize, usize> = HashMap::new();
            for j in blo..bhi {
                if a[i] == b[j] {
                    let k = j
                        .checked_sub(1)
                        .and_then(|p| j2len.get(&p))
                        .copied()
                        .unwrap_or(0)
                        + 1;
                    new_j2len.insert(j, k);
                    if k > best.2 {
                        best = (i + 1 - k, j + 1 - k, k);
                    }
                }
            }
            j2len = new_j2len;
        }
        best
    }

    #[test]
    fn jaccard_identical() {
        assert_eq!(jaccard_words("nervous system", "nervous system"), 1.0);
        assert_eq!(jaccard_words("Nervous System", "nervous system"), 1.0);
    }

    #[test]
    fn jaccard_disjoint() {
        assert_eq!(jaccard_words("brain", "lungs"), 0.0);
    }

    #[test]
    fn jaccard_partial() {
        // {non-cancerous, brain, tumor} vs {skin, cancer}: no overlap.
        assert_eq!(
            jaccard_words("non-cancerous brain tumor", "skin cancer"),
            0.0
        );
        // {blood, clot} vs {blood}: 1/2.
        assert_eq!(jaccard_words("blood clot", "blood"), 0.5);
    }

    #[test]
    fn gestalt_matches_difflib_reference() {
        // Values verified against Python difflib.SequenceMatcher.ratio().
        let close = |x: f64, y: f64| (x - y).abs() < 1e-12;
        assert!(close(gestalt_similarity("abcd", "bcde"), 0.75));
        assert!(close(gestalt_similarity("apple", "aple"), 8.0 / 9.0));
        assert!(close(gestalt_similarity("gestalt", "pattern"), 2.0 / 14.0));
        assert!(close(gestalt_similarity("brain", "brian"), 0.8));
    }

    #[test]
    fn gestalt_empty() {
        assert_eq!(gestalt_similarity("", ""), 1.0);
        assert_eq!(gestalt_similarity("a", ""), 0.0);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn ngram_basics() {
        assert_eq!(ngram_similarity("abc", "abc", 2), 1.0);
        assert_eq!(ngram_similarity("abc", "xyz", 2), 0.0);
        assert!(ngram_similarity("night", "nacht", 2) > 0.0);
    }

    proptest! {
        #[test]
        fn jaccard_in_unit_interval(a in "[a-z ]{0,30}", b in "[a-z ]{0,30}") {
            let s = jaccard_words(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn jaccard_symmetric(a in "[a-z ]{0,30}", b in "[a-z ]{0,30}") {
            prop_assert_eq!(jaccard_words(&a, &b), jaccard_words(&b, &a));
        }

        #[test]
        fn jaccard_reflexive(a in "[a-z ]{0,30}") {
            prop_assert_eq!(jaccard_words(&a, &a), 1.0);
        }

        #[test]
        fn gestalt_in_unit_interval(a in "\\PC{0,20}", b in "\\PC{0,20}") {
            let s = gestalt_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn gestalt_reflexive(a in "\\PC{0,20}") {
            prop_assert!((gestalt_similarity(&a, &a) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn levenshtein_triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn levenshtein_symmetric(a in "\\PC{0,12}", b in "\\PC{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn levenshtein_identity(a in "\\PC{0,12}", b in "\\PC{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b) == 0, a == b);
        }

        #[test]
        fn ngram_in_unit_interval(a in "[a-z]{0,15}", b in "[a-z]{0,15}", n in 1usize..4) {
            let s = ngram_similarity(&a, &b, n);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn gestalt_never_exceeds_one_even_with_repeats(a in "[ab]{0,14}", b in "[ab]{0,14}") {
            // Repeated characters stress the recursive block matching.
            let s = gestalt_similarity(&a, &b);
            prop_assert!(s <= 1.0 + 1e-12);
        }

        #[test]
        fn longest_match_flat_equals_difflib_reference(
            a in "\\PC{0,18}", b in "\\PC{0,18}",
            sub_lo in 0usize..4, sub_hi in 0usize..4,
        ) {
            let ca: Vec<char> = a.chars().collect();
            let cb: Vec<char> = b.chars().collect();
            // Full ranges plus interior sub-ranges (the recursion's shape).
            let alo = sub_lo.min(ca.len());
            let ahi = ca.len().saturating_sub(sub_hi).max(alo);
            let blo = sub_hi.min(cb.len());
            let bhi = cb.len().saturating_sub(sub_lo).max(blo);
            let (mut prev, mut curr) = (Vec::new(), Vec::new());
            for (al, ah, bl, bh) in [(0, ca.len(), 0, cb.len()), (alo, ahi, blo, bhi)] {
                prop_assert_eq!(
                    longest_match(&ca, &cb, al, ah, bl, bh, &mut prev, &mut curr),
                    longest_match_difflib(&ca, &cb, al, ah, bl, bh)
                );
            }
        }
    }
}
