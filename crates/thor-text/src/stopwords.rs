//! Stop-word handling.
//!
//! The paper: "THOR strips from noun phrases any leading or trailing
//! stop-words (such as *a*, *of*, *the*)". We use a compact English
//! stop-word list (function words only — determiners, prepositions,
//! conjunctions, pronouns, auxiliaries); content words are never stopped
//! since they may be part of an entity phrase.

use std::collections::HashSet;
use std::sync::OnceLock;

const STOPWORDS: &[&str] = &[
    // determiners / articles
    "a",
    "an",
    "the",
    "this",
    "that",
    "these",
    "those",
    "each",
    "every",
    "either",
    "neither",
    "some",
    "any",
    "no",
    "such",
    "both",
    "all",
    "another",
    "other",
    // prepositions
    "of",
    "in",
    "on",
    "at",
    "by",
    "for",
    "with",
    "about",
    "against",
    "between",
    "into",
    "through",
    "during",
    "before",
    "after",
    "above",
    "below",
    "to",
    "from",
    "up",
    "down",
    "out",
    "off",
    "over",
    "under",
    "within",
    "without",
    "along",
    "across",
    "behind",
    "beyond",
    "near",
    "among",
    "upon",
    "via",
    "per",
    // conjunctions
    "and",
    "or",
    "but",
    "nor",
    "so",
    "yet",
    "if",
    "because",
    "while",
    "although",
    "though",
    "unless",
    "until",
    "when",
    "where",
    "whereas",
    "since",
    "as",
    "than",
    // pronouns
    "i",
    "you",
    "he",
    "she",
    "it",
    "we",
    "they",
    "me",
    "him",
    "her",
    "us",
    "them",
    "my",
    "your",
    "his",
    "its",
    "our",
    "their",
    "mine",
    "yours",
    "hers",
    "ours",
    "theirs",
    "who",
    "whom",
    "whose",
    "which",
    "what",
    "itself",
    "himself",
    "herself",
    "themselves",
    // auxiliaries / copulas
    "am",
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "do",
    "does",
    "did",
    "have",
    "has",
    "had",
    "having",
    "will",
    "would",
    "shall",
    "should",
    "may",
    "might",
    "must",
    "can",
    "could",
    // misc function words
    "not",
    "only",
    "also",
    "very",
    "just",
    "there",
    "here",
    "then",
    "thus",
    "hence",
    "however",
    "moreover",
    "furthermore",
    "too",
    "etc",
    "often",
    "sometimes",
    "usually",
    "commonly",
    "typically",
    "generally",
    "most",
    "more",
    "many",
    "much",
    "few",
    "several",
    "how",
    "why",
    "again",
    "further",
    "once",
];

fn set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Is `word` (any case) a stop-word?
pub fn is_stopword(word: &str) -> bool {
    let lower = word.to_lowercase();
    set().contains(lower.as_str())
}

/// Strip leading and trailing stop-words (and punctuation-only tokens)
/// from a phrase; inner stop-words are kept, matching the paper's
/// noun-phrase trimming ("the lungs" → "lungs", but "quality of life"
/// stays intact).
///
/// ```
/// use thor_text::strip_stopwords;
/// assert_eq!(strip_stopwords("the lungs"), "lungs");
/// assert_eq!(strip_stopwords("loss of balance"), "loss of balance");
/// assert_eq!(strip_stopwords("of the"), "");
/// ```
pub fn strip_stopwords(phrase: &str) -> String {
    let tokens: Vec<&str> = phrase.split_whitespace().collect();
    let is_strippable = |t: &str| is_stopword(t) || t.chars().all(|c| c.is_ascii_punctuation());
    let mut lo = 0usize;
    let mut hi = tokens.len();
    while lo < hi && is_strippable(tokens[lo]) {
        lo += 1;
    }
    while hi > lo && is_strippable(tokens[hi - 1]) {
        hi -= 1;
    }
    tokens[lo..hi].join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_stopwords() {
        for w in ["the", "a", "of", "and", "is", "The", "OF"] {
            assert!(is_stopword(w), "{w} should be a stop-word");
        }
    }

    #[test]
    fn content_words_not_stopped() {
        for w in ["lungs", "brain", "tumor", "surgery", "aspirin"] {
            assert!(!is_stopword(w), "{w} should not be a stop-word");
        }
    }

    #[test]
    fn strip_leading() {
        assert_eq!(strip_stopwords("the lungs"), "lungs");
        assert_eq!(
            strip_stopwords("a slow-growing tumor"),
            "slow-growing tumor"
        );
    }

    #[test]
    fn strip_trailing() {
        assert_eq!(strip_stopwords("lungs and"), "lungs");
    }

    #[test]
    fn inner_stopwords_kept() {
        assert_eq!(strip_stopwords("loss of balance"), "loss of balance");
        assert_eq!(strip_stopwords("the loss of balance"), "loss of balance");
    }

    #[test]
    fn all_stopwords_to_empty() {
        assert_eq!(strip_stopwords("of the and"), "");
        assert_eq!(strip_stopwords(""), "");
    }

    #[test]
    fn punct_tokens_stripped() {
        assert_eq!(strip_stopwords(", lungs ."), "lungs");
    }
}
