//! English inflection-lite: rule-based singularization.
//!
//! Table instances are typically lemma-like (`lung`, `complication`)
//! while text mentions inflect (`lungs`, `complications`). A small
//! rule-based singularizer — the usual -s/-es/-ies family plus a
//! irregular list — lets matching layers compare number-insensitively
//! without a full morphological analyzer.

/// Irregular plural → singular pairs (the common English inventory).
const IRREGULAR: &[(&str, &str)] = &[
    ("children", "child"),
    ("feet", "foot"),
    ("teeth", "tooth"),
    ("geese", "goose"),
    ("men", "man"),
    ("women", "woman"),
    ("mice", "mouse"),
    ("people", "person"),
    ("diagnoses", "diagnosis"),
    ("analyses", "analysis"),
    ("bacteria", "bacterium"),
    ("criteria", "criterion"),
    ("phenomena", "phenomenon"),
    ("vertebrae", "vertebra"),
];

/// Words that look plural but are not (or whose singular equals the
/// plural).
const INVARIANT: &[&str] = &[
    "series",
    "species",
    "news",
    "diabetes",
    "rabies",
    "measles",
    "herpes",
    "scabies",
    "physics",
    "analysis",
    "diagnosis",
    "basis",
    "crisis",
    "lens",
    "aids",
];

/// Singularize one lowercase word. Unknown patterns return the input
/// unchanged; this is a best-effort normalizer, not an analyzer.
///
/// ```
/// use thor_text::inflect::singularize;
/// assert_eq!(singularize("lungs"), "lung");
/// assert_eq!(singularize("complications"), "complication");
/// assert_eq!(singularize("biopsies"), "biopsy");
/// assert_eq!(singularize("abscesses"), "abscess");
/// assert_eq!(singularize("series"), "series");
/// ```
pub fn singularize(word: &str) -> String {
    let w = word.to_lowercase();
    if w.len() <= 2 || INVARIANT.contains(&w.as_str()) {
        return w;
    }
    if let Some(&(_, singular)) = IRREGULAR.iter().find(|(p, _)| *p == w) {
        return singular.to_string();
    }
    // -ies → -y  (biopsies → biopsy), but not short words (dies, ties).
    if w.len() > 4 {
        if let Some(stem) = w.strip_suffix("ies") {
            return format!("{stem}y");
        }
    }
    // -ses/-xes/-zes/-ches/-shes → drop "es".
    for suffix in ["sses", "xes", "zes", "ches", "shes"] {
        if let Some(stem) = w.strip_suffix(suffix) {
            return format!("{stem}{}", &suffix[..suffix.len() - 2]);
        }
    }
    // -oes → -o (tomatoes).
    if let Some(stem) = w.strip_suffix("oes") {
        return format!("{stem}o");
    }
    // plain -s, but not -ss/-us/-is.
    if w.ends_with('s') && !w.ends_with("ss") && !w.ends_with("us") && !w.ends_with("is") {
        return w[..w.len() - 1].to_string();
    }
    w
}

/// Singularize every word of a (whitespace-separated, normalized)
/// phrase.
pub fn singularize_phrase(phrase: &str) -> String {
    phrase
        .split_whitespace()
        .map(singularize)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Number-insensitive phrase equality.
pub fn same_lemma(a: &str, b: &str) -> bool {
    singularize_phrase(&a.to_lowercase()) == singularize_phrase(&b.to_lowercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn regular_plurals() {
        assert_eq!(singularize("lungs"), "lung");
        assert_eq!(singularize("nerves"), "nerve");
        assert_eq!(singularize("tumors"), "tumor");
        assert_eq!(singularize("complications"), "complication");
    }

    #[test]
    fn sibilant_plurals() {
        assert_eq!(singularize("abscesses"), "abscess");
        assert_eq!(singularize("reflexes"), "reflex");
        assert_eq!(singularize("rashes"), "rash");
        assert_eq!(singularize("crutches"), "crutch");
    }

    #[test]
    fn y_plurals() {
        assert_eq!(singularize("biopsies"), "biopsy");
        assert_eq!(singularize("allergies"), "allergy");
        // Short -ies words stay.
        assert_eq!(singularize("ties"), "tie");
    }

    #[test]
    fn irregulars_and_invariants() {
        assert_eq!(singularize("children"), "child");
        assert_eq!(singularize("diagnoses"), "diagnosis");
        assert_eq!(singularize("diabetes"), "diabetes");
        assert_eq!(singularize("species"), "species");
        assert_eq!(singularize("basis"), "basis");
    }

    #[test]
    fn singulars_unchanged() {
        for w in ["lung", "brain", "virus", "illness", "crisis"] {
            assert_eq!(singularize(w), w, "{w} should survive");
        }
    }

    #[test]
    fn phrase_and_lemma_equality() {
        assert_eq!(singularize_phrase("blood clots"), "blood clot");
        assert!(same_lemma("Blood Clots", "blood clot"));
        assert!(!same_lemma("blood clot", "blood vessel"));
    }

    proptest! {
        /// Singularization is idempotent for the rule families we apply.
        #[test]
        fn idempotent(w in "[a-z]{1,12}") {
            let once = singularize(&w);
            prop_assert_eq!(singularize(&once.clone()), once);
        }

        /// Output is always lowercase and never empty for non-empty input.
        #[test]
        fn non_empty_lowercase(w in "[a-zA-Z]{1,12}") {
            let s = singularize(&w);
            prop_assert!(!s.is_empty());
            prop_assert_eq!(s.to_lowercase(), s.clone());
        }
    }
}
