//! Word tokenization with byte-offset spans.
//!
//! The tokenizer is deliberately simple and deterministic: THOR's entity
//! spans are reported as character ranges of the original document, so
//! every token must remember exactly where it came from. We segment on
//! Unicode whitespace and split leading/trailing ASCII punctuation into
//! separate tokens, keeping intra-word hyphens and apostrophes attached
//! (`slow-growing`, `Alzheimer's`) because the paper's noun phrases rely
//! on them.

/// A single token with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token text, exactly as it appears in the source.
    pub text: String,
    /// Byte offset of the first byte of the token in the source.
    pub start: usize,
    /// Byte offset one past the last byte of the token in the source.
    pub end: usize,
}

impl Token {
    /// Construct a token from a slice of the source text.
    pub fn new(text: impl Into<String>, start: usize, end: usize) -> Self {
        Self {
            text: text.into(),
            start,
            end,
        }
    }

    /// True if every character is ASCII punctuation.
    pub fn is_punctuation(&self) -> bool {
        !self.text.is_empty() && self.text.chars().all(|c| c.is_ascii_punctuation())
    }

    /// True if the token is entirely numeric (digits, optional `.`/`,`).
    pub fn is_numeric(&self) -> bool {
        let mut saw_digit = false;
        for c in self.text.chars() {
            match c {
                '0'..='9' => saw_digit = true,
                '.' | ',' | '%' | '+' | '-' => {}
                _ => return false,
            }
        }
        saw_digit
    }
}

/// Characters that may stay inside a word (not split off).
fn is_inner(c: char) -> bool {
    c.is_alphanumeric() || c == '-' || c == '\'' || c == '’' || c == '_'
}

/// Tokenize `text` into [`Token`]s with byte spans.
///
/// Splitting rules:
/// * whitespace always separates tokens;
/// * runs of punctuation at the start or end of a whitespace-delimited
///   chunk become their own single-character tokens (so `"(lungs)."`
///   yields `(`, `lungs`, `)`, `.`);
/// * hyphens and apostrophes *inside* a word are kept (`non-cancerous`).
///
/// ```
/// use thor_text::tokenize;
/// let toks = tokenize("Tuberculosis damages the lungs.");
/// let words: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
/// assert_eq!(words, ["Tuberculosis", "damages", "the", "lungs", "."]);
/// ```
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut chunk_start = None::<usize>;

    let flush = |tokens: &mut Vec<Token>, text: &str, start: usize, end: usize| {
        if start >= end {
            return;
        }
        let chunk = &text[start..end];
        // Find the core: trim leading/trailing non-inner characters,
        // emitting each as a standalone token.
        let mut core_start = start;
        for (i, c) in chunk.char_indices() {
            if is_inner(c) {
                core_start = start + i;
                break;
            }
            tokens.push(Token::new(
                c.to_string(),
                start + i,
                start + i + c.len_utf8(),
            ));
            core_start = start + i + c.len_utf8();
        }
        if core_start >= end {
            return;
        }
        let core_chunk = &text[core_start..end];
        let mut core_end = end;
        let mut trailing: Vec<(usize, char)> = Vec::new();
        for (i, c) in core_chunk
            .char_indices()
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
        {
            if is_inner(c) {
                core_end = core_start + i + c.len_utf8();
                break;
            }
            trailing.push((core_start + i, c));
            core_end = core_start + i;
        }
        if core_start < core_end {
            tokens.push(Token::new(
                &text[core_start..core_end],
                core_start,
                core_end,
            ));
        }
        for (pos, c) in trailing.into_iter().rev() {
            tokens.push(Token::new(c.to_string(), pos, pos + c.len_utf8()));
        }
    };

    for (i, c) in text.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = chunk_start.take() {
                flush(&mut tokens, text, s, i);
            }
        } else if chunk_start.is_none() {
            chunk_start = Some(i);
        }
    }
    if let Some(s) = chunk_start {
        flush(&mut tokens, text, s, text.len());
    }
    tokens
}

/// Tokenize and keep only word-like tokens (drops pure punctuation).
pub fn tokenize_words(text: &str) -> Vec<Token> {
    tokenize(text)
        .into_iter()
        .filter(|t| !t.is_punctuation())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(text: &str) -> Vec<String> {
        tokenize(text).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn simple_sentence() {
        assert_eq!(
            words("the quick brown fox"),
            ["the", "quick", "brown", "fox"]
        );
    }

    #[test]
    fn punctuation_split_off() {
        assert_eq!(words("lungs."), ["lungs", "."]);
        assert_eq!(words("(lungs)."), ["(", "lungs", ")", "."]);
        assert_eq!(
            words("\"hello,\" she said"),
            ["\"", "hello", ",", "\"", "she", "said"]
        );
    }

    #[test]
    fn hyphen_and_apostrophe_kept() {
        assert_eq!(
            words("slow-growing non-cancerous tumor"),
            ["slow-growing", "non-cancerous", "tumor"]
        );
        assert_eq!(words("Alzheimer's disease"), ["Alzheimer's", "disease"]);
    }

    #[test]
    fn pure_punct_chunk() {
        // Hyphens are inner characters, so a run of them stays together.
        assert_eq!(words("--"), ["--"]);
        assert_eq!(words("..."), [".", ".", "."]);
    }

    #[test]
    fn spans_round_trip() {
        let text = "Acoustic neuroma (vestibular schwannoma), a tumor.";
        for t in tokenize(text) {
            assert_eq!(&text[t.start..t.end], t.text, "span mismatch for {t:?}");
        }
    }

    #[test]
    fn unicode_text() {
        let text = "café médecine — naïve";
        let toks = tokenize(text);
        for t in &toks {
            assert_eq!(&text[t.start..t.end], t.text);
        }
        let w: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert!(w.contains(&"café"));
        assert!(w.contains(&"naïve"));
    }

    #[test]
    fn numeric_detection() {
        assert!(Token::new("12.5", 0, 4).is_numeric());
        assert!(Token::new("3,000", 0, 5).is_numeric());
        assert!(!Token::new("x86", 0, 3).is_numeric());
        assert!(!Token::new("-", 0, 1).is_numeric());
    }

    #[test]
    fn tokenize_words_drops_punct() {
        let w: Vec<String> = tokenize_words("lungs, heart.")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(w, ["lungs", "heart"]);
    }

    #[test]
    fn leading_trailing_order_preserved() {
        // Trailing punctuation must be emitted in source order.
        let toks = tokenize("end.)");
        let w: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(w, ["end", ".", ")"]);
        let positions: Vec<usize> = toks.iter().map(|t| t.start).collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted);
    }
}
