//! Word-shape features.
//!
//! The averaged-perceptron sequence tagger (`thor-baselines`) mirrors the
//! orthographic feature templates classic NER systems use. A *shape* maps
//! each character class to a symbol and collapses runs: `Acoustic` →
//! `Xx`, `COVID-19` → `X-d`, `12.5mg` → `d.dx`.

/// Compute the collapsed word shape of `word`.
///
/// Character classes: uppercase → `X`, lowercase → `x`, digit → `d`,
/// everything else passes through. Consecutive identical symbols are
/// collapsed to one.
///
/// ```
/// use thor_text::shape::word_shape;
/// assert_eq!(word_shape("Acoustic"), "Xx");
/// assert_eq!(word_shape("COVID-19"), "X-d");
/// assert_eq!(word_shape("mg"), "x");
/// ```
pub fn word_shape(word: &str) -> String {
    let mut out = String::new();
    let mut last: Option<char> = None;
    for c in word.chars() {
        let sym = if c.is_uppercase() {
            'X'
        } else if c.is_lowercase() {
            'x'
        } else if c.is_ascii_digit() {
            'd'
        } else {
            c
        };
        if last != Some(sym) {
            out.push(sym);
            last = Some(sym);
        }
    }
    out
}

/// Orthographic flags summarizing a token for the tagger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OrthFlags {
    /// First character uppercase.
    pub initial_cap: bool,
    /// Every alphabetic character uppercase.
    pub all_caps: bool,
    /// Contains at least one digit.
    pub has_digit: bool,
    /// Contains a hyphen.
    pub has_hyphen: bool,
    /// Every character is a digit.
    pub all_digits: bool,
}

/// Compute [`OrthFlags`] for a token.
pub fn orth_flags(word: &str) -> OrthFlags {
    let mut flags = OrthFlags::default();
    let mut any_alpha = false;
    let mut all_upper = true;
    let mut all_digit = !word.is_empty();
    for (i, c) in word.chars().enumerate() {
        if i == 0 && c.is_uppercase() {
            flags.initial_cap = true;
        }
        if c.is_alphabetic() {
            any_alpha = true;
            if !c.is_uppercase() {
                all_upper = false;
            }
        }
        if c.is_ascii_digit() {
            flags.has_digit = true;
        } else {
            all_digit = false;
        }
        if c == '-' {
            flags.has_hyphen = true;
        }
    }
    flags.all_caps = any_alpha && all_upper;
    flags.all_digits = all_digit;
    flags
}

/// Prefix of up to `n` characters (for suffix/prefix feature templates).
pub fn prefix(word: &str, n: usize) -> &str {
    match word.char_indices().nth(n) {
        Some((i, _)) => &word[..i],
        None => word,
    }
}

/// Suffix of up to `n` characters.
pub fn suffix(word: &str, n: usize) -> &str {
    let len = word.chars().count();
    if len <= n {
        return word;
    }
    let skip = len - n;
    match word.char_indices().nth(skip) {
        Some((i, _)) => &word[i..],
        None => word,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        assert_eq!(word_shape("Acoustic"), "Xx");
        assert_eq!(word_shape("neuroma"), "x");
        assert_eq!(word_shape("COVID-19"), "X-d");
        assert_eq!(word_shape("12.5"), "d.d");
        assert_eq!(word_shape(""), "");
        assert_eq!(word_shape("McDonald"), "XxXx");
    }

    #[test]
    fn flags() {
        let f = orth_flags("Acoustic");
        assert!(f.initial_cap && !f.all_caps && !f.has_digit);
        let f = orth_flags("WHO");
        assert!(f.all_caps && f.initial_cap);
        let f = orth_flags("x-ray");
        assert!(f.has_hyphen);
        let f = orth_flags("2024");
        assert!(f.all_digits && f.has_digit);
        let f = orth_flags("");
        assert!(!f.all_digits && !f.all_caps);
    }

    #[test]
    fn prefixes_suffixes() {
        assert_eq!(prefix("neuroma", 3), "neu");
        assert_eq!(suffix("neuroma", 3), "oma");
        assert_eq!(prefix("ab", 3), "ab");
        assert_eq!(suffix("ab", 3), "ab");
        // Multibyte safety.
        assert_eq!(prefix("café", 3), "caf");
        assert_eq!(suffix("café", 2), "fé");
    }
}
