//! Criterion benches for the THOR pipeline itself: fine-tuning, phrase
//! matching, and the end-to-end τ sweep (the measured counterpart of
//! Fig. 6 — inference time must fall as τ rises).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use thor_core::{Thor, ThorConfig};
use thor_datagen::{generate, DatasetSpec, Split};
use thor_embed::SgnsConfig;

fn small_dataset() -> thor_datagen::GeneratedDataset {
    generate(&DatasetSpec::disease_az(42, 0.05))
}

fn bench_fine_tune(c: &mut Criterion) {
    let dataset = small_dataset();
    let table = dataset.enrichment_table();
    let mut g = c.benchmark_group("pipeline");
    for tau in [0.5f64, 0.8, 1.0] {
        g.bench_with_input(BenchmarkId::new("fine_tune", tau), &tau, |b, &tau| {
            let thor = Thor::new(dataset.store.clone(), ThorConfig::with_tau(tau));
            b.iter(|| thor.fine_tune(black_box(&table)))
        });
    }
    g.finish();
}

fn bench_match_phrase(c: &mut Criterion) {
    let dataset = small_dataset();
    let table = dataset.enrichment_table();
    let thor = Thor::new(dataset.store.clone(), ThorConfig::with_tau(0.7));
    let matcher = thor.fine_tune(&table);
    let mut g = c.benchmark_group("matcher");
    g.bench_function("match_phrase_4_words", |b| {
        b.iter(|| matcher.match_phrase(black_box("polgrave tanile rusplaia verusone")))
    });
    g.finish();
}

/// The Fig. 6 bench: end-to-end extraction per τ.
fn bench_thor_tau(c: &mut Criterion) {
    let dataset = small_dataset();
    let table = dataset.enrichment_table();
    let docs = dataset.documents(Split::Test);
    let mut g = c.benchmark_group("thor_tau");
    g.sample_size(10);
    for tau in [0.5f64, 0.6, 0.7, 0.8, 0.9, 1.0] {
        g.bench_with_input(BenchmarkId::from_parameter(tau), &tau, |b, &tau| {
            let thor = Thor::new(dataset.store.clone(), ThorConfig::with_tau(tau));
            b.iter(|| thor.extract(black_box(&table), black_box(&docs)))
        });
    }
    g.finish();
}

fn bench_sgns(c: &mut Criterion) {
    // A small SGNS training run (the embedding substrate's hot loop).
    let corpus: Vec<Vec<String>> = (0..100)
        .map(|i| {
            (0..10)
                .map(|j| format!("word{}", (i * 7 + j * 3) % 40))
                .collect::<Vec<String>>()
        })
        .collect();
    let mut g = c.benchmark_group("embed");
    g.sample_size(10);
    g.bench_function("sgns_train_small", |b| {
        let config = SgnsConfig {
            dim: 16,
            epochs: 2,
            ..Default::default()
        };
        b.iter(|| thor_embed::SgnsTrainer::new(config.clone()).train(black_box(&corpus)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fine_tune,
    bench_match_phrase,
    bench_thor_tau,
    bench_sgns
);
criterion_main!(benches);
