//! Criterion micro-benches for the substrate crates: string similarity,
//! tokenization, multi-pattern matching, POS tagging, parsing, and the
//! integration operators.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use thor_automata::AhoCorasickBuilder;
use thor_data::{full_disjunction, Schema, Table};
use thor_nlp::{noun_phrases, parse_dependencies, RuleTagger, Tagger};
use thor_text::{gestalt_similarity, jaccard_words, levenshtein, split_sentences, tokenize};

const SENTENCE: &str =
    "Acoustic Neuroma is a slow-growing non-cancerous brain tumor that may cause \
     unsteadiness, deafness and severe hearing loss in many patients.";

fn bench_text(c: &mut Criterion) {
    let mut g = c.benchmark_group("text");
    g.bench_function("tokenize_sentence", |b| {
        b.iter(|| tokenize(black_box(SENTENCE)))
    });
    let doc = SENTENCE.repeat(50);
    g.bench_function("split_sentences_50", |b| {
        b.iter(|| split_sentences(black_box(&doc)))
    });
    g.bench_function("gestalt_short", |b| {
        b.iter(|| {
            gestalt_similarity(
                black_box("non-cancerous brain tumor"),
                black_box("skin cancer"),
            )
        })
    });
    g.bench_function("jaccard_short", |b| {
        b.iter(|| {
            jaccard_words(
                black_box("non-cancerous brain tumor"),
                black_box("skin cancer"),
            )
        })
    });
    g.bench_function("levenshtein_short", |b| {
        b.iter(|| levenshtein(black_box("unsteadiness"), black_box("uneasiness")))
    });
    g.finish();
}

fn bench_automata(c: &mut Criterion) {
    let mut g = c.benchmark_group("automata");
    let patterns: Vec<String> = (0..500).map(|i| format!("pattern{i:03}word")).collect();
    g.bench_function("build_500_patterns", |b| {
        b.iter(|| {
            let mut builder = AhoCorasickBuilder::new();
            builder.add_patterns(patterns.iter());
            builder.build()
        })
    });
    let mut builder = AhoCorasickBuilder::new();
    builder.add_patterns(patterns.iter());
    builder.add_pattern("brain tumor");
    let ac = builder.build();
    let haystack = SENTENCE.repeat(20);
    g.bench_function("find_all_20_sentences", |b| {
        b.iter(|| ac.find_all(black_box(&haystack)))
    });
    g.bench_function("find_words_20_sentences", |b| {
        b.iter(|| ac.find_words(black_box(&haystack)))
    });
    g.finish();
}

fn bench_nlp(c: &mut Criterion) {
    let mut g = c.benchmark_group("nlp");
    let tagger = RuleTagger::default();
    let tokens = tokenize(SENTENCE);
    let words: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
    g.bench_function("rule_tag_sentence", |b| {
        b.iter(|| tagger.tag(black_box(&words)))
    });
    let tags = tagger.tag(&words);
    g.bench_function("dependency_parse", |b| {
        b.iter(|| parse_dependencies(black_box(&words), black_box(&tags)))
    });
    let tree = parse_dependencies(&words, &tags);
    g.bench_function("noun_phrases", |b| {
        b.iter(|| noun_phrases(black_box(&words), black_box(&tags), black_box(&tree)))
    });
    g.finish();
}

fn bench_eval_and_quant(c: &mut Criterion) {
    use thor_embed::{QuantizedStore, SemanticSpaceBuilder};
    use thor_eval::{evaluate, schema_scores, Annotation};

    let mut g = c.benchmark_group("eval");
    let gold: Vec<Annotation> = (0..300)
        .map(|i| Annotation::new(format!("d{}", i % 20), "concept", &format!("phrase {i}")))
        .collect();
    let preds: Vec<Annotation> = (0..300)
        .map(|i| {
            // Two thirds exact, one third shifted.
            let p = if i % 3 == 0 {
                format!("phrase {}", i + 1)
            } else {
                format!("phrase {i}")
            };
            Annotation::new(format!("d{}", i % 20), "concept", &p)
        })
        .collect();
    g.bench_function("evaluate_300", |b| {
        b.iter(|| evaluate(black_box(&preds), black_box(&gold)))
    });
    g.bench_function("schema_scores_300", |b| {
        b.iter(|| schema_scores(black_box(&preds), black_box(&gold)))
    });
    g.finish();

    let names: Vec<String> = (0..64).map(|i| format!("w{i}")).collect();
    let store = SemanticSpaceBuilder::new(48, 3)
        .topic("t")
        .words("t", names.iter().map(String::as_str))
        .build()
        .into_store();
    let mut g = c.benchmark_group("quant");
    g.bench_function("quantize_64x48", |b| {
        b.iter(|| QuantizedStore::from_store(black_box(&store)))
    });
    let q = QuantizedStore::from_store(&store);
    g.bench_function("dequantize_64x48", |b| b.iter(|| q.to_store()));
    g.finish();
}

fn bench_integration(c: &mut Criterion) {
    let mut g = c.benchmark_group("integration");
    let make_source = |concept: &str, offset: usize| {
        let schema = Schema::new(vec!["Subject".to_string(), concept.to_string()], "Subject");
        let mut t = Table::new(schema);
        for i in 0..200 {
            t.fill_slot(
                &format!("subject{}", (i + offset) % 300),
                concept,
                &format!("value{i}"),
            );
        }
        t
    };
    let sources: Vec<Table> = (0..8)
        .map(|i| make_source(&format!("Concept{i}"), i * 37))
        .collect();
    g.bench_function("full_disjunction_8x200", |b| {
        b.iter_batched(
            || sources.iter().collect::<Vec<&Table>>(),
            |refs| full_disjunction(&refs),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_text,
    bench_automata,
    bench_nlp,
    bench_eval_and_quant,
    bench_integration
);
criterion_main!(benches);
