//! **Ablation: refinement scores.** Algorithm 1 averages three scores —
//! semantic similarity, word-level Jaccard, character-level gestalt —
//! when picking the best candidate entity per noun phrase. This bench
//! drops each component (and each pair) and re-measures, validating the
//! design choice of combining semantic and syntactic evidence.
//!
//! Usage: `abl_scores` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{disease_dataset, run_system, scale_from_env, seed_from_env, System};
use thor_bench::TextTable;
use thor_core::{ScoreWeights, ThorConfig};

fn main() {
    let scale = scale_from_env();
    let dataset = disease_dataset(seed_from_env(), scale);
    println!("[Ablation] refinement score components, Disease A-Z, tau=0.7, scale={scale}\n");

    let variants: Vec<(&str, ScoreWeights)> = vec![
        (
            "semantic+word+char (paper)",
            ScoreWeights {
                semantic: 1.0,
                word: 1.0,
                char: 1.0,
            },
        ),
        (
            "semantic only",
            ScoreWeights {
                semantic: 1.0,
                word: 0.0,
                char: 0.0,
            },
        ),
        (
            "word only",
            ScoreWeights {
                semantic: 0.0,
                word: 1.0,
                char: 0.0,
            },
        ),
        (
            "char only",
            ScoreWeights {
                semantic: 0.0,
                word: 0.0,
                char: 1.0,
            },
        ),
        (
            "no semantic",
            ScoreWeights {
                semantic: 0.0,
                word: 1.0,
                char: 1.0,
            },
        ),
        (
            "no word",
            ScoreWeights {
                semantic: 1.0,
                word: 0.0,
                char: 1.0,
            },
        ),
        (
            "no char",
            ScoreWeights {
                semantic: 1.0,
                word: 1.0,
                char: 0.0,
            },
        ),
    ];

    let mut table = TextTable::new(&["Scoring", "P", "R", "F1"]);
    for (name, weights) in variants {
        let mut config = ThorConfig::with_tau(0.7);
        config.weights = weights;
        let out = run_system(
            &System::ThorWith(Box::new(config), format!("THOR [{name}]")),
            &dataset,
        );
        table.row(vec![
            name.to_string(),
            format!("{:.3}", out.report.precision),
            format!("{:.3}", out.report.recall),
            format!("{:.3}", out.report.f1),
        ]);
    }
    println!("{}", table.render());
    println!("Reading: differences are small because concept assignment is already decided");
    println!("by the matcher's cluster ranking — the refinement scores only arbitrate");
    println!("between candidate subphrases of one noun phrase. The combined score is");
    println!("within noise of the best single score while being robust to each component's");
    println!("failure mode (semantic: out-of-vocabulary heads; word/char: cross-concept");
    println!("surface collisions such as the paper's 'blood' vs 'blood clot').");
}
