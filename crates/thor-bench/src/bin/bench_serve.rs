//! **BENCH_serve** — load benchmark for the HTTP serving front end.
//!
//! Starts a real `thor-serve` server over a frozen engine and drives it
//! with two generators:
//!
//! - **closed-loop**: K keep-alive clients, each issuing its next
//!   request the moment the previous response lands — measures the
//!   saturated throughput of the accept loop + admission queue +
//!   engine.
//! - **open-loop**: requests arrive on a fixed schedule regardless of
//!   completions (each on its own connection) — measures latency under
//!   an offered rate, the way real callers experience the server.
//!
//! Before any timing, one response is checked byte-for-byte against the
//! batch `enrich` output — the numbers only matter because the serve
//! path is a drop-in for the CLI. Emits `BENCH_serve.json` to the
//! working directory and prints the same document to stdout.
//!
//! Usage: `bench_serve [--smoke]` (env: `THOR_SCALE`, `THOR_SEED`).
//! `--smoke` pins a tiny scale and short run for CI; the full mode
//! additionally asserts a sustained docs/sec floor at a p99 SLO.

use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use thor_bench::harness::{disease_dataset, prepare_engine, scale_from_env, seed_from_env};
use thor_core::Document;
use thor_datagen::Split;
use thor_obs::{Histogram, Json};
use thor_serve::http::{request, send_request};
use thor_serve::{RequestReader, Response, ServeOptions, Server};

/// Full-mode gates: the serve path must sustain this many docs/sec in
/// the closed loop while its p99 stays under the SLO. Both are set far
/// below what the engine does on this hardware (hundreds to thousands
/// of docs/sec) so only a real regression trips them.
const FLOOR_DOCS_PER_SEC: f64 = 25.0;
const SLO_P99_MS: f64 = 2_000.0;

fn batch_json(docs: &[Document]) -> Vec<u8> {
    let documents = docs
        .iter()
        .map(|d| {
            Json::Object(BTreeMap::from([
                ("id".to_string(), Json::Str(d.id.clone())),
                ("text".to_string(), Json::Str(d.text.clone())),
            ]))
        })
        .collect();
    Json::Object(BTreeMap::from([(
        "documents".to_string(),
        Json::Array(documents),
    )]))
    .render()
    .into_bytes()
}

fn quantiles_ms(h: &Histogram) -> (f64, f64, f64) {
    let ms = |q| h.quantile(q) as f64 / 1e3;
    (ms(0.50), ms(0.95), ms(0.99))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, clients, reqs_per_client) = if smoke {
        (0.08, 2usize, 5usize)
    } else {
        (scale_from_env(), 8usize, 40usize)
    };
    let dataset = disease_dataset(seed_from_env(), scale);
    let engine = prepare_engine(&dataset, 0.6).with_threads(4);

    // One request batch, reused for every client: the first docs of the
    // test split.
    let docs: Vec<Document> = dataset.documents(Split::Test).into_iter().take(8).collect();
    assert!(!docs.is_empty(), "dataset produced no test documents");
    let body = Arc::new(batch_json(&docs));
    let expected = thor_data::to_csv(&engine.enrich(&docs).table);

    let opts = ServeOptions {
        queue: clients * 2,
        ..ServeOptions::default()
    };
    let server = Server::bind(engine, "127.0.0.1:0", opts).expect("bind server");
    let addr = server.local_addr();
    let handle = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run().expect("serve loop"));

    // Correctness before speed: the serve path must answer exactly the
    // batch bytes.
    let probe = request(&addr, "POST", "/enrich", &body).expect("probe request");
    assert_eq!(probe.status, 200, "probe failed: {}", probe.body_str());
    assert_eq!(
        probe.body_str(),
        expected,
        "serve output diverged from batch enrich"
    );

    // ---- closed loop: K keep-alive clients at full tilt. ----
    let closed_hist = Arc::new(Histogram::new());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            let body = Arc::clone(&body);
            let hist = Arc::clone(&closed_hist);
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let _ = stream.set_nodelay(true);
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .expect("read timeout");
                let mut reader = RequestReader::new(stream.try_clone().expect("clone stream"));
                for _ in 0..reqs_per_client {
                    let start = Instant::now();
                    send_request(&mut stream, "POST", "/enrich", &body).expect("send");
                    let resp = Response::read_from(&mut reader).expect("response");
                    hist.record(start.elapsed().as_micros() as u64);
                    assert_eq!(resp.status, 200, "closed-loop: {}", resp.body_str());
                }
            });
        }
    });
    let closed_wall = t0.elapsed().as_secs_f64();
    let closed_requests = (clients * reqs_per_client) as f64;
    let closed_rps = closed_requests / closed_wall;
    let closed_docs_per_sec = closed_rps * docs.len() as f64;
    let (c_p50, c_p95, c_p99) = quantiles_ms(&closed_hist);

    // ---- open loop: fixed arrival schedule, one connection each. ----
    // Offer roughly half the measured closed-loop rate so the server is
    // loaded but not saturated — the regime where latency is the story.
    let offered_rps = (closed_rps * 0.5).clamp(2.0, 200.0);
    let open_requests = if smoke {
        10
    } else {
        (offered_rps * 3.0).ceil() as usize
    };
    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let open_hist = Arc::new(Histogram::new());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..open_requests {
            // Arrivals are scheduled against the clock, not against
            // completions — a slow response does not delay the next
            // arrival.
            let due = t0 + interval * i as u32;
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let body = Arc::clone(&body);
            let hist = Arc::clone(&open_hist);
            scope.spawn(move || {
                let start = Instant::now();
                let resp = request(&addr, "POST", "/enrich", &body).expect("open-loop request");
                hist.record(start.elapsed().as_micros() as u64);
                assert_eq!(resp.status, 200, "open-loop: {}", resp.body_str());
            });
        }
    });
    let open_wall = t0.elapsed().as_secs_f64();
    let achieved_rps = open_requests as f64 / open_wall;
    let (o_p50, o_p95, o_p99) = quantiles_ms(&open_hist);

    handle.shutdown();
    server_thread.join().expect("server thread");

    let mut doc = BTreeMap::new();
    doc.insert("bench".into(), Json::Str("serve".into()));
    doc.insert(
        "mode".into(),
        Json::Str(if smoke { "smoke" } else { "full" }.into()),
    );
    doc.insert("scale".into(), Json::Float(scale));
    doc.insert("clients".into(), Json::UInt(clients as u64));
    doc.insert("batch_docs".into(), Json::UInt(docs.len() as u64));
    doc.insert("closed_requests".into(), Json::UInt(closed_requests as u64));
    doc.insert("closed_rps".into(), Json::Float(closed_rps));
    doc.insert(
        "closed_docs_per_sec".into(),
        Json::Float(closed_docs_per_sec),
    );
    doc.insert("closed_p50_ms".into(), Json::Float(c_p50));
    doc.insert("closed_p95_ms".into(), Json::Float(c_p95));
    doc.insert("closed_p99_ms".into(), Json::Float(c_p99));
    doc.insert("open_requests".into(), Json::UInt(open_requests as u64));
    doc.insert("open_offered_rps".into(), Json::Float(offered_rps));
    doc.insert("open_achieved_rps".into(), Json::Float(achieved_rps));
    doc.insert("open_p50_ms".into(), Json::Float(o_p50));
    doc.insert("open_p95_ms".into(), Json::Float(o_p95));
    doc.insert("open_p99_ms".into(), Json::Float(o_p99));
    doc.insert("floor_docs_per_sec".into(), Json::Float(FLOOR_DOCS_PER_SEC));
    doc.insert("slo_p99_ms".into(), Json::Float(SLO_P99_MS));
    let rendered = Json::Object(doc).render();
    std::fs::write("BENCH_serve.json", format!("{rendered}\n")).expect("write BENCH_serve.json");
    println!("{rendered}");
    println!(
        "closed {closed_docs_per_sec:.0} docs/s ({closed_rps:.1} req/s, p99 {c_p99:.1}ms) | \
         open {achieved_rps:.1}/{offered_rps:.1} req/s (p99 {o_p99:.1}ms)"
    );
    if !smoke {
        assert!(
            closed_docs_per_sec >= FLOOR_DOCS_PER_SEC,
            "closed-loop throughput {closed_docs_per_sec:.1} docs/s below {FLOOR_DOCS_PER_SEC} floor"
        );
        assert!(
            c_p99 <= SLO_P99_MS,
            "closed-loop p99 {c_p99:.1}ms over the {SLO_P99_MS}ms SLO"
        );
    }
}
