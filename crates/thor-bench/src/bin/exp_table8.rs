//! **Table VIII** — per-concept *sensitivity* (recognized gold entities,
//! counting partial hits) for the six compared systems on Disease A–Z.
//!
//! Usage: `exp_table8` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{disease_dataset, run_system, scale_from_env, seed_from_env, System};
use thor_bench::TextTable;

fn main() {
    let scale = scale_from_env();
    let dataset = disease_dataset(seed_from_env(), scale);
    println!("[Table VIII reproduction] per-concept sensitivity, Disease A-Z, scale={scale}\n");

    let systems = [
        System::Baseline,
        System::UniNer,
        System::Gpt4,
        System::LmHuman(usize::MAX),
        System::LmSd,
        System::Thor(0.8),
    ];
    let outcomes: Vec<_> = systems.iter().map(|s| run_system(s, &dataset)).collect();

    let mut header: Vec<&str> = vec!["Concept"];
    let names: Vec<String> = outcomes.iter().map(|o| o.system.clone()).collect();
    header.extend(names.iter().map(String::as_str));
    let mut table = TextTable::new(&header);

    let concepts: Vec<String> = dataset
        .schema
        .concepts()
        .iter()
        .map(|c| c.name().to_lowercase())
        .collect();
    for concept in &concepts {
        let mut row = vec![concept.clone()];
        for o in &outcomes {
            let s = o
                .report
                .per_concept
                .iter()
                .find(|c| &c.concept == concept)
                .map(|c| c.sensitivity)
                .unwrap_or(0.0);
            row.push(format!("{:.2}%", s * 100.0));
        }
        table.row(row);
    }
    let mut overall = vec!["Overall".to_string()];
    for o in &outcomes {
        overall.push(format!("{:.2}%", o.report.sensitivity * 100.0));
    }
    table.row(overall);
    println!("{}", table.render());

    println!("Paper reference (Table VIII, overall sensitivity): Baseline 26.46%,");
    println!("UniNER 42.80%, GPT-4 49.01%, LM-Human 62.24%, LM-SD 65.53%, THOR 65.89%.");
    println!("Shape: THOR has the top overall sensitivity and the most balanced profile;");
    println!("UniNER scores 0% on 'Composition'.");
}
