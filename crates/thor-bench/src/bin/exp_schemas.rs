//! **Supplementary** — every system scored under all four SemEval-2013
//! schemas (strict / exact / partial / ent_type, à la nervaluate) on the
//! Disease A–Z test split. Separates boundary errors from labeling
//! errors: a system whose `ent_type` far exceeds its `strict` finds the
//! right entities with sloppy boundaries; the reverse gap indicates
//! labeling confusion.
//!
//! Usage: `exp_schemas` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{
    disease_dataset, gold_annotations, run_system, scale_from_env, seed_from_env, to_annotations,
    System,
};
use thor_bench::TextTable;
use thor_datagen::Split;
use thor_eval::schema_scores;

fn main() {
    let scale = scale_from_env();
    let dataset = disease_dataset(seed_from_env(), scale);
    let gold = gold_annotations(&dataset, Split::Test);
    println!("[Supplementary] four-schema F1, Disease A-Z, scale={scale}\n");

    let systems = vec![
        System::Thor(0.7),
        System::Thor(0.8),
        System::Baseline,
        System::LmSd,
        System::Gpt4,
        System::UniNer,
        System::LmHuman(usize::MAX),
    ];

    let mut table = TextTable::new(&["Model", "strict", "exact", "partial", "ent_type"]);
    for system in &systems {
        let out = run_system(system, &dataset);
        let s = schema_scores(&to_annotations(&out.predictions), &gold);
        table.row(vec![
            out.system,
            format!("{:.3}", s.strict.f1),
            format!("{:.3}", s.exact.f1),
            format!("{:.3}", s.partial.f1),
            format!("{:.3}", s.ent_type.f1),
        ]);
    }
    println!("{}", table.render());
    println!("Reading: strict ≤ exact ≤ partial always; ent_type − strict is the");
    println!("boundary-sloppiness gap, exact − strict the labeling-confusion gap.");
}
