//! **Ablation: noun-phrase chunking.** THOR extracts candidates from
//! dependency-parsed noun phrases; the alternative is naive token
//! n-grams. This bench measures the precision/time value of the
//! linguistic substrate.
//!
//! Usage: `abl_np` (env: `THOR_SCALE`, `THOR_SEED`).

use std::time::Instant;

use thor_bench::harness::{disease_dataset, run_system, scale_from_env, seed_from_env, System};
use thor_bench::TextTable;
use thor_core::ThorConfig;

fn main() {
    let scale = scale_from_env();
    let dataset = disease_dataset(seed_from_env(), scale);
    println!("[Ablation] NP chunking vs naive n-grams, Disease A-Z, scale={scale}\n");

    let mut table = TextTable::new(&["tau", "candidates", "P", "R", "F1", "pred", "wall"]);
    for tau10 in [6usize, 8] {
        let tau = tau10 as f64 / 10.0;
        for (label, np) in [("noun phrases (paper)", true), ("n-grams", false)] {
            let mut config = ThorConfig::with_tau(tau);
            config.np_chunking = np;
            let t0 = Instant::now();
            let out = run_system(
                &System::ThorWith(Box::new(config), format!("THOR tau={tau} {label}")),
                &dataset,
            );
            table.row(vec![
                format!("{tau:.1}"),
                label.to_string(),
                format!("{:.3}", out.report.precision),
                format!("{:.3}", out.report.recall),
                format!("{:.3}", out.report.f1),
                out.report.predicted_total.to_string(),
                format!("{:.0}ms", t0.elapsed().as_secs_f64() * 1e3),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Expected shape: n-gram candidate generation costs more time (more phrases to");
    println!("match) and loses precision (candidates that cross phrase boundaries), while");
    println!("recall changes little — the NP chunker already covers the entity carriers.");
}
