//! **BENCH_engine** — build/serve split benchmark: one
//! [`thor_core::PreparedEngine`] build amortized across the paper's τ
//! sweep, against the old per-τ full fine-tune rebuild.
//!
//! Emits `BENCH_engine.json` (per-τ rebuild time, one-build + per-τ
//! derivation time, sweep speedup, artifact round-trip numbers) to the
//! working directory and prints the same document to stdout. Before any
//! timing, every sweep point is checked for *exact* equality between
//! the derived engine and a freshly built one, and the saved-then-loaded
//! engine is checked against the in-memory build — the speedup claim is
//! only meaningful because derivation is a drop-in replacement.
//!
//! Usage: `bench_engine [--smoke]` (env: `THOR_SCALE`, `THOR_SEED`).
//! `--smoke` pins a small scale and few repetitions so CI can afford to
//! run it on every push; the full mode additionally enforces the ≥3×
//! sweep-preparation speedup floor (smoke timings are too noisy to gate
//! on).

use std::collections::BTreeMap;
use std::time::Instant;

use thor_bench::harness::{disease_dataset, scale_from_env, seed_from_env, tau_sweep};
use thor_core::{PreparedEngine, Thor, ThorConfig};
use thor_datagen::Split;
use thor_obs::Json;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, reps) = if smoke {
        (0.1, 2)
    } else {
        (scale_from_env(), 5)
    };
    let dataset = disease_dataset(seed_from_env(), scale);
    let table = dataset.enrichment_table();
    let docs = dataset.documents(Split::Test);
    let taus: Vec<f64> = tau_sweep().collect();
    let thor_at = |tau: f64| Thor::new(dataset.store.clone(), ThorConfig::with_tau(tau));

    // Correctness before speed: every derived sweep point must extract
    // exactly what a fresh per-τ build extracts...
    let engine = thor_at(taus[0]).prepare(&table);
    for &tau in &taus {
        let derived = engine.with_tau(tau).extract(&docs).0;
        let fresh = thor_at(tau).prepare(&table).extract(&docs).0;
        assert_eq!(derived, fresh, "with_tau({tau}) diverged from fresh build");
    }
    // ...and the persisted artifact must reproduce the in-memory output.
    let artifact = std::env::temp_dir().join(format!("bench-engine-{}.thor", std::process::id()));
    engine.save(&artifact).expect("save engine artifact");
    let artifact_bytes = std::fs::metadata(&artifact).map(|m| m.len()).unwrap_or(0);
    let t0 = Instant::now();
    let loaded = PreparedEngine::load(&artifact).expect("load engine artifact");
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        loaded.extract(&docs).0,
        engine.extract(&docs).0,
        "loaded engine diverged from in-memory build"
    );
    std::fs::remove_file(&artifact).ok();

    // Old shape: a full Preparation pass per sweep point.
    let t0 = Instant::now();
    for _ in 0..reps {
        for &tau in &taus {
            std::hint::black_box(thor_at(tau).prepare(&table));
        }
    }
    let rebuild_s = t0.elapsed().as_secs_f64() / reps as f64;

    // New shape: one Preparation pass at the lowest τ, then with_tau
    // derivations (filtering the frozen candidate lists) per point.
    let t0 = Instant::now();
    for _ in 0..reps {
        let base = thor_at(taus[0]).prepare(&table);
        for &tau in &taus {
            std::hint::black_box(base.with_tau(tau));
        }
    }
    let reuse_s = t0.elapsed().as_secs_f64() / reps as f64;
    let speedup = rebuild_s / reuse_s;

    // Amortized end-to-end sweep (derive + extract) for context.
    let t0 = Instant::now();
    for &tau in &taus {
        std::hint::black_box(engine.with_tau(tau).extract(&docs));
    }
    let sweep_extract_s = t0.elapsed().as_secs_f64();

    let mut doc = BTreeMap::new();
    doc.insert("bench".into(), Json::Str("engine".into()));
    doc.insert(
        "mode".into(),
        Json::Str(if smoke { "smoke" } else { "full" }.into()),
    );
    doc.insert("scale".into(), Json::Float(scale));
    doc.insert("reps".into(), Json::UInt(reps as u64));
    doc.insert("sweep_points".into(), Json::UInt(taus.len() as u64));
    doc.insert("docs".into(), Json::UInt(docs.len() as u64));
    doc.insert(
        "rebuild_sweep_prepare_ms".into(),
        Json::Float(rebuild_s * 1e3),
    );
    doc.insert("reuse_sweep_prepare_ms".into(), Json::Float(reuse_s * 1e3));
    doc.insert("sweep_speedup".into(), Json::Float(speedup));
    doc.insert(
        "sweep_extract_ms".into(),
        Json::Float(sweep_extract_s * 1e3),
    );
    doc.insert("artifact_bytes".into(), Json::UInt(artifact_bytes));
    doc.insert("artifact_load_ms".into(), Json::Float(load_ms));
    let rendered = Json::Object(doc).render();
    std::fs::write("BENCH_engine.json", format!("{rendered}\n")).expect("write BENCH_engine.json");
    println!("{rendered}");
    println!(
        "per-tau rebuild {:.1}ms | one-build + derive {:.1}ms | sweep speedup {speedup:.1}x | \
         artifact {artifact_bytes}B loads in {load_ms:.1}ms",
        rebuild_s * 1e3,
        reuse_s * 1e3
    );
    if !smoke {
        assert!(
            speedup >= 3.0,
            "expected >=3x sweep-preparation speedup from engine reuse, got {speedup:.2}x"
        );
    }
}
