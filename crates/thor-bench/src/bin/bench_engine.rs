//! **BENCH_engine** — build/serve split benchmark: one
//! [`thor_core::PreparedEngine`] build amortized across the paper's τ
//! sweep, against the old per-τ full fine-tune rebuild.
//!
//! Emits `BENCH_engine.json` (per-τ rebuild time, one-build + per-τ
//! derivation time, sweep speedup, artifact round-trip numbers, and the
//! incremental-delta timings: applying a ~5% seed addition via
//! `apply_delta` vs rebuilding the engine from the evolved table) to
//! the working directory and prints the same document to stdout. Before any
//! timing, every sweep point is checked for *exact* equality between
//! the derived engine and a freshly built one, and the saved-then-loaded
//! engine is checked against the in-memory build — the speedup claim is
//! only meaningful because derivation is a drop-in replacement.
//!
//! Usage: `bench_engine [--smoke]` (env: `THOR_SCALE`, `THOR_SEED`).
//! `--smoke` pins a small scale and few repetitions so CI can afford to
//! run it on every push; the full mode additionally enforces the ≥3×
//! sweep-preparation speedup floor (smoke timings are too noisy to gate
//! on).

use std::collections::BTreeMap;
use std::time::Instant;

use thor_bench::harness::{disease_dataset, scale_from_env, seed_from_env, tau_sweep};
use thor_core::{EngineDelta, MapMode, PreparedEngine, SeedDelta, Thor, ThorConfig};
use thor_data::Table;
use thor_datagen::Split;
use thor_embed::Vector;
use thor_obs::Json;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, reps) = if smoke {
        (0.1, 2)
    } else {
        (scale_from_env(), 5)
    };
    let dataset = disease_dataset(seed_from_env(), scale);
    let table = dataset.enrichment_table();
    let docs = dataset.documents(Split::Test);
    let taus: Vec<f64> = tau_sweep().collect();
    let thor_at = |tau: f64| Thor::new(dataset.store.clone(), ThorConfig::with_tau(tau));

    // Correctness before speed: every derived sweep point must extract
    // exactly what a fresh per-τ build extracts...
    let engine = thor_at(taus[0]).prepare(&table);
    for &tau in &taus {
        let derived = engine.with_tau(tau).extract(&docs).0;
        let fresh = thor_at(tau).prepare(&table).extract(&docs).0;
        assert_eq!(derived, fresh, "with_tau({tau}) diverged from fresh build");
    }
    // ...and the persisted artifact must reproduce the in-memory output.
    let artifact = std::env::temp_dir().join(format!("bench-engine-{}.thor", std::process::id()));
    engine.save(&artifact).expect("save engine artifact");
    let artifact_bytes = std::fs::metadata(&artifact).map(|m| m.len()).unwrap_or(0);
    let t0 = Instant::now();
    let loaded = PreparedEngine::load(&artifact).expect("load engine artifact");
    let load_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        loaded.extract(&docs).0,
        engine.extract(&docs).0,
        "loaded engine diverged from in-memory build"
    );
    std::fs::remove_file(&artifact).ok();

    // --- Cold-start size sweep: owned vs mapped -----------------------
    //
    // The zero-copy claim: a mapped load (`--engine-mmap on`) borrows
    // the O(vocabulary) sections in place, so its cold-start cost is
    // independent of vocabulary size, while an owned load pays the full
    // checksum + store-digest pass. Each sweep point pads the store
    // with deterministic pseudo-random vectors, rebuilds and saves the
    // engine, and times both load modes (best of 3; the file is in the
    // page cache, so this isolates parse/verify/copy cost — exactly the
    // part the mmap layout eliminates).
    let pad_sizes: &[usize] = if smoke {
        &[0, 2_000]
    } else {
        &[0, 20_000, 80_000]
    };
    let dim = dataset.store.dim();
    let mut coldstart = Vec::new();
    let mut mapped_ms_by_size = Vec::new();
    for &pad in pad_sizes {
        let mut store = dataset.store.clone();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..pad {
            let mut row = Vec::with_capacity(dim);
            for _ in 0..dim {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                row.push(((x >> 40) as f32 / (1u32 << 24) as f32) - 0.5);
            }
            store.insert(&format!("pad{i:07}"), Vector(row));
        }
        let vocab = store.len();
        let engine = Thor::new(store, ThorConfig::with_tau(taus[0])).prepare(&table);
        let path = std::env::temp_dir().join(format!(
            "bench-engine-cold-{pad}-{}.thor",
            std::process::id()
        ));
        engine.save(&path).expect("save sweep artifact");
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let best = |mode: MapMode| {
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    std::hint::black_box(
                        PreparedEngine::load_with(&path, mode).expect("sweep load"),
                    );
                    t0.elapsed().as_secs_f64() * 1e3
                })
                .fold(f64::INFINITY, f64::min)
        };
        let owned_ms = best(MapMode::Owned);
        let mapped_ms = best(MapMode::Mapped);
        std::fs::remove_file(&path).ok();
        mapped_ms_by_size.push(mapped_ms);
        let mut point = BTreeMap::new();
        point.insert("vocab_words".into(), Json::UInt(vocab as u64));
        point.insert("artifact_bytes".into(), Json::UInt(bytes));
        point.insert("owned_load_ms".into(), Json::Float(owned_ms));
        point.insert("mapped_load_ms".into(), Json::Float(mapped_ms));
        coldstart.push(Json::Object(point));
        println!(
            "coldstart vocab {vocab:>6} ({bytes:>9}B): owned {owned_ms:>7.2}ms  \
             mapped {mapped_ms:>6.2}ms"
        );
    }

    // --- Incremental delta apply vs full rebuild ----------------------
    //
    // A ~5% seed addition, drawn from the gold instances the dataset
    // holds out of the enrichment table (real values, so the touched
    // concepts genuinely re-expand). Applying it as a delta must beat
    // rebuilding the engine from the evolved table — the
    // incremental-prepare claim.
    let gold = dataset.gold_test_table();
    let target = ((table.instance_count() as f64) * 0.05).ceil() as usize;
    let mut additions = Table::new(table.schema().clone());
    let mut evolved_table = table.clone();
    let mut taken = 0usize;
    'collect: for (ri, row) in gold.rows().iter().enumerate() {
        let subject = gold.subject_of(ri);
        for (ci, concept) in gold.schema().concepts().iter().enumerate() {
            if ci == gold.schema().subject_index()
                || table.schema().index_of(concept.name()).is_none()
            {
                continue;
            }
            for value in row.cell(ci).values() {
                let held_out = table
                    .get_row(subject)
                    .and_then(|r| table.schema().index_of(concept.name()).map(|i| r.cell(i)))
                    .is_none_or(|cell| !cell.contains(value));
                if held_out {
                    additions.fill_slot(subject, concept.name(), value);
                    evolved_table.row_for_subject(subject);
                    evolved_table.fill_slot(subject, concept.name(), value);
                    taken += 1;
                    if taken >= target {
                        break 'collect;
                    }
                }
            }
        }
    }
    assert!(taken > 0, "dataset held out no instances to use as a delta");
    let delta = EngineDelta::Seeds(SeedDelta::new(additions));

    // Drop-in first: the applied delta equals the fresh rebuild exactly.
    let applied = engine.apply_delta(&delta).expect("delta applies");
    let fresh = thor_at(taus[0]).prepare(&evolved_table);
    assert_eq!(
        applied.fingerprint(),
        fresh.fingerprint(),
        "delta-applied engine fingerprint diverged from fresh build"
    );
    assert_eq!(
        applied.extract(&docs).0,
        fresh.extract(&docs).0,
        "delta-applied engine extraction diverged from fresh build"
    );

    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(engine.apply_delta(&delta).expect("delta applies"));
    }
    let delta_apply_s = t0.elapsed().as_secs_f64() / reps as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(thor_at(taus[0]).prepare(&evolved_table));
    }
    let delta_rebuild_s = t0.elapsed().as_secs_f64() / reps as f64;
    let delta_speedup = delta_rebuild_s / delta_apply_s;
    println!(
        "delta: {taken} seed instance(s) applied in {:.1}ms vs {:.1}ms full rebuild \
         ({delta_speedup:.1}x)",
        delta_apply_s * 1e3,
        delta_rebuild_s * 1e3
    );

    // Old shape: a full Preparation pass per sweep point.
    let t0 = Instant::now();
    for _ in 0..reps {
        for &tau in &taus {
            std::hint::black_box(thor_at(tau).prepare(&table));
        }
    }
    let rebuild_s = t0.elapsed().as_secs_f64() / reps as f64;

    // New shape: one Preparation pass at the lowest τ, then with_tau
    // derivations (filtering the frozen candidate lists) per point.
    let t0 = Instant::now();
    for _ in 0..reps {
        let base = thor_at(taus[0]).prepare(&table);
        for &tau in &taus {
            std::hint::black_box(base.with_tau(tau));
        }
    }
    let reuse_s = t0.elapsed().as_secs_f64() / reps as f64;
    let speedup = rebuild_s / reuse_s;

    // Amortized end-to-end sweep (derive + extract) for context.
    let t0 = Instant::now();
    for &tau in &taus {
        std::hint::black_box(engine.with_tau(tau).extract(&docs));
    }
    let sweep_extract_s = t0.elapsed().as_secs_f64();

    let mut doc = BTreeMap::new();
    doc.insert("bench".into(), Json::Str("engine".into()));
    doc.insert(
        "mode".into(),
        Json::Str(if smoke { "smoke" } else { "full" }.into()),
    );
    doc.insert("scale".into(), Json::Float(scale));
    doc.insert("reps".into(), Json::UInt(reps as u64));
    doc.insert("sweep_points".into(), Json::UInt(taus.len() as u64));
    doc.insert("docs".into(), Json::UInt(docs.len() as u64));
    doc.insert(
        "rebuild_sweep_prepare_ms".into(),
        Json::Float(rebuild_s * 1e3),
    );
    doc.insert("reuse_sweep_prepare_ms".into(), Json::Float(reuse_s * 1e3));
    doc.insert("sweep_speedup".into(), Json::Float(speedup));
    doc.insert(
        "sweep_extract_ms".into(),
        Json::Float(sweep_extract_s * 1e3),
    );
    doc.insert("artifact_bytes".into(), Json::UInt(artifact_bytes));
    doc.insert("artifact_load_ms".into(), Json::Float(load_ms));
    doc.insert("delta_seed_instances".into(), Json::UInt(taken as u64));
    doc.insert("delta_apply_ms".into(), Json::Float(delta_apply_s * 1e3));
    doc.insert(
        "delta_rebuild_ms".into(),
        Json::Float(delta_rebuild_s * 1e3),
    );
    doc.insert("delta_speedup".into(), Json::Float(delta_speedup));
    doc.insert("coldstart".into(), Json::Array(coldstart));
    let rendered = Json::Object(doc).render();
    std::fs::write("BENCH_engine.json", format!("{rendered}\n")).expect("write BENCH_engine.json");
    println!("{rendered}");
    println!(
        "per-tau rebuild {:.1}ms | one-build + derive {:.1}ms | sweep speedup {speedup:.1}x | \
         artifact {artifact_bytes}B loads in {load_ms:.1}ms",
        rebuild_s * 1e3,
        reuse_s * 1e3
    );
    if !smoke {
        assert!(
            speedup >= 3.0,
            "expected >=3x sweep-preparation speedup from engine reuse, got {speedup:.2}x"
        );
        assert!(
            delta_speedup >= 3.0,
            "expected >=3x delta-apply speedup over a full rebuild for a ~5% seed \
             addition, got {delta_speedup:.2}x"
        );
        // The zero-copy contract: mapped cold-start stays flat while
        // the vocabulary grows 40x (generous noise allowance — owned
        // load grows linearly and is the contrast, not the gate).
        let (first, last) = (mapped_ms_by_size[0], *mapped_ms_by_size.last().unwrap());
        assert!(
            last <= 3.0 * first + 5.0,
            "mapped cold-start not flat: {first:.2}ms at smallest vs {last:.2}ms at largest"
        );
    }
}
