//! **Extension: the paper's future work.** "For our future work, we will
//! explore means to reduce the number of false positives in our
//! approach, specially for high recalls, by further exploring the data
//! integration context and leverage on contextual embeddings."
//!
//! This bench evaluates the implemented contextual gate
//! ([`thor_core::ThorConfig::context_gate`]): a candidate survives only
//! when the rest of its sentence is compatible with the assigned
//! concept. Measured at the recall-oriented end of the τ dial, where the
//! paper says false positives hurt most.
//!
//! Usage: `abl_context` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{disease_dataset, run_system, scale_from_env, seed_from_env, System};
use thor_bench::TextTable;
use thor_core::ThorConfig;

fn main() {
    let scale = scale_from_env();
    let dataset = disease_dataset(seed_from_env(), scale);
    println!("[Extension] contextual false-positive gate, Disease A-Z, scale={scale}\n");

    let mut table = TextTable::new(&["tau", "gate", "P", "R", "F1", "pred"]);
    for tau10 in [5usize, 6, 7] {
        let tau = tau10 as f64 / 10.0;
        for gate in [None, Some(0.1), Some(0.2), Some(0.3)] {
            let mut config = ThorConfig::with_tau(tau);
            config.context_gate = gate;
            let label = gate.map_or("off".to_string(), |g| format!("{g:.1}"));
            let out = run_system(
                &System::ThorWith(Box::new(config), format!("THOR tau={tau} gate={label}")),
                &dataset,
            );
            table.row(vec![
                format!("{tau:.1}"),
                label,
                format!("{:.3}", out.report.precision),
                format!("{:.3}", out.report.recall),
                format!("{:.3}", out.report.f1),
                out.report.predicted_total.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Expected shape: a moderate gate trims spurious predictions (precision up)");
    println!("at a small recall cost, with the best trade-off at the recall-oriented");
    println!("low-tau settings the paper's future-work remark targets.");
}
