//! **BENCH_matcher** — candidate-generation engine benchmark: the
//! structure-of-arrays index + phrase cache path (`match_phrase`)
//! against the retained brute-force reference
//! (`match_phrase_reference`) on Disease A–Z sentences.
//!
//! Emits `BENCH_matcher.json` (phrases/sec for both paths, index build
//! time, cache hit rate, speedup) to the working directory and prints
//! the same document to stdout. Before timing, every phrase is checked
//! for *exact* equality between the two paths — the speedup claim is
//! only meaningful because the engine is a drop-in replacement.
//!
//! Usage: `bench_matcher [--smoke]` (env: `THOR_SCALE`, `THOR_SEED`).
//! `--smoke` pins a small scale and few repetitions so CI can afford to
//! run it on every push; the full mode additionally enforces the ≥3×
//! speedup floor (smoke timings are too noisy to gate on).
//!
//! The document also carries a **vocabulary sweep** (`vocab_sweep`):
//! synthetic clustered spaces at 1×/4×/16× words-per-concept, timing
//! bound-pruned exact candidate generation (`--prune exact`) against
//! the exhaustive scan (`--prune off`) with the phrase cache disabled.
//! Exhaustive throughput decays roughly linearly with index rows;
//! pruned throughput flattens — full mode asserts the ≥3× pruned floor
//! at the largest size and that pruned decays strictly slower.

use std::collections::BTreeMap;
use std::time::Instant;

use thor_bench::harness::{disease_dataset, scale_from_env, seed_from_env};
use thor_core::{Thor, ThorConfig};
use thor_datagen::Split;
use thor_embed::SemanticSpaceBuilder;
use thor_match::{MatcherConfig, PruneMode, SimilarityMatcher};
use thor_obs::{Json, PipelineMetrics};

/// Mid-sweep τ: representative clusters are at their paper-default size.
const TAU: f64 = 0.7;

/// Concept count held fixed across the vocabulary sweep — the sweep
/// scales *words per concept*, which is what grows the row count the
/// exhaustive scan pays for while the concept-bound walk does not.
const SWEEP_CONCEPTS: usize = 16;

/// Vocabulary multipliers: 1×/4×/16× words per concept.
const SWEEP_MULTS: [usize; 3] = [1, 4, 16];

/// One measured point of the vocabulary sweep.
struct SweepPoint {
    mult: usize,
    vocab_words: usize,
    index_rows: usize,
    pruned_rate: f64,
    exhaustive_rate: f64,
}

/// Build the sweep matcher for a vocabulary multiplier: 16 tight
/// synthetic concepts (`spread(0.05)` keeps intra-concept radii small,
/// the regime the cluster bounds are designed for), `16 × mult` words
/// each, with the first 8 words of each concept as its seed instances.
/// The phrase cache is disabled so the timing isolates candidate
/// generation itself rather than cache hits.
fn sweep_matcher(mult: usize) -> SimilarityMatcher {
    let words_per = 16 * mult;
    let mut builder = SemanticSpaceBuilder::new(32, 0x7468_6f72 + mult as u64).spread(0.05);
    for ci in 0..SWEEP_CONCEPTS {
        let topic = format!("t{ci:02}");
        builder = builder.topic(&topic);
        for wi in 0..words_per {
            builder = builder.word(&topic, &format!("t{ci:02}w{wi:03}"));
        }
    }
    let store = builder.build().into_store();
    let concepts: Vec<(String, Vec<String>)> = (0..SWEEP_CONCEPTS)
        .map(|ci| {
            (
                format!("Concept{ci:02}"),
                (0..8).map(|wi| format!("t{ci:02}w{wi:03}")).collect(),
            )
        })
        .collect();
    let config = MatcherConfig {
        tau: TAU,
        cache_capacity: 0,
        ..MatcherConfig::default()
    };
    SimilarityMatcher::fine_tune(&concepts, store, config)
}

/// Time `match_phrase` over the query set, returning phrases/sec.
fn time_phrases(matcher: &SimilarityMatcher, queries: &[String], reps: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        for q in queries {
            std::hint::black_box(matcher.match_phrase(q));
        }
    }
    (queries.len() * reps) as f64 / t0.elapsed().as_secs_f64()
}

/// Measure one sweep point: pruned-exact vs exhaustive throughput on a
/// fixed query set (two-word phrases of *expansion* words — present at
/// every multiplier, not seed instances — so the work per query is the
/// scan, not a trivial seed hit). Before timing, the two modes are
/// checked for exact equality on every query: the sweep's claim is
/// only meaningful because pruning is a drop-in replacement.
fn sweep_point(mult: usize, reps: usize) -> SweepPoint {
    let pruned = sweep_matcher(mult);
    let exhaustive = pruned.with_prune_mode(PruneMode::Off);
    let queries: Vec<String> = (0..SWEEP_CONCEPTS)
        .map(|ci| format!("t{ci:02}w008 t{ci:02}w009"))
        .collect();
    for q in &queries {
        assert_eq!(
            pruned.match_phrase(q),
            exhaustive.match_phrase(q),
            "pruned scan diverged from exhaustive at {mult}x on {q:?}"
        );
    }
    SweepPoint {
        mult,
        vocab_words: SWEEP_CONCEPTS * 16 * mult,
        index_rows: pruned.index().row_count(),
        pruned_rate: time_phrases(&pruned, &queries, reps),
        exhaustive_rate: time_phrases(&exhaustive, &queries, reps),
    }
}

/// Run the vocabulary sweep and render it as the `vocab_sweep` array.
/// In full mode, enforce the sub-linear claim: ≥3× pruned speedup at
/// the largest vocabulary, and pruned throughput decaying strictly
/// slower than exhaustive (≤ 0.7× the exhaustive decay factor).
fn vocab_sweep(smoke: bool) -> Json {
    let reps = if smoke { 20 } else { 400 };
    let points: Vec<SweepPoint> = SWEEP_MULTS
        .iter()
        .map(|&mult| sweep_point(mult, reps))
        .collect();
    for p in &points {
        println!(
            "sweep {:>2}x: {:>5} words, {:>5} rows | pruned {:>9.0} phrases/s | \
             exhaustive {:>9.0} phrases/s | speedup {:.1}x",
            p.mult,
            p.vocab_words,
            p.index_rows,
            p.pruned_rate,
            p.exhaustive_rate,
            p.pruned_rate / p.exhaustive_rate
        );
    }
    let (first, last) = (&points[0], &points[points.len() - 1]);
    if !smoke {
        let speedup = last.pruned_rate / last.exhaustive_rate;
        assert!(
            speedup >= 3.0,
            "expected >=3x pruned speedup at {}x vocabulary, got {speedup:.2}x",
            last.mult
        );
        // Decay factor: how much throughput is lost growing the
        // vocabulary 16×. Exhaustive decays ~linearly with rows; the
        // bound-pruned walk must decay strictly slower.
        let pruned_decay = first.pruned_rate / last.pruned_rate;
        let exhaustive_decay = first.exhaustive_rate / last.exhaustive_rate;
        assert!(
            pruned_decay <= exhaustive_decay * 0.7,
            "pruned scan is not sub-linear: pruned decayed {pruned_decay:.2}x vs \
             exhaustive {exhaustive_decay:.2}x over a {}x vocabulary growth",
            last.mult
        );
    }
    Json::Array(
        points
            .iter()
            .map(|p| {
                let mut o = BTreeMap::new();
                o.insert("mult".into(), Json::UInt(p.mult as u64));
                o.insert("vocab_words".into(), Json::UInt(p.vocab_words as u64));
                o.insert("index_rows".into(), Json::UInt(p.index_rows as u64));
                o.insert("pruned_phrases_per_sec".into(), Json::Float(p.pruned_rate));
                o.insert(
                    "exhaustive_phrases_per_sec".into(),
                    Json::Float(p.exhaustive_rate),
                );
                o.insert(
                    "speedup".into(),
                    Json::Float(p.pruned_rate / p.exhaustive_rate),
                );
                Json::Object(o)
            })
            .collect(),
    )
}

/// Crude sentence split — the workload only needs realistic multi-word
/// phrases, not linguistically perfect boundaries.
fn sentences(text: &str) -> Vec<String> {
    text.split(['.', '!', '?'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, reps) = if smoke {
        (0.1, 2)
    } else {
        (scale_from_env(), 5)
    };
    let dataset = disease_dataset(seed_from_env(), scale);
    let table = dataset.enrichment_table();
    let docs = dataset.documents(Split::Test);
    let phrases: Vec<String> = docs.iter().flat_map(|d| sentences(&d.text)).collect();
    assert!(!phrases.is_empty(), "empty workload");

    let metrics = PipelineMetrics::new();
    let thor =
        Thor::new(dataset.store.clone(), ThorConfig::with_tau(TAU)).with_metrics(metrics.clone());
    let matcher = thor.fine_tune(&table);
    let index_build = metrics.index_build.total();

    // Correctness before speed: the engine path must reproduce the
    // brute-force reference exactly. This pass also warms the cache,
    // exactly as a document stream would.
    for p in &phrases {
        assert_eq!(
            matcher.match_phrase(p),
            matcher.match_phrase_reference(p, |_| true),
            "index path diverged from reference on {p:?}"
        );
    }

    let total = (phrases.len() * reps) as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        for p in &phrases {
            std::hint::black_box(matcher.match_phrase_reference(p, |_| true));
        }
    }
    let ref_rate = total / t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for _ in 0..reps {
        for p in &phrases {
            std::hint::black_box(matcher.match_phrase(p));
        }
    }
    let idx_rate = total / t0.elapsed().as_secs_f64();

    let speedup = idx_rate / ref_rate;
    let cache = matcher.cache_stats();
    let mut doc = BTreeMap::new();
    doc.insert("bench".into(), Json::Str("matcher".into()));
    doc.insert(
        "mode".into(),
        Json::Str(if smoke { "smoke" } else { "full" }.into()),
    );
    doc.insert("tau".into(), Json::Float(TAU));
    doc.insert("scale".into(), Json::Float(scale));
    doc.insert("phrases".into(), Json::UInt(phrases.len() as u64));
    doc.insert("reps".into(), Json::UInt(reps as u64));
    doc.insert(
        "index_rows".into(),
        Json::UInt(matcher.index().row_count() as u64),
    );
    doc.insert(
        "index_build_ms".into(),
        Json::Float(index_build.as_secs_f64() * 1e3),
    );
    doc.insert("reference_phrases_per_sec".into(), Json::Float(ref_rate));
    doc.insert("index_phrases_per_sec".into(), Json::Float(idx_rate));
    doc.insert("speedup".into(), Json::Float(speedup));
    doc.insert("cache_hits".into(), Json::UInt(cache.hits));
    doc.insert("cache_misses".into(), Json::UInt(cache.misses));
    doc.insert("cache_hit_rate".into(), Json::Float(cache.hit_rate()));
    doc.insert("vocab_sweep".into(), vocab_sweep(smoke));
    let rendered = Json::Object(doc).render();
    std::fs::write("BENCH_matcher.json", format!("{rendered}\n"))
        .expect("write BENCH_matcher.json");
    println!("{rendered}");
    println!(
        "reference {ref_rate:.0} phrases/s | index+cache {idx_rate:.0} phrases/s | \
         speedup {speedup:.1}x | cache hit rate {:.1}%",
        cache.hit_rate() * 100.0
    );
    if !smoke {
        assert!(
            speedup >= 3.0,
            "expected >=3x speedup over brute force, got {speedup:.2}x"
        );
    }
}
