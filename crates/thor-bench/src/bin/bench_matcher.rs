//! **BENCH_matcher** — candidate-generation engine benchmark: the
//! structure-of-arrays index + phrase cache path (`match_phrase`)
//! against the retained brute-force reference
//! (`match_phrase_reference`) on Disease A–Z sentences.
//!
//! Emits `BENCH_matcher.json` (phrases/sec for both paths, index build
//! time, cache hit rate, speedup) to the working directory and prints
//! the same document to stdout. Before timing, every phrase is checked
//! for *exact* equality between the two paths — the speedup claim is
//! only meaningful because the engine is a drop-in replacement.
//!
//! Usage: `bench_matcher [--smoke]` (env: `THOR_SCALE`, `THOR_SEED`).
//! `--smoke` pins a small scale and few repetitions so CI can afford to
//! run it on every push; the full mode additionally enforces the ≥3×
//! speedup floor (smoke timings are too noisy to gate on).

use std::collections::BTreeMap;
use std::time::Instant;

use thor_bench::harness::{disease_dataset, scale_from_env, seed_from_env};
use thor_core::{Thor, ThorConfig};
use thor_datagen::Split;
use thor_obs::{Json, PipelineMetrics};

/// Mid-sweep τ: representative clusters are at their paper-default size.
const TAU: f64 = 0.7;

/// Crude sentence split — the workload only needs realistic multi-word
/// phrases, not linguistically perfect boundaries.
fn sentences(text: &str) -> Vec<String> {
    text.split(['.', '!', '?'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, reps) = if smoke {
        (0.1, 2)
    } else {
        (scale_from_env(), 5)
    };
    let dataset = disease_dataset(seed_from_env(), scale);
    let table = dataset.enrichment_table();
    let docs = dataset.documents(Split::Test);
    let phrases: Vec<String> = docs.iter().flat_map(|d| sentences(&d.text)).collect();
    assert!(!phrases.is_empty(), "empty workload");

    let metrics = PipelineMetrics::new();
    let thor =
        Thor::new(dataset.store.clone(), ThorConfig::with_tau(TAU)).with_metrics(metrics.clone());
    let matcher = thor.fine_tune(&table);
    let index_build = metrics.index_build.total();

    // Correctness before speed: the engine path must reproduce the
    // brute-force reference exactly. This pass also warms the cache,
    // exactly as a document stream would.
    for p in &phrases {
        assert_eq!(
            matcher.match_phrase(p),
            matcher.match_phrase_reference(p, |_| true),
            "index path diverged from reference on {p:?}"
        );
    }

    let total = (phrases.len() * reps) as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        for p in &phrases {
            std::hint::black_box(matcher.match_phrase_reference(p, |_| true));
        }
    }
    let ref_rate = total / t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for _ in 0..reps {
        for p in &phrases {
            std::hint::black_box(matcher.match_phrase(p));
        }
    }
    let idx_rate = total / t0.elapsed().as_secs_f64();

    let speedup = idx_rate / ref_rate;
    let cache = matcher.cache_stats();
    let mut doc = BTreeMap::new();
    doc.insert("bench".into(), Json::Str("matcher".into()));
    doc.insert(
        "mode".into(),
        Json::Str(if smoke { "smoke" } else { "full" }.into()),
    );
    doc.insert("tau".into(), Json::Float(TAU));
    doc.insert("scale".into(), Json::Float(scale));
    doc.insert("phrases".into(), Json::UInt(phrases.len() as u64));
    doc.insert("reps".into(), Json::UInt(reps as u64));
    doc.insert(
        "index_rows".into(),
        Json::UInt(matcher.index().row_count() as u64),
    );
    doc.insert(
        "index_build_ms".into(),
        Json::Float(index_build.as_secs_f64() * 1e3),
    );
    doc.insert("reference_phrases_per_sec".into(), Json::Float(ref_rate));
    doc.insert("index_phrases_per_sec".into(), Json::Float(idx_rate));
    doc.insert("speedup".into(), Json::Float(speedup));
    doc.insert("cache_hits".into(), Json::UInt(cache.hits));
    doc.insert("cache_misses".into(), Json::UInt(cache.misses));
    doc.insert("cache_hit_rate".into(), Json::Float(cache.hit_rate()));
    let rendered = Json::Object(doc).render();
    std::fs::write("BENCH_matcher.json", format!("{rendered}\n"))
        .expect("write BENCH_matcher.json");
    println!("{rendered}");
    println!(
        "reference {ref_rate:.0} phrases/s | index+cache {idx_rate:.0} phrases/s | \
         speedup {speedup:.1}x | cache hit rate {:.1}%",
        cache.hit_rate() * 100.0
    );
    if !smoke {
        assert!(
            speedup >= 3.0,
            "expected >=3x speedup over brute force, got {speedup:.2}x"
        );
    }
}
