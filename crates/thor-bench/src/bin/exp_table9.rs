//! **Table IX** — annotation effort: minimum and maximum time to
//! annotate a single subject, a single document and a single token, and
//! the total duration for the train corpus, under the paper's measured
//! per-token costs (8–13 s/token).
//!
//! Usage: `exp_table9` (env: `THOR_SCALE`, `THOR_SEED`).

use std::collections::BTreeMap;

use thor_bench::harness::{disease_dataset, scale_from_env, seed_from_env};
use thor_bench::TextTable;
use thor_datagen::{AnnotationEffortModel, Split};

fn main() {
    let scale = scale_from_env();
    let dataset = disease_dataset(seed_from_env(), scale);
    let model = AnnotationEffortModel::default();
    let train = dataset.docs(Split::Train);
    println!("[Table IX reproduction] annotation effort, Disease A-Z train split, scale={scale}\n");

    // Per-document bounds.
    let (doc_min, doc_max) = model.per_document_bounds(train).expect("non-empty corpus");

    // Per-subject bounds: group documents by their (single) subject.
    let mut per_subject: BTreeMap<&str, usize> = BTreeMap::new();
    for d in train {
        if let Some(s) = d.subjects.first() {
            *per_subject.entry(s.as_str()).or_insert(0) += d.doc.word_count();
        }
    }
    let subj_min =
        per_subject.values().min().copied().unwrap_or(0) as f64 * model.min_sec_per_token;
    let subj_max =
        per_subject.values().max().copied().unwrap_or(0) as f64 * model.max_sec_per_token;

    let total = model.estimate(train);

    let fmt_min = |s: f64| format!("{:.0}m", s / 60.0);
    let mut t = TextTable::new(&[
        "Single Disease",
        "Single Doc.",
        "Single Token",
        "Total Duration",
    ]);
    t.row(vec![
        format!("{} – {}", fmt_min(subj_min), fmt_min(subj_max)),
        format!("{} – {}", fmt_min(doc_min), fmt_min(doc_max)),
        format!(
            "{}s – {}s",
            model.min_sec_per_token, model.max_sec_per_token
        ),
        format!("{:.0}+ Hours", total.max_hours()),
    ]);
    println!("{}", t.render());
    println!(
        "({} train documents, {} tokens; per-annotator upper bound {:.0} hours)",
        train.len(),
        total.tokens,
        total.max_hours()
    );
    println!();
    println!("Paper reference (Table IX): single disease 80m–150m, single document 7m–25m,");
    println!("single token 8s–13s, total duration 600+ hours across three annotators.");
}
