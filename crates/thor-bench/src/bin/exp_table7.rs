//! **Table VII** — concept-wise fine-grained results: predicted
//! entities (Pred), correct predictions (TP) and missed predictions
//! (FN) per concept, for the six systems of the paper's comparison on
//! Disease A–Z.
//!
//! Usage: `exp_table7` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{disease_dataset, run_system, scale_from_env, seed_from_env, System};
use thor_eval::EvalReport;

fn cell(report: &EvalReport, concept: &str) -> (usize, usize, usize, usize) {
    report
        .per_concept
        .iter()
        .find(|c| c.concept == concept)
        .map(|c| (c.gold, c.predicted, c.tp, c.fn_))
        .unwrap_or((0, 0, 0, 0))
}

fn main() {
    let scale = scale_from_env();
    let dataset = disease_dataset(seed_from_env(), scale);
    println!("[Table VII reproduction] per-concept Pred/TP/FN, Disease A-Z, scale={scale}\n");

    let systems = [
        System::Baseline,
        System::UniNer,
        System::Gpt4,
        System::LmHuman(usize::MAX),
        System::LmSd,
        System::Thor(0.8),
    ];
    let outcomes: Vec<_> = systems.iter().map(|s| run_system(s, &dataset)).collect();
    let concepts: Vec<String> = dataset
        .schema
        .concepts()
        .iter()
        .map(|c| c.name().to_lowercase())
        .collect();

    // Header.
    print!("{:<14} {:>5} ", "Concept", "Gold");
    for o in &outcomes {
        print!("| {:<20} ", o.system);
    }
    println!();
    print!("{:<14} {:>5} ", "", "");
    for _ in &outcomes {
        print!("| {:>6} {:>6} {:>6} ", "Pred", "TP", "FN");
    }
    println!();
    let width = 21 + outcomes.len() * 23;
    println!("{}", "-".repeat(width));

    let mut total_gold = 0usize;
    let mut totals: Vec<(usize, usize, usize)> = vec![(0, 0, 0); outcomes.len()];
    for concept in &concepts {
        let gold = cell(&outcomes[0].report, concept).0;
        print!("{:<14} {:>5} ", concept, gold);
        total_gold += gold;
        for (i, o) in outcomes.iter().enumerate() {
            let (_, pred, tp, fn_) = cell(&o.report, concept);
            print!("| {:>6} {:>6} {:>6} ", pred, tp, fn_);
            totals[i].0 += pred;
            totals[i].1 += tp;
            totals[i].2 += fn_;
        }
        println!();
    }
    println!("{}", "-".repeat(width));
    print!("{:<14} {:>5} ", "Overall", total_gold);
    for (pred, tp, fn_) in &totals {
        print!("| {:>6} {:>6} {:>6} ", pred, tp, fn_);
    }
    println!("\n");

    println!("Paper reference (Table VII shape): UniNER detects ZERO entities of the");
    println!("under-represented 'Composition' class; LM-SD is biased toward the most");
    println!("frequent 'Disease' class (819 of its 2421 predictions); THOR tau=0.8 is the");
    println!("most balanced with the highest overall TP (1464) and lowest FN (758).");
}
