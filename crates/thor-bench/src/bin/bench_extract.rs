//! **BENCH_extract** — refinement-kernel benchmark: the
//! allocation-free `thor_text::kernels` scoring path with score-bound
//! early abandon (`refine_candidates`, the default) against the
//! retained reference implementations
//! (`jaccard_words`/`gestalt_similarity`, `--refine reference`) on
//! Disease A–Z candidate lists.
//!
//! Emits `BENCH_extract.json` (selections/sec for both paths, pruned
//! fraction, speedup, end-to-end equivalence checks) to the working
//! directory and prints the same document to stdout. Before timing,
//! every candidate list is checked for *bit-exact* winner equality
//! between the two paths, and a full enrich run is compared
//! byte-for-byte (CSV) between kernel and reference at 1 and 4
//! threads — the speedup claim is only meaningful because the kernel
//! path is a drop-in replacement.
//!
//! Usage: `bench_extract [--smoke]` (env: `THOR_SCALE`, `THOR_SEED`).
//! `--smoke` pins a small scale and few repetitions so CI can afford to
//! run it on every push; the full mode additionally enforces the ≥3×
//! speedup floor (smoke timings are too noisy to gate on).

use std::collections::BTreeMap;
use std::time::Instant;

use thor_bench::harness::{disease_dataset, scale_from_env, seed_from_env};
use thor_core::{refine_candidates, Thor, ThorConfig};
use thor_data::csv::to_csv;
use thor_datagen::Split;
use thor_match::CandidateSource;
use thor_obs::Json;
use thor_text::ScoreScratch;

/// Mid-sweep τ: representative clusters are at their paper-default size.
const TAU: f64 = 0.7;

/// Crude sentence split — the workload only needs realistic candidate
/// lists, not linguistically perfect boundaries.
fn sentences(text: &str) -> Vec<String> {
    text.split(['.', '!', '?'])
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (scale, reps) = if smoke {
        (0.1, 3)
    } else {
        (scale_from_env(), 10)
    };
    let dataset = disease_dataset(seed_from_env(), scale);
    let table = dataset.enrichment_table();
    let docs = dataset.documents(Split::Test);

    let kernel_config = ThorConfig::with_tau(TAU);
    let mut reference_config = kernel_config.clone();
    reference_config.reference_refine = true;

    let thor = Thor::new(dataset.store.clone(), kernel_config.clone());
    let matcher = thor.fine_tune(&table);

    // The refinement workload: one candidate list per sentence, exactly
    // what `extract_entities` hands to `refine_candidates`. Generation
    // runs once up front so the timed loops measure refinement alone.
    let lists: Vec<Vec<_>> = docs
        .iter()
        .flat_map(|d| sentences(&d.text))
        .map(|s| matcher.candidates(&s))
        .filter(|c| !c.is_empty())
        .collect();
    assert!(!lists.is_empty(), "empty workload");
    let candidates_total: usize = lists.iter().map(Vec::len).sum();

    // Correctness before speed: bit-exact winner equality per list,
    // accumulating the kernel's prune accounting along the way.
    let mut scratch = ScoreScratch::new();
    let (mut scored, mut pruned) = (0u64, 0u64);
    for list in &lists {
        let kernel = refine_candidates(list, &matcher, &kernel_config, &mut scratch);
        let reference = refine_candidates(list, &matcher, &reference_config, &mut scratch);
        scored += kernel.scored;
        pruned += kernel.pruned;
        match (&kernel.best, &reference.best) {
            (None, None) => {}
            (Some((kc, ks)), Some((rc, rs))) => {
                assert_eq!(kc, rc, "kernel winner diverged from reference");
                assert_eq!(ks.to_bits(), rs.to_bits(), "winner score bits diverged");
            }
            other => panic!("winner presence diverged: {other:?}"),
        }
    }
    let pruned_fraction = pruned as f64 / (scored + pruned) as f64;

    let total = (lists.len() * reps) as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        for list in &lists {
            std::hint::black_box(refine_candidates(
                list,
                &matcher,
                &reference_config,
                &mut scratch,
            ));
        }
    }
    let ref_rate = total / t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for _ in 0..reps {
        for list in &lists {
            std::hint::black_box(refine_candidates(
                list,
                &matcher,
                &kernel_config,
                &mut scratch,
            ));
        }
    }
    let kernel_rate = total / t0.elapsed().as_secs_f64();
    let speedup = kernel_rate / ref_rate;

    // End-to-end drop-in check: the enriched CSV must be byte-identical
    // between kernel and reference refinement at 1 and 4 threads.
    let enrich_csv = |reference: bool, threads: usize| {
        let mut config = kernel_config.clone();
        config.reference_refine = reference;
        config.threads = threads;
        to_csv(
            &Thor::new(dataset.store.clone(), config)
                .enrich(&table, &docs)
                .table,
        )
    };
    let baseline_csv = enrich_csv(true, 1);
    for threads in [1, 4] {
        assert_eq!(
            baseline_csv,
            enrich_csv(false, threads),
            "kernel enrich CSV diverged from reference at {threads} thread(s)"
        );
    }
    assert_eq!(
        baseline_csv,
        enrich_csv(true, 4),
        "reference enrich CSV diverged across threads"
    );

    let mut doc = BTreeMap::new();
    doc.insert("bench".into(), Json::Str("extract".into()));
    doc.insert(
        "mode".into(),
        Json::Str(if smoke { "smoke" } else { "full" }.into()),
    );
    doc.insert("tau".into(), Json::Float(TAU));
    doc.insert("scale".into(), Json::Float(scale));
    doc.insert("candidate_lists".into(), Json::UInt(lists.len() as u64));
    doc.insert("candidates".into(), Json::UInt(candidates_total as u64));
    doc.insert("reps".into(), Json::UInt(reps as u64));
    doc.insert("refine_scored".into(), Json::UInt(scored));
    doc.insert("refine_pruned".into(), Json::UInt(pruned));
    doc.insert("pruned_fraction".into(), Json::Float(pruned_fraction));
    doc.insert("reference_selections_per_sec".into(), Json::Float(ref_rate));
    doc.insert("kernel_selections_per_sec".into(), Json::Float(kernel_rate));
    doc.insert("speedup".into(), Json::Float(speedup));
    doc.insert("csv_byte_identical".into(), Json::Bool(true));
    let rendered = Json::Object(doc).render();
    std::fs::write("BENCH_extract.json", format!("{rendered}\n"))
        .expect("write BENCH_extract.json");
    println!("{rendered}");
    println!(
        "reference {ref_rate:.0} selections/s | kernel {kernel_rate:.0} selections/s | \
         speedup {speedup:.1}x | pruned {:.1}%",
        pruned_fraction * 100.0
    );
    if !smoke {
        assert!(
            speedup >= 3.0,
            "expected >=3x speedup over reference refinement, got {speedup:.2}x"
        );
    }
}
