//! **Table III** — corpus statistics of the generated Disease A–Z and
//! Résumé datasets, plus the sparsity of the integrated tables (the
//! motivation numbers of Section I).
//!
//! Usage: `exp_datasets` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{disease_dataset, resume_dataset, scale_from_env, seed_from_env};
use thor_bench::TextTable;
use thor_datagen::{corpus_stats, GeneratedDataset, Split};

fn describe(dataset: &GeneratedDataset) {
    println!("== {} ==", dataset.name);
    let mut t = TextTable::new(&["#", "Train", "Valid.", "Test"]);
    let stats: Vec<_> = [Split::Train, Split::Validation, Split::Test]
        .iter()
        .map(|&s| corpus_stats(dataset.docs(s)))
        .collect();
    t.row(vec![
        "|dom(C*)|".into(),
        stats[0].subjects.to_string(),
        stats[1].subjects.to_string(),
        stats[2].subjects.to_string(),
    ]);
    t.row(vec![
        "Documents".into(),
        stats[0].documents.to_string(),
        stats[1].documents.to_string(),
        stats[2].documents.to_string(),
    ]);
    t.row(vec![
        "Entities".into(),
        stats[0].entities.to_string(),
        stats[1].entities.to_string(),
        stats[2].entities.to_string(),
    ]);
    t.row(vec![
        "Words".into(),
        stats[0].words.to_string(),
        stats[1].words.to_string(),
        stats[2].words.to_string(),
    ]);
    println!("{}", t.render());

    let table = &dataset.table;
    let report = thor_data::sparsity(table);
    println!(
        "integrated table R: {} rows, {} instances, {} sources, sparsity {:.1}% ({} of {} slots are ⊥)\n",
        table.len(),
        table.instance_count(),
        dataset.sources.len(),
        report.ratio * 100.0,
        report.missing_slots,
        report.total_slots,
    );
}

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    println!("[Table III reproduction] scale={scale} seed={seed}\n");
    describe(&disease_dataset(seed, scale));
    describe(&resume_dataset(seed, scale));
    println!("Paper reference (Table III, Disease A-Z): dom(C*) 240/61/13, docs 1438/300/90,");
    println!("entities 18539/3989/2222, words 168816/38722/19237.");
    println!("Paper reference (Table III, Résumé): dom(C*) 100/70/100, docs 20/14/20,");
    println!("entities 1656/1463/2140, words 41675/25389/38459.");
}
