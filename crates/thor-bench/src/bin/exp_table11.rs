//! **Table XI + Fig. 9** — generalizability: comparative overall results
//! on the Résumé dataset (raw counts plus P/R/F1) for THOR's top-3
//! precision configurations and the competitors; `--bars` prints the
//! Fig. 9 TP/FP/FN bars.
//!
//! Per the paper, LM-Human here trains on the Résumé *train split* (20
//! documents at full scale) — the same budget as its Disease run — which
//! is what makes it collapse on the unseen domain.
//!
//! Usage: `exp_table11 [--bars]` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{
    gold_annotations, resume_dataset, run_system, scale_from_env, seed_from_env, System,
};
use thor_bench::TextTable;
use thor_datagen::Split;

fn main() {
    let bars = std::env::args().any(|a| a == "--bars");
    let scale = scale_from_env();
    let dataset = resume_dataset(seed_from_env(), scale);
    let gold_count = gold_annotations(&dataset, Split::Test).len();
    println!("[Table XI reproduction] Résumé generalizability, scale={scale}");
    println!("ground-truth entities: {gold_count}\n");

    let systems = vec![
        System::Thor(0.8),
        System::Thor(0.9),
        System::Thor(1.0),
        System::Baseline,
        System::LmSd,
        System::Gpt4,
        System::UniNer,
        System::LmHuman(usize::MAX),
    ];

    let mut table = TextTable::new(&[
        "Model Name",
        "Predicted",
        "Correct (TP)",
        "Incorrect (FP)",
        "P",
        "R",
        "F1",
    ]);
    let mut bar_rows: Vec<(String, usize, usize, usize)> = Vec::new();
    for system in &systems {
        let out = run_system(system, &dataset);
        table.row(vec![
            out.system.clone(),
            out.report.predicted_total.to_string(),
            out.report.tp.to_string(),
            out.report.fp.to_string(),
            format!("{:.2}", out.report.precision),
            format!("{:.2}", out.report.recall),
            format!("{:.2}", out.report.f1),
        ]);
        bar_rows.push((out.system, out.report.tp, out.report.fp, out.report.fn_));
    }
    println!("{}", table.render());

    if bars {
        println!("[Fig. 9] TP / FP / FN bars:");
        let mut t = TextTable::new(&["Model", "TP", "FP", "FN"]);
        for (name, tp, fp, fn_) in &bar_rows {
            t.row(vec![
                name.clone(),
                tp.to_string(),
                fp.to_string(),
                fn_.to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    println!("Paper reference (Table XI, gold 2140): THOR tau=1.0 2541/1244/1297 (.33/.40/.36) |");
    println!("Baseline 1102/304/798 (.15/.08/.10) | LM-SD 1045/529/516 (.26/.12/.17) |");
    println!("GPT-4 2130/1030/1100 (.42/.38/.40) | UniNER 312/185/127 (.51/.07/.12) |");
    println!("LM-Human 506/426/80 (.71/.17/.27). Shape: THOR keeps the best recall and TP");
    println!("count on the unseen domain; UniNER collapses; LM/LM-SD recall drops hard.");
}
