//! **Table VI + Fig. 7** — raw prediction counts (Predicted, TP, FP)
//! for THOR's top-3 precision configurations against the competitors on
//! Disease A–Z; `--bars` prints the TP/FP/FN bar data of Fig. 7.
//!
//! Usage: `exp_table6 [--bars]` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{
    disease_dataset, gold_annotations, run_system, scale_from_env, seed_from_env, System,
};
use thor_bench::TextTable;
use thor_datagen::Split;

fn main() {
    let bars = std::env::args().any(|a| a == "--bars");
    let scale = scale_from_env();
    let dataset = disease_dataset(seed_from_env(), scale);
    let gold_count = gold_annotations(&dataset, Split::Test).len();
    println!("[Table VI reproduction] raw counts, Disease A-Z, scale={scale}");
    println!("ground-truth entities: {gold_count}\n");

    let systems = vec![
        System::Thor(0.8),
        System::Thor(0.9),
        System::Thor(1.0),
        System::Baseline,
        System::LmSd,
        System::Gpt4,
        System::UniNer,
        System::LmHuman(usize::MAX),
    ];

    let mut table = TextTable::new(&["Model Name", "Predicted", "Correct (TP)", "Incorrect (FP)"]);
    let mut bar_rows: Vec<(String, usize, usize, usize)> = Vec::new();
    for system in &systems {
        let out = run_system(system, &dataset);
        table.row(vec![
            out.system.clone(),
            out.report.predicted_total.to_string(),
            out.report.tp.to_string(),
            out.report.fp.to_string(),
        ]);
        bar_rows.push((out.system, out.report.tp, out.report.fp, out.report.fn_));
    }
    println!("{}", table.render());

    if bars {
        println!("[Fig. 7] TP / FP / FN bars:");
        let mut t = TextTable::new(&["Model", "TP", "FP", "FN"]);
        for (name, tp, fp, fn_) in &bar_rows {
            t.row(vec![
                name.clone(),
                tp.to_string(),
                fp.to_string(),
                fn_.to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    println!("Paper reference (Table VI, ground truth 2222): THOR tau=0.8 2069/1464/605 |");
    println!("tau=0.9 1496/1129/367 | tau=1.0 1123/886/237 | Baseline 725/588/137 |");
    println!("LM-SD 2421/1456/965 | GPT-4 1724/1089/635 | UniNER 1272/951/321 |");
    println!("LM-Human 1494/1383/111. Shape: THOR tau=0.8 has the highest TP;");
    println!("Baseline predicts the least; LM-SD overshoots with the most FP-heavy volume.");
}
