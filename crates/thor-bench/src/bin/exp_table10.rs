//! **Table X + Fig. 8** — performance vs. annotation effort: LM-Human
//! fine-tuned on increasing amounts of annotated data (1, 10, 15, 20,
//! all subjects' documents) against THOR at its best τ, with the
//! annotation time each size would cost (13 s/token upper bound).
//!
//! The paper's crossover: LM-Human needs ~20 annotated subjects (~124
//! documents, ≈55 h/annotator) to overtake THOR, which needs zero
//! annotation. `--curve` prints the Fig. 8 series (annotation time vs
//! F1).
//!
//! Usage: `exp_table10 [--curve]` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{disease_dataset, run_system, scale_from_env, seed_from_env, System};
use thor_bench::TextTable;
use thor_datagen::{corpus_stats, AnnotationEffortModel};

fn main() {
    let curve = std::env::args().any(|a| a == "--curve");
    let scale = scale_from_env();
    let dataset = disease_dataset(seed_from_env(), scale);
    let model = AnnotationEffortModel::default();
    println!("[Table X reproduction] LM-Human vs annotation budget, scale={scale}\n");

    // Subject-count ladder, scaled like the corpus itself.
    let ladder_subjects = [1usize, 10, 15, 20, usize::MAX];
    let docs_per_subject = 6; // Disease preset

    // THOR reference row (tau = 0.7, the paper's best-F1 configuration).
    let thor = run_system(&System::Thor(0.7), &dataset);

    let mut table = TextTable::new(&[
        "Model Name",
        "Subjects",
        "Docs",
        "Entities",
        "Words",
        "F1",
        "Annotation Time(s)",
    ]);
    table.row(vec![
        thor.system.clone(),
        "-".into(),
        "-".into(),
        format!("{}", dataset.table.instance_count()),
        "-".into(),
        format!("{:.2}", thor.report.f1),
        "0".into(),
    ]);

    let mut fig8: Vec<(String, f64, f64)> = Vec::new();
    for &subjects in &ladder_subjects {
        let doc_count = if subjects == usize::MAX {
            dataset.train.len()
        } else {
            (subjects * docs_per_subject).min(dataset.train.len())
        };
        let out = run_system(&System::LmHuman(doc_count), &dataset);
        let used = &dataset.train[..doc_count];
        let stats = corpus_stats(used);
        let effort = model.estimate(used);
        let label = if subjects == usize::MAX {
            format!("LM-Human-{}", stats.subjects)
        } else {
            format!("LM-Human-{}", stats.subjects.min(subjects))
        };
        table.row(vec![
            label.clone(),
            stats.subjects.to_string(),
            stats.documents.to_string(),
            stats.entities.to_string(),
            stats.words.to_string(),
            format!("{:.2}", out.report.f1),
            format!("{:.0}", effort.max_seconds),
        ]);
        fig8.push((label, effort.max_seconds, out.report.f1));
    }
    println!("{}", table.render());

    if curve {
        println!(
            "[Fig. 8] annotation time (s, per annotator) vs F1; THOR reference = {:.2} at 0s:",
            thor.report.f1
        );
        let mut t = TextTable::new(&["Model", "Annotation Time(s)", "F1", "Beats THOR?"]);
        for (label, secs, f1) in &fig8 {
            t.row(vec![
                label.clone(),
                format!("{secs:.0}"),
                format!("{f1:.2}"),
                if *f1 > thor.report.f1 {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]);
        }
        println!("{}", t.render());
        if let Some((label, secs, _)) = fig8.iter().find(|(_, _, f1)| *f1 > thor.report.f1) {
            println!(
                "crossover: {label} ({:.1} hours of annotation per annotator)",
                secs / 3600.0
            );
        } else {
            println!("no crossover within the ladder at this scale");
        }
    }

    println!();
    println!("Paper reference (Table X): THOR tau=0.7 F1 0.56 at zero annotation;");
    println!("LM-Human-1 0.32 (12,649s) -> LM-Human-10 0.47 -> LM-Human-15 0.55 ->");
    println!("LM-Human-20 0.60 (196,170s, the crossover, ~55h/annotator) ->");
    println!("LM-Human-240 0.66 (2,194,608s).");
}
