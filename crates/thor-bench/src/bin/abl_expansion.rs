//! **Ablation: τ-expansion.** Phase ① expands each concept's seed
//! instances with vocabulary words above the threshold ("representative
//! instances that include both known and unknown instances"). This bench
//! compares seeds-only fine-tuning (`max_expansion = 0`) against the
//! full expansion across the τ sweep — the expansion is where THOR's
//! recall advantage over exact matching comes from.
//!
//! Usage: `abl_expansion` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{disease_dataset, run_system, scale_from_env, seed_from_env, System};
use thor_bench::TextTable;
use thor_core::ThorConfig;

fn main() {
    let scale = scale_from_env();
    let dataset = disease_dataset(seed_from_env(), scale);
    println!("[Ablation] seed expansion on/off, Disease A-Z, scale={scale}\n");

    let mut table = TextTable::new(&["tau", "expansion", "P", "R", "F1", "predictions"]);
    for tau10 in [5usize, 7, 9] {
        let tau = tau10 as f64 / 10.0;
        for (label, max_expansion) in [("on (200)", 200usize), ("off (seeds only)", 0)] {
            let mut config = ThorConfig::with_tau(tau);
            config.max_expansion = max_expansion;
            let out = run_system(
                &System::ThorWith(Box::new(config), format!("THOR tau={tau} exp={label}")),
                &dataset,
            );
            table.row(vec![
                format!("{tau:.1}"),
                label.to_string(),
                format!("{:.3}", out.report.precision),
                format!("{:.3}", out.report.recall),
                format!("{:.3}", out.report.f1),
                out.report.predicted_total.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!("Expected shape: at low tau, expansion raises recall (unknown instances are");
    println!("reachable through expanded representatives) at some precision cost; with");
    println!("expansion off, the tau dial loses most of its recall range.");
}
