//! **Supplementary** — the context-window effect the paper reports for
//! UniversalNER ("a context length of a maximum of 2,048, meaning it is
//! unable to parse any text beyond this token length"): recall of each
//! system as a function of where in the document the gold entity sits.
//!
//! We bucket gold entities by their first occurrence's word offset and
//! measure per-bucket recall for the window-limited simulated UniNER, the
//! window-free simulated GPT-4, and THOR (which reads everything).
//!
//! Usage: `exp_context_window` (env: `THOR_SCALE`, `THOR_SEED`).

use std::collections::HashMap;

use thor_bench::harness::{run_system, scale_from_env, seed_from_env, System};
use thor_bench::TextTable;
use thor_datagen::{generate, DatasetSpec};
use thor_eval::align::{align, Annotation, MatchClass};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    // Long documents: bundle many subjects per document so text runs past
    // a 2,048-token window (the Résumé generator supports bundling).
    let mut spec = DatasetSpec::resume(seed, scale.max(0.5));
    spec.subjects_per_doc = 25; // ~2.6k words per document
    let dataset = generate(&spec);
    let words_per_doc = dataset
        .test
        .iter()
        .map(|d| d.doc.word_count())
        .max()
        .unwrap_or(0);
    println!("[Supplementary] context-window effect; longest test doc: {words_per_doc} words\n");

    // Gold entities bucketed by first-occurrence word offset.
    let bucket_of = |offset: usize| match offset {
        0..=1023 => "0-1k",
        1024..=2047 => "1k-2k",
        _ => "2k+",
    };
    // (doc, concept, phrase) -> bucket
    let mut gold_bucket: HashMap<(String, String, String), &'static str> = HashMap::new();
    let mut gold: Vec<Annotation> = Vec::new();
    for doc in &dataset.test {
        let words: Vec<String> = doc
            .doc
            .text
            .split_whitespace()
            .map(thor_repro_normalize)
            .collect();
        for g in &doc.gold {
            let first = g.phrase.split_whitespace().next().unwrap_or("");
            let norm = thor_repro_normalize(first);
            let offset = words.iter().position(|w| *w == norm).unwrap_or(0);
            let ann = Annotation::new(doc.doc.id.clone(), &g.concept, &g.phrase);
            gold_bucket
                .entry((ann.doc_id.clone(), ann.concept.clone(), ann.phrase.clone()))
                .or_insert(bucket_of(offset));
            gold.push(ann);
        }
    }
    gold.sort_by(|a, b| {
        (&a.doc_id, &a.concept, &a.phrase).cmp(&(&b.doc_id, &b.concept, &b.phrase))
    });
    gold.dedup();

    let systems = [System::UniNer, System::Gpt4, System::Thor(0.8)];
    let mut table = TextTable::new(&["Model", "R @0-1k", "R @1k-2k", "R @2k+"]);
    for system in &systems {
        let out = run_system(system, &dataset);
        let preds: Vec<Annotation> = out
            .predictions
            .iter()
            .map(|e| Annotation::new(e.doc_id.clone(), &e.concept, &e.phrase))
            .collect();
        let (aligned, _missing) = align(&preds, &gold);
        let mut hit: HashMap<&str, usize> = HashMap::new();
        let mut total: HashMap<&str, usize> = HashMap::new();
        for (key, bucket) in &gold_bucket {
            *total.entry(bucket).or_insert(0) += 1;
            let recognized = aligned.iter().any(|a| {
                matches!(a.class, MatchClass::Correct | MatchClass::Partial)
                    && a.gold.is_some_and(|gi| {
                        let g = &gold[gi];
                        (&g.doc_id, &g.concept, &g.phrase) == (&key.0, &key.1, &key.2)
                    })
            });
            if recognized {
                *hit.entry(bucket).or_insert(0) += 1;
            }
        }
        let recall = |b: &str| {
            let t = total.get(b).copied().unwrap_or(0);
            if t == 0 {
                "-".to_string()
            } else {
                format!("{:.2}", hit.get(b).copied().unwrap_or(0) as f64 / t as f64)
            }
        };
        table.row(vec![
            out.system,
            recall("0-1k"),
            recall("1k-2k"),
            recall("2k+"),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: the 2,048-token UniNER profile loses everything past its");
    println!("window; GPT-4 (16k window) and THOR (reads the whole document) do not.");
}

/// Minimal word normalization matching `thor_text::normalize_phrase` on
/// single tokens.
fn thor_repro_normalize(w: &str) -> String {
    thor_text::normalize_phrase(w)
}
