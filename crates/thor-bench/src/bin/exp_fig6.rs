//! **Fig. 6** — THOR inference time for an increasing threshold τ.
//!
//! The paper reports monotonically decreasing time as τ grows: a
//! stricter threshold yields fewer representative vectors and fewer
//! accepted candidates, so the syntactic refinement ranks less. The same
//! mechanics hold here.
//!
//! Usage: `exp_fig6` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{
    disease_dataset, prepare_engine, scale_from_env, seed_from_env, tau_sweep,
};
use thor_bench::TextTable;
use thor_datagen::Split;

fn main() {
    let scale = scale_from_env();
    let dataset = disease_dataset(seed_from_env(), scale);
    let docs = dataset.documents(Split::Test);
    println!("[Fig. 6 reproduction] inference time vs tau, scale={scale}\n");

    // One Preparation pass at the lowest τ serves the whole sweep; the
    // per-τ "derive" column is the with_tau filter over the frozen
    // candidate lists, not a vocabulary re-scan.
    let taus: Vec<f64> = tau_sweep().collect();
    let engine = prepare_engine(&dataset, taus[0]);
    println!("one-time engine build: {:?}\n", engine.prepare_time());

    let mut out = TextTable::new(&["tau", "derive", "inference", "total", "predictions"]);
    for &tau in &taus {
        let served = engine.with_tau(tau);
        // Median of 3 runs to stabilize the wall-clock.
        let mut runs: Vec<(std::time::Duration, usize)> = (0..3)
            .map(|_| {
                let (entities, infer) = served.extract(&docs);
                (infer, entities.len())
            })
            .collect();
        runs.sort_by_key(|r| r.0);
        let (infer, preds) = runs[1];
        let derive = served.prepare_time();
        out.row(vec![
            format!("{tau:.1}"),
            format!("{:.2}ms", derive.as_secs_f64() * 1e3),
            format!("{:.0}ms", infer.as_secs_f64() * 1e3),
            format!("{:.0}ms", (derive + infer).as_secs_f64() * 1e3),
            preds.to_string(),
        ]);
    }
    println!("{}", out.render());
    println!("Paper reference (Fig. 6 / Table V time column): 1781s at tau=0.5 decreasing");
    println!("monotonically to 425s at tau=1.0 (absolute values are hardware-specific;");
    println!("the reproduced shape is the monotone decrease).");
}
