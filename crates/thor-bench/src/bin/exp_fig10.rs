//! **Fig. 10** — fine-grained F1 per concept on the Résumé dataset (the
//! paper's spider graph), printed as a matrix plus a per-concept winner
//! column.
//!
//! Usage: `exp_fig10` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{resume_dataset, run_system, scale_from_env, seed_from_env, System};
use thor_bench::TextTable;

fn main() {
    let scale = scale_from_env();
    let dataset = resume_dataset(seed_from_env(), scale);
    println!("[Fig. 10 reproduction] per-concept F1, Résumé, scale={scale}\n");

    let systems = [
        System::Thor(0.8),
        System::Baseline,
        System::LmSd,
        System::Gpt4,
        System::UniNer,
        System::LmHuman(usize::MAX),
    ];
    let outcomes: Vec<_> = systems.iter().map(|s| run_system(s, &dataset)).collect();

    let mut header: Vec<String> = vec!["Concept".into()];
    header.extend(outcomes.iter().map(|o| o.system.clone()));
    header.push("Winner".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = TextTable::new(&header_refs);

    let concepts: Vec<String> = dataset
        .schema
        .concepts()
        .iter()
        .map(|c| c.name().to_lowercase())
        .collect();
    let mut thor_wins = 0usize;
    for concept in &concepts {
        let mut row = vec![concept.clone()];
        let mut best = (String::new(), -1.0f64);
        for o in &outcomes {
            let f1 = o
                .report
                .per_concept
                .iter()
                .find(|c| &c.concept == concept)
                .map(|c| c.f1)
                .unwrap_or(0.0);
            row.push(format!("{f1:.2}"));
            if f1 > best.1 {
                best = (o.system.clone(), f1);
            }
        }
        if best.0.starts_with("THOR") {
            thor_wins += 1;
        }
        row.push(best.0);
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "THOR wins or ties {} of {} concepts at this scale/seed.",
        thor_wins,
        concepts.len()
    );
    println!();
    println!("Paper reference (Fig. 10 shape): THOR outperforms or matches the competitors");
    println!("in 6 of 12 classes with the most *balanced* per-concept profile; GPT-4 is");
    println!("strong only on 3 generic classes (names, universities, companies) and nearly");
    println!("zero on 'Worked As' and 'Years of Experience'.");
}
