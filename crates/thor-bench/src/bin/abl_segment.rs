//! **Ablation: document segmentation.** Phase ① associates each sentence
//! with a subject instance via exact mentions plus carry-forward,
//! falling back to semantic matching. This bench compares the three
//! segmentation modes — the attribution quality bounds slot-filling
//! (an entity attributed to the wrong subject fills the wrong row).
//!
//! Usage: `abl_segment` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{disease_dataset, run_system, scale_from_env, seed_from_env, System};
use thor_bench::TextTable;
use thor_core::{SegmentationMode, ThorConfig};

fn main() {
    let scale = scale_from_env();
    let dataset = disease_dataset(seed_from_env(), scale);
    println!("[Ablation] segmentation modes, Disease A-Z, tau=0.7, scale={scale}\n");

    let modes = [
        (
            "mention + carry-forward (paper)",
            SegmentationMode::MentionCarryForward,
        ),
        ("mention only", SegmentationMode::MentionOnly),
        ("semantic only", SegmentationMode::SemanticOnly),
    ];

    let mut table = TextTable::new(&["Segmentation", "P", "R", "F1", "pred"]);
    for (label, mode) in modes {
        let mut config = ThorConfig::with_tau(0.7);
        config.segmentation = mode;
        let out = run_system(
            &System::ThorWith(Box::new(config), format!("THOR [{label}]")),
            &dataset,
        );
        table.row(vec![
            label.to_string(),
            format!("{:.3}", out.report.precision),
            format!("{:.3}", out.report.recall),
            format!("{:.3}", out.report.f1),
            out.report.predicted_total.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("Expected shape: mention-only drops the sentences between anchors (recall");
    println!("loss); semantic-only attribution is noisier than the carry-forward");
    println!("heuristic on documents that discuss one subject at a time.");
}
