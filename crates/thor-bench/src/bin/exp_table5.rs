//! **Table V + Fig. 5** — comparative slot-filling results on the
//! Disease A–Z dataset: THOR across τ ∈ {0.5..1.0} against the Baseline,
//! LM-SD, GPT-4, UniNER and LM-Human, reporting time, precision, recall
//! and F1; `--pr-curve` additionally prints the precision–recall points
//! and the Pareto frontier of Fig. 5.
//!
//! Usage: `exp_table5 [--pr-curve]` (env: `THOR_SCALE`, `THOR_SEED`).

use thor_bench::harness::{
    disease_dataset, run_system, run_thor_sweep, scale_from_env, seed_from_env, tau_sweep, System,
};
use thor_bench::{fmt_duration, TextTable};
use thor_eval::PrCurve;

fn main() {
    let pr_curve = std::env::args().any(|a| a == "--pr-curve");
    let scale = scale_from_env();
    let dataset = disease_dataset(seed_from_env(), scale);
    println!("[Table V reproduction] Disease A-Z, scale={scale}\n");

    // The entire τ sweep serves off one PreparedEngine build.
    let taus: Vec<f64> = tau_sweep().collect();
    let mut outcomes = run_thor_sweep(&dataset, &taus);
    for system in [
        System::Baseline,
        System::LmSd,
        System::Gpt4,
        System::UniNer,
        System::LmHuman(usize::MAX),
    ] {
        outcomes.push(run_system(&system, &dataset));
    }

    let mut table = TextTable::new(&["Model Name", "Time", "P", "R", "F1"]);
    let mut curve = PrCurve::new();
    for out in outcomes {
        table.row(vec![
            out.system.clone(),
            fmt_duration(out.time),
            format!("{:.2}", out.report.precision),
            format!("{:.2}", out.report.recall),
            format!("{:.2}", out.report.f1),
        ]);
        curve.push(out.system, out.report.precision, out.report.recall);
    }
    println!("{}", table.render());

    if pr_curve {
        println!("[Fig. 5] Precision-Recall points:");
        println!("{}", curve.to_table());
        println!("Pareto frontier: {}", curve.pareto_front().join(", "));
    }

    println!("Paper reference (Table V): THOR tau=0.5 .39/.74/.52 | tau=0.7 .49/.64/.56 |");
    println!("tau=1.0 .63/.32/.42 | Baseline .55/.18/.27 | LM-SD .42/.45/.43 |");
    println!("GPT-4 .49/.38/.43 | UniNER .58/.33/.42 | LM-Human .83/.56/.66");
}
