//! Quick calibration smoke run: all systems on a small Disease A–Z.
//! The THOR τ sweep serves off one shared [`thor_core::PreparedEngine`]
//! build (`run_thor_sweep`); the other systems run independently.

use thor_bench::{disease_dataset, run_system, run_thor_sweep, scale_from_env, tau_sweep, System};

fn main() {
    let scale = scale_from_env();
    let dataset = disease_dataset(42, scale);
    println!(
        "dataset: {} test docs, {} gold entities",
        dataset.test.len(),
        dataset.test.iter().map(|d| d.gold.len()).sum::<usize>()
    );
    let taus: Vec<f64> = tau_sweep().collect();
    let mut outcomes = run_thor_sweep(&dataset, &taus);
    for s in [
        System::Baseline,
        System::LmSd,
        System::Gpt4,
        System::UniNer,
        System::LmHuman(usize::MAX),
    ] {
        outcomes.push(run_system(&s, &dataset));
    }
    for out in &outcomes {
        let r = &out.report;
        let wall = out
            .time
            .map(|t| format!("{t:?}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<16} pred={:<5} cor={:<4} par={:<4} inc={:<4} spu={:<4} mis={:<4} P={:.2} R={:.2} F1={:.2} wall={wall}",
            out.system, r.predicted_total, r.correct, r.partial, r.incorrect, r.spurious,
            r.missing, r.precision, r.recall, r.f1
        );
    }
}
