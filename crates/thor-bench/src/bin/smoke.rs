//! Quick calibration smoke run: all systems on a small Disease A–Z.

use thor_bench::{disease_dataset, run_system, scale_from_env, tau_sweep, System};

fn main() {
    let scale = scale_from_env();
    let dataset = disease_dataset(42, scale);
    println!(
        "dataset: {} test docs, {} gold entities",
        dataset.test.len(),
        dataset.test.iter().map(|d| d.gold.len()).sum::<usize>()
    );
    let mut systems: Vec<System> = tau_sweep().map(System::Thor).collect();
    systems.extend([
        System::Baseline,
        System::LmSd,
        System::Gpt4,
        System::UniNer,
        System::LmHuman(usize::MAX),
    ]);
    for s in &systems {
        let t0 = std::time::Instant::now();
        let out = run_system(s, &dataset);
        let r = &out.report;
        println!(
            "{:<16} pred={:<5} cor={:<4} par={:<4} inc={:<4} spu={:<4} mis={:<4} P={:.2} R={:.2} F1={:.2} wall={:?}",
            out.system, r.predicted_total, r.correct, r.partial, r.incorrect, r.spurious,
            r.missing, r.precision, r.recall, r.f1, t0.elapsed()
        );
    }
}
