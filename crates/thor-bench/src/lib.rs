//! # thor-bench
//!
//! The experiment harness: shared machinery used by the `exp_*` and
//! `abl_*` binaries that regenerate every table and figure of the
//! paper's evaluation, plus Criterion micro-benches for the substrates.
//!
//! Experiments default to a reduced corpus scale so they finish in
//! seconds; set `THOR_SCALE=1.0` for the paper-sized corpora (see
//! EXPERIMENTS.md for both sets of numbers).

pub mod harness;
pub mod report;

pub use harness::{
    disease_dataset, prepare_engine, resume_dataset, run_system, run_thor_sweep, scale_from_env,
    tau_sweep, RunOutcome, System,
};
pub use report::{fmt_duration, Table as TextTable};
