//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;
use std::time::Duration;

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[c]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Human-readable duration (the paper reports whole seconds).
pub fn fmt_duration(d: Option<Duration>) -> String {
    match d {
        None => "-".to_string(),
        Some(d) if d.as_secs_f64() >= 1.0 => format!("{:.1}s", d.as_secs_f64()),
        Some(d) => format!("{}ms", d.as_millis()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["Model", "F1"]);
        t.row(vec!["THOR".into(), "0.56".into()]);
        t.row(vec!["Baseline".into(), "0.27".into()]);
        let s = t.render();
        assert!(s.contains("Model"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new(&["A"]).row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn durations() {
        assert_eq!(fmt_duration(None), "-");
        assert_eq!(fmt_duration(Some(Duration::from_millis(250))), "250ms");
        assert_eq!(fmt_duration(Some(Duration::from_secs(3))), "3.0s");
    }
}
