//! Shared experiment harness.

use std::time::{Duration, Instant};

use thor_baselines::{
    DictionaryBaseline, Extractor, LlmProfile, PerceptronTagger, SimulatedLlm, TaggerConfig,
};
use thor_core::{ExtractedEntity, PreparedEngine, Thor, ThorConfig};
use thor_datagen::{generate, DatasetSpec, GeneratedDataset, Split};
use thor_eval::{evaluate, Annotation, EvalReport};
use thor_obs::{Json, PipelineMetrics};

/// Corpus scale from `THOR_SCALE` (default 0.25 — seconds, not minutes;
/// 1.0 reproduces the paper-sized corpora).
pub fn scale_from_env() -> f64 {
    std::env::var("THOR_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

/// The paper's τ sweep — 0.5, 0.6, …, 1.0 (Table V, Figs. 5–6). The
/// single source of the experiment grid: binaries that run THOR across
/// the full threshold range iterate this instead of hard-coding the
/// endpoints. Validity of an individual τ is enforced separately by
/// [`thor_match::TAU_RANGE`].
pub fn tau_sweep() -> impl Iterator<Item = f64> {
    (5..=10).map(|t| t as f64 / 10.0)
}

/// Seed from `THOR_SEED` (default 42).
pub fn seed_from_env() -> u64 {
    std::env::var("THOR_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// How to emit per-stage pipeline metrics after each THOR run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsEmit {
    /// Aligned human-readable table.
    Table,
    /// Single-line machine-readable JSON.
    Json,
}

/// Metrics emission mode from `THOR_METRICS`: `1` or `table` → human
/// table, `json` → machine-readable JSON; unset or anything else → off.
pub fn metrics_from_env() -> Option<MetricsEmit> {
    match std::env::var("THOR_METRICS").ok().as_deref() {
        Some("1" | "table") => Some(MetricsEmit::Table),
        Some("json") => Some(MetricsEmit::Json),
        _ => None,
    }
}

/// Print a run's metrics to stderr, labelled with the system name (JSON
/// mode adds a `"system"` key to the document instead).
pub fn emit_metrics(label: &str, metrics: &PipelineMetrics, mode: MetricsEmit) {
    match mode {
        MetricsEmit::Table => {
            eprintln!("[metrics] {label}");
            eprint!("{}", metrics.render_table());
        }
        MetricsEmit::Json => {
            let mut doc = metrics.snapshot().to_json();
            if let Json::Object(map) = &mut doc {
                map.insert("system".into(), Json::Str(label.to_string()));
            }
            eprintln!("{}", doc.render());
        }
    }
}

/// The Disease A–Z dataset at the given scale.
pub fn disease_dataset(seed: u64, scale: f64) -> GeneratedDataset {
    generate(&DatasetSpec::disease_az(seed, scale))
}

/// The Résumé dataset at the given scale.
pub fn resume_dataset(seed: u64, scale: f64) -> GeneratedDataset {
    generate(&DatasetSpec::resume(seed, scale))
}

/// A system under evaluation.
pub enum System {
    /// THOR at a given τ.
    Thor(f64),
    /// THOR with a custom configuration (ablations).
    ThorWith(Box<ThorConfig>, String),
    /// The Aho–Corasick dictionary baseline.
    Baseline,
    /// Perceptron tagger trained on weak (table-projected) labels.
    LmSd,
    /// Perceptron tagger trained on gold annotations of the first
    /// `usize` train documents (`usize::MAX` = all).
    LmHuman(usize),
    /// Simulated GPT-4.
    Gpt4,
    /// Simulated UniversalNER.
    UniNer,
}

impl System {
    /// Display name as used in the paper's tables.
    pub fn name(&self) -> String {
        match self {
            System::Thor(tau) => format!("THOR (tau={tau:.1})"),
            System::ThorWith(_, name) => name.clone(),
            System::Baseline => "Baseline".into(),
            System::LmSd => "LM-SD".into(),
            System::LmHuman(n) if *n == usize::MAX => "LM-Human".into(),
            System::LmHuman(n) => format!("LM-Human-{n}"),
            System::Gpt4 => "GPT-4".into(),
            System::UniNer => "UniNER".into(),
        }
    }
}

/// Outcome of one system run on one dataset.
pub struct RunOutcome {
    /// System display name.
    pub system: String,
    /// Evaluation report against the test gold.
    pub report: EvalReport,
    /// Wall-clock time (training/fine-tuning + inference), as in the
    /// paper's Table V. `None` for the simulated LLMs — their timing
    /// would be an artifact of the simulation, the paper reports "-"
    /// for GPT-4 too.
    pub time: Option<Duration>,
    /// The raw predictions (for slot-filling demos).
    pub predictions: Vec<ExtractedEntity>,
}

/// Gold annotations of a split at evaluation granularity.
pub fn gold_annotations(dataset: &GeneratedDataset, split: Split) -> Vec<Annotation> {
    let mut gold: Vec<Annotation> = dataset
        .docs(split)
        .iter()
        .flat_map(|d| {
            d.gold
                .iter()
                .map(|g| Annotation::new(d.doc.id.clone(), &g.concept, &g.phrase))
        })
        .collect();
    gold.sort_by(|a, b| {
        (&a.doc_id, &a.concept, &a.phrase).cmp(&(&b.doc_id, &b.concept, &b.phrase))
    });
    gold.dedup();
    gold
}

/// Convert predictions to evaluation annotations.
pub fn to_annotations(entities: &[ExtractedEntity]) -> Vec<Annotation> {
    entities
        .iter()
        .map(|e| Annotation::new(e.doc_id.clone(), &e.concept, &e.phrase))
        .collect()
}

/// Build the [`PreparedEngine`] for a dataset's enrichment table at
/// `tau` — the one-time Preparation pass sweep runs amortize.
pub fn prepare_engine(dataset: &GeneratedDataset, tau: f64) -> PreparedEngine {
    Thor::new(dataset.store.clone(), ThorConfig::with_tau(tau)).prepare(&dataset.enrichment_table())
}

/// Run THOR across a τ sweep off **one** Preparation pass: the engine is
/// built once at the lowest τ and each sweep point is derived with
/// [`PreparedEngine::with_tau`] (bit-identical to a fresh fine-tune at
/// that τ, by τ-monotonicity). Reported `time` per point is the
/// derivation cost plus inference — the amortized serving cost the
/// build/serve split exists for.
pub fn run_thor_sweep(dataset: &GeneratedDataset, taus: &[f64]) -> Vec<RunOutcome> {
    let Some(base_tau) = taus.iter().copied().min_by(f64::total_cmp) else {
        return Vec::new();
    };
    let docs = dataset.documents(Split::Test);
    let gold = gold_annotations(dataset, Split::Test);
    let emit = metrics_from_env();
    let engine = prepare_engine(dataset, base_tau);
    taus.iter()
        .map(|&tau| {
            let name = System::Thor(tau).name();
            let metrics = PipelineMetrics::new();
            let mut served = engine.with_tau(tau);
            if emit.is_some() {
                served = served.with_metrics(metrics.clone());
            }
            let (predictions, infer) = served.extract(&docs);
            if let Some(mode) = emit {
                emit_metrics(&name, &metrics, mode);
            }
            let report = evaluate(&to_annotations(&predictions), &gold);
            RunOutcome {
                system: name,
                report,
                time: Some(served.prepare_time() + infer),
                predictions,
            }
        })
        .collect()
}

/// Run one system on the dataset's test split and evaluate.
pub fn run_system(system: &System, dataset: &GeneratedDataset) -> RunOutcome {
    let table = dataset.enrichment_table();
    let docs = dataset.documents(Split::Test);
    let gold = gold_annotations(dataset, Split::Test);
    let name = system.name();

    let run_thor = |thor: Thor| {
        let emit = metrics_from_env();
        let metrics = PipelineMetrics::new();
        let thor = if emit.is_some() {
            thor.with_metrics(metrics.clone())
        } else {
            thor
        };
        let (entities, prep, infer) = thor.extract(&table, &docs);
        if let Some(mode) = emit {
            emit_metrics(&name, &metrics, mode);
        }
        (entities, Some(prep + infer))
    };
    let (predictions, time) = match system {
        System::Thor(tau) => run_thor(Thor::new(dataset.store.clone(), ThorConfig::with_tau(*tau))),
        System::ThorWith(config, _) => {
            run_thor(Thor::new(dataset.store.clone(), (**config).clone()))
        }
        System::Baseline => {
            let t0 = Instant::now();
            let baseline = DictionaryBaseline::from_table(&table);
            let preds = baseline.extract(&table, &docs);
            (preds, Some(t0.elapsed()))
        }
        System::LmSd => {
            let t0 = Instant::now();
            let tagger = PerceptronTagger::train_weak(
                "LM-SD",
                &dataset.table,
                &dataset.train,
                &TaggerConfig::default(),
            );
            let preds = tagger.extract(&table, &docs);
            (preds, Some(t0.elapsed()))
        }
        System::LmHuman(n) => {
            let t0 = Instant::now();
            let count = (*n).min(dataset.train.len());
            let tagger = PerceptronTagger::train_gold(
                "LM-Human",
                &dataset.train[..count],
                &TaggerConfig::default(),
            );
            let preds = tagger.extract(&table, &docs);
            (preds, Some(t0.elapsed()))
        }
        System::Gpt4 => {
            let llm = SimulatedLlm::new(LlmProfile::gpt4(seed_from_env()), &dataset.test);
            (llm.extract(&table, &docs), None)
        }
        System::UniNer => {
            let llm = SimulatedLlm::new(LlmProfile::uniner(seed_from_env()), &dataset.test);
            (llm.extract(&table, &docs), None)
        }
    };

    let report = evaluate(&to_annotations(&predictions), &gold);
    RunOutcome {
        system: name,
        report,
        time,
        predictions,
    }
}
