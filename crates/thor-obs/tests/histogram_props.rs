//! Property battery for the log-bucketed [`Histogram`].
//!
//! The serve layer leans on three guarantees, each fuzzed here:
//!
//! - **Bucketing**: every value lands in exactly one bucket whose
//!   `[2^i, 2^(i+1))` range contains it, and the reported quantile is a
//!   conservative upper bound (never below the true quantile value).
//! - **Monotonicity**: `p50 <= p95 <= p99` for *any* sequence of
//!   observations, so latency summaries can never cross over.
//! - **Mergeability**: merging per-worker histograms is exactly
//!   equivalent to recording every observation into one histogram, and
//!   the sparse `(bucket, count)` form survives a JSON round trip
//!   through the metrics snapshot parser unchanged.

use proptest::prelude::*;
use thor_obs::{Histogram, MetricValue, MetricsRegistry, MetricsSnapshot, HISTOGRAM_BUCKETS};

/// Exact quantile over the raw observations (what the histogram's
/// bucketed answer must upper-bound).
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Each observation increments exactly one bucket, and that bucket's
    /// power-of-two range contains the value.
    #[test]
    fn values_land_in_their_bucket(value in 0u64..u64::MAX) {
        let h = Histogram::new();
        h.record(value);
        let counts = h.bucket_counts();
        let hot: Vec<usize> = (0..HISTOGRAM_BUCKETS).filter(|&i| counts[i] > 0).collect();
        prop_assert_eq!(hot.len(), 1, "value {} hit buckets {:?}", value, &hot);
        let i = hot[0];
        let lo = if i == 0 { 0u64 } else { 1u64 << i };
        prop_assert!(value >= lo, "value {} below bucket {} floor {}", value, i, lo);
        if i < HISTOGRAM_BUCKETS - 1 {
            prop_assert!(value < 1u64 << (i + 1), "value {} above bucket {} ceiling", value, i);
        }
    }

    /// Quantiles are monotone in the rank and conservative: for any
    /// observation set, p50 <= p95 <= p99, and each upper-bounds the
    /// exact quantile of the raw values.
    #[test]
    fn quantiles_are_monotone_and_conservative(
        values in prop::collection::vec(0u64..1_000_000_000, 1..200)
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
        prop_assert!(p50 <= p95, "p50 {} > p95 {}", p50, p95);
        prop_assert!(p95 <= p99, "p95 {} > p99 {}", p95, p99);
        for (q, got) in [(0.50, p50), (0.95, p95), (0.99, p99)] {
            let exact = exact_quantile(&values, q);
            prop_assert!(
                got >= exact,
                "q{} reported {} below exact {}", q, got, exact
            );
            // Conservative but tight: never more than one power of two
            // above the exact answer.
            prop_assert!(
                got <= exact.saturating_mul(2).saturating_add(1),
                "q{} reported {} too far above exact {}", q, got, exact
            );
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
    }

    /// Merging split histograms equals single ingestion, bucket for
    /// bucket — the property the per-request serve stats rely on.
    #[test]
    fn merge_equals_single_ingestion(
        values in prop::collection::vec(0u64..u64::MAX, 0..200),
        split in 0usize..200
    ) {
        let split = split.min(values.len());
        let single = Histogram::new();
        for &v in &values {
            single.record(v);
        }
        let (a, b) = (Histogram::new(), Histogram::new());
        for &v in &values[..split] {
            a.record(v);
        }
        for &v in &values[split..] {
            b.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), single.count());
        prop_assert_eq!(a.sum(), single.sum());
        prop_assert_eq!(a.bucket_counts(), single.bucket_counts());
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            prop_assert_eq!(a.quantile(q), single.quantile(q));
        }
    }

    /// A registry snapshot holding a histogram survives the JSON round
    /// trip through the existing metrics parser: count, sum, sparse
    /// buckets, and quantile answers all come back unchanged.
    #[test]
    fn json_round_trip_preserves_histograms(
        values in prop::collection::vec(0u64..1_000_000_000_000, 0..100)
    ) {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("serve.latency.enrich");
        for &v in &values {
            h.record(v);
        }
        let snap = registry.snapshot();
        let parsed = MetricsSnapshot::from_json_str(&snap.to_json_string())
            .expect("snapshot JSON must parse");
        let before = snap.get("serve.latency.enrich").expect("histogram in snapshot");
        let after = parsed.get("serve.latency.enrich").expect("histogram survives");
        prop_assert_eq!(before, after);
        let MetricValue::Histogram { count, sum, buckets } = after else {
            panic!("histogram decoded as wrong metric type");
        };
        prop_assert_eq!(*count, values.len() as u64);
        prop_assert_eq!(*sum, values.iter().sum::<u64>());
        prop_assert_eq!(buckets.clone(), h.sparse_buckets());
        for q in [0.5, 0.95, 0.99] {
            prop_assert_eq!(after.quantile(q), h.quantile(q));
        }
    }

    /// Absorbing a snapshot into a fresh registry reproduces the
    /// histogram exactly (the serve drain path: flush, restart, absorb).
    #[test]
    fn absorb_reconstructs_histograms(
        values in prop::collection::vec(0u64..1_000_000, 0..100)
    ) {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("serve.latency.extract");
        for &v in &values {
            h.record(v);
        }
        let snap = registry.snapshot();

        let fresh = MetricsRegistry::new();
        let restored = fresh.histogram("serve.latency.extract");
        fresh.absorb(&snap);
        prop_assert_eq!(restored.count(), h.count());
        prop_assert_eq!(restored.sum(), h.sum());
        prop_assert_eq!(restored.bucket_counts(), h.bucket_counts());
    }
}

/// Pinned bucket boundaries: the first few powers of two land exactly
/// where the doc comment says (`[2^i, 2^(i+1))`, bucket 0 holds 0 too).
#[test]
fn bucket_boundaries_are_powers_of_two() {
    for (value, want) in [
        (0u64, 0usize),
        (1, 0),
        (2, 1),
        (3, 1),
        (4, 2),
        (7, 2),
        (8, 3),
        (1023, 9),
        (1024, 10),
        (u64::MAX, 63),
    ] {
        let h = Histogram::new();
        h.record(value);
        let counts = h.bucket_counts();
        assert_eq!(
            counts[want], 1,
            "value {value} should land in bucket {want}"
        );
        assert_eq!(counts.iter().sum::<u64>(), 1);
    }
}

/// An empty histogram answers 0 for every quantile and renders as an
/// empty sparse form.
#[test]
fn empty_histogram_is_all_zeroes() {
    let h = Histogram::new();
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile(q), 0);
    }
    assert!(h.sparse_buckets().is_empty());
    assert_eq!(h.count(), 0);
}
