//! A minimal JSON value with renderer and parser.
//!
//! `thor-obs` must emit machine-readable metrics without pulling in
//! `serde` (the build environment cannot fetch crates), and the test
//! suite needs to *prove* the emitted JSON round-trips rather than just
//! eyeballing braces — hence a real, if small, parser. Numbers are kept
//! as `u64` or `f64`; strings support the standard escapes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (counters, span counts, nanoseconds).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with deterministically ordered keys.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Render compactly (no whitespace), with sorted object keys.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Keep a decimal point so the value parses back as a
                    // float, preserving the variant for round-trips.
                    if f.fract() == 0.0 && f.abs() < 1e15 {
                        let _ = write!(out, "{f:.1}");
                    } else {
                        let _ = write!(out, "{f}");
                    }
                } else {
                    // JSON has no Inf/NaN; null is the conventional fallback.
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns an error message with a byte
    /// offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Convenience: the value at `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Convenience: the integer value, if this is a `UInt`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{what} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed for metric
                            // names; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or(format!("surrogate \\u escape at byte {}", self.pos))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    #[test]
    fn renders_canonically() {
        let v = obj(vec![
            ("b", Json::UInt(2)),
            ("a", Json::Str("x\"y".into())),
            (
                "c",
                Json::Array(vec![Json::Null, Json::Bool(true), Json::Float(0.5)]),
            ),
        ]);
        assert_eq!(v.render(), r#"{"a":"x\"y","b":2,"c":[null,true,0.5]}"#);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , 2.5 , \"a\\nb\\u0041\" ] } ").unwrap();
        assert_eq!(
            v,
            obj(vec![(
                "k",
                Json::Array(vec![
                    Json::UInt(1),
                    Json::Float(2.5),
                    Json::Str("a\nbA".into())
                ])
            )])
        );
    }

    #[test]
    fn round_trips_a_metrics_shaped_document() {
        let v = obj(vec![(
            "metrics",
            obj(vec![
                (
                    "extract.candidates",
                    obj(vec![
                        ("type", Json::Str("counter".into())),
                        ("value", Json::UInt(123)),
                    ]),
                ),
                (
                    "stage.segment",
                    obj(vec![
                        ("type", Json::Str("timer".into())),
                        ("nanos", Json::UInt(456_789)),
                        ("spans", Json::UInt(7)),
                    ]),
                ),
            ]),
        )]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "{\"a\":1} x",
            "\"\\q\"",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn integers_keep_their_variant() {
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("1.0").unwrap(), Json::Float(1.0));
        assert!(matches!(Json::parse("-3").unwrap(), Json::Float(_)));
    }

    proptest! {
        /// Any tree assembled from the constructors renders to text that
        /// parses back to the identical tree.
        #[test]
        fn arbitrary_flat_objects_round_trip(
            entries in prop::collection::vec(("[a-z.]{1,12}", 0u64..1_000_000), 0..10),
            label in "\\PC{0,20}",
        ) {
            let mut map = BTreeMap::new();
            for (k, v) in entries {
                map.insert(k, Json::UInt(v));
            }
            map.insert("label".to_string(), Json::Str(label));
            let v = Json::Object(map);
            prop_assert_eq!(Json::parse(&v.render()).unwrap(), v);
        }
    }
}
