//! The [`MetricsRegistry`]: a name-keyed collection of metric handles
//! with human-table and JSON rendering.
//!
//! Registration hands out `Arc` handles; hot paths keep the handle and
//! touch only its atomics — the registry's mutex is taken solely on
//! registration and on snapshot, never per event.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::Json;
use crate::metrics::{Counter, Gauge, Histogram, StageTimer};

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Timer(Arc<StageTimer>),
    Histogram(Arc<Histogram>),
}

/// A name-keyed metric collection. Cheap to clone via [`Arc`] wrappers
/// upstream; internally a mutex-guarded ordered map.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter registered under `name`, creating it on first use.
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The stage timer registered under `name`, creating it on first use.
    pub fn timer(&self, name: &str) -> Arc<StageTimer> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Timer(Arc::new(StageTimer::new())))
        {
            Metric::Timer(t) => Arc::clone(t),
            _ => panic!("metric `{name}` is not a timer"),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Merge a snapshot into the live metrics: counters and timer
    /// totals/spans are added, gauges are overwritten. A resumed run
    /// absorbs its checkpointed prefix this way, so end-of-run metrics
    /// describe the whole logical run rather than just the tail.
    /// Snapshot entries whose name is registered under a different kind
    /// are ignored (the snapshot is advisory state, not a schema).
    pub fn absorb(&self, snapshot: &MetricsSnapshot) {
        for (name, value) in snapshot.entries() {
            match value {
                MetricValue::Counter(n) => self.counter_if_matching(name).map(|c| c.add(*n)),
                MetricValue::Gauge(v) => self.gauge_if_matching(name).map(|g| g.set(*v)),
                MetricValue::Timer { total, spans } => self
                    .timer_if_matching(name)
                    .map(|t| t.record_accumulated(*total, *spans)),
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => self
                    .histogram_if_matching(name)
                    .map(|h| h.record_state(*count, *sum, buckets)),
            };
        }
    }

    fn counter_if_matching(&self, name: &str) -> Option<Arc<Counter>> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        }
    }

    fn gauge_if_matching(&self, name: &str) -> Option<Arc<Gauge>> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        }
    }

    fn timer_if_matching(&self, name: &str) -> Option<Arc<StageTimer>> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Timer(Arc::new(StageTimer::new())))
        {
            Metric::Timer(t) => Some(Arc::clone(t)),
            _ => None,
        }
    }

    fn histogram_if_matching(&self, name: &str) -> Option<Arc<Histogram>> {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Some(Arc::clone(h)),
            _ => None,
        }
    }

    /// A point-in-time copy of every metric's value, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entries = metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Timer(t) => MetricValue::Timer {
                        total: t.total(),
                        spans: t.spans(),
                    },
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.sparse_buckets(),
                    },
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's count.
    Counter(u64),
    /// A gauge's value.
    Gauge(u64),
    /// A timer's accumulated total and span count.
    Timer {
        /// Total recorded time.
        total: Duration,
        /// Number of recorded spans.
        spans: u64,
    },
    /// A log-bucketed histogram's state: observation count, value sum,
    /// and the non-empty `(bucket index, count)` pairs, sorted by index.
    Histogram {
        /// Number of recorded observations.
        count: u64,
        /// Sum of recorded values.
        sum: u64,
        /// Sparse non-empty buckets, sorted by bucket index.
        buckets: Vec<(usize, u64)>,
    },
}

impl MetricValue {
    /// Quantile of a histogram value (upper bucket edge), 0 otherwise.
    pub fn quantile(&self, q: f64) -> u64 {
        match self {
            MetricValue::Histogram { buckets, .. } => {
                let h = crate::metrics::Histogram::new();
                h.record_state(0, 0, buckets);
                // count/sum don't affect quantiles; buckets carry them.
                h.quantile(q)
            }
            _ => 0,
        }
    }
}

/// A point-in-time view of a registry, renderable as a human table or
/// as JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// The metrics, sorted by name.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// The value registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Counter or gauge value under `name`; 0 when absent.
    pub fn count(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(n) | MetricValue::Gauge(n)) => *n,
            _ => 0,
        }
    }

    /// Render an aligned fixed-width table.
    pub fn render_table(&self) -> String {
        let mut rows: Vec<[String; 4]> = Vec::with_capacity(self.entries.len());
        for (name, value) in &self.entries {
            let row = match value {
                MetricValue::Counter(n) => {
                    [name.clone(), "counter".into(), n.to_string(), String::new()]
                }
                MetricValue::Gauge(n) => {
                    [name.clone(), "gauge".into(), n.to_string(), String::new()]
                }
                MetricValue::Timer { total, spans } => {
                    let mean = if *spans == 0 {
                        Duration::ZERO
                    } else {
                        *total / (*spans).max(1) as u32
                    };
                    [
                        name.clone(),
                        "timer".into(),
                        format!("{total:.2?} / {spans} spans"),
                        format!("mean {mean:.2?}"),
                    ]
                }
                MetricValue::Histogram { count, .. } => [
                    name.clone(),
                    "histogram".into(),
                    format!("{count} events"),
                    format!(
                        "p50<={} p95<={} p99<={}",
                        value.quantile(0.5),
                        value.quantile(0.95),
                        value.quantile(0.99)
                    ),
                ],
            };
            rows.push(row);
        }
        let mut widths = [6usize, 7, 5, 0];
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{:<w0$}  {:<w1$}  value\n",
            "metric",
            "kind",
            w0 = widths[0],
            w1 = widths[1],
        ));
        out.push_str(&"-".repeat(widths[0] + widths[1] + widths[2] + widths[3] + 6));
        out.push('\n');
        for row in &rows {
            out.push_str(
                format!(
                    "{:<w0$}  {:<w1$}  {:<w2$}  {}",
                    row[0],
                    row[1],
                    row[2],
                    row[3],
                    w0 = widths[0],
                    w1 = widths[1],
                    w2 = widths[2],
                )
                .trim_end(),
            );
            out.push('\n');
        }
        out
    }

    /// Render as a JSON document:
    /// `{"metrics":{"<name>":{"type":...,...}}}`.
    pub fn to_json(&self) -> Json {
        let mut metrics = BTreeMap::new();
        for (name, value) in &self.entries {
            let mut entry = BTreeMap::new();
            match value {
                MetricValue::Counter(n) => {
                    entry.insert("type".into(), Json::Str("counter".into()));
                    entry.insert("value".into(), Json::UInt(*n));
                }
                MetricValue::Gauge(n) => {
                    entry.insert("type".into(), Json::Str("gauge".into()));
                    entry.insert("value".into(), Json::UInt(*n));
                }
                MetricValue::Timer { total, spans } => {
                    entry.insert("type".into(), Json::Str("timer".into()));
                    entry.insert("nanos".into(), Json::UInt(total.as_nanos() as u64));
                    entry.insert("spans".into(), Json::UInt(*spans));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    entry.insert("type".into(), Json::Str("histogram".into()));
                    entry.insert("count".into(), Json::UInt(*count));
                    entry.insert("sum".into(), Json::UInt(*sum));
                    entry.insert(
                        "buckets".into(),
                        Json::Array(
                            buckets
                                .iter()
                                .map(|&(i, c)| {
                                    Json::Array(vec![Json::UInt(i as u64), Json::UInt(c)])
                                })
                                .collect(),
                        ),
                    );
                }
            }
            metrics.insert(name.clone(), Json::Object(entry));
        }
        let mut root = BTreeMap::new();
        root.insert("metrics".into(), Json::Object(metrics));
        Json::Object(root)
    }

    /// Render [`MetricsSnapshot::to_json`] as text.
    pub fn to_json_string(&self) -> String {
        self.to_json().render()
    }

    /// Parse a document produced by [`MetricsSnapshot::to_json_string`]
    /// back into a snapshot (the machine-readability guarantee the test
    /// suite holds us to).
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let root = Json::parse(text)?;
        let Some(Json::Object(metrics)) = root.get("metrics") else {
            return Err("missing `metrics` object".into());
        };
        let mut entries = Vec::with_capacity(metrics.len());
        for (name, entry) in metrics {
            let kind = match entry.get("type") {
                Some(Json::Str(k)) => k.as_str(),
                _ => return Err(format!("metric `{name}` missing `type`")),
            };
            let value = match kind {
                "counter" => MetricValue::Counter(
                    entry
                        .get("value")
                        .and_then(Json::as_u64)
                        .ok_or(format!("metric `{name}` missing `value`"))?,
                ),
                "gauge" => MetricValue::Gauge(
                    entry
                        .get("value")
                        .and_then(Json::as_u64)
                        .ok_or(format!("metric `{name}` missing `value`"))?,
                ),
                "timer" => MetricValue::Timer {
                    total: Duration::from_nanos(
                        entry
                            .get("nanos")
                            .and_then(Json::as_u64)
                            .ok_or(format!("metric `{name}` missing `nanos`"))?,
                    ),
                    spans: entry
                        .get("spans")
                        .and_then(Json::as_u64)
                        .ok_or(format!("metric `{name}` missing `spans`"))?,
                },
                "histogram" => {
                    let Some(Json::Array(pairs)) = entry.get("buckets") else {
                        return Err(format!("metric `{name}` missing `buckets` array"));
                    };
                    let mut buckets = Vec::with_capacity(pairs.len());
                    for pair in pairs {
                        let Json::Array(kv) = pair else {
                            return Err(format!("metric `{name}`: bucket entry is not a pair"));
                        };
                        let (Some(i), Some(c)) = (
                            kv.first().and_then(Json::as_u64),
                            kv.get(1).and_then(Json::as_u64),
                        ) else {
                            return Err(format!("metric `{name}`: non-integer bucket pair"));
                        };
                        if kv.len() != 2 {
                            return Err(format!("metric `{name}`: bucket entry is not a pair"));
                        }
                        buckets.push((i as usize, c));
                    }
                    MetricValue::Histogram {
                        count: entry
                            .get("count")
                            .and_then(Json::as_u64)
                            .ok_or(format!("metric `{name}` missing `count`"))?,
                        sum: entry
                            .get("sum")
                            .and_then(Json::as_u64)
                            .ok_or(format!("metric `{name}` missing `sum`"))?,
                        buckets,
                    }
                }
                other => return Err(format!("metric `{name}` has unknown type `{other}`")),
            };
            entries.push((name.clone(), value));
        }
        Ok(Self { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(registry.snapshot().count("x"), 3);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.timer("x");
        let _ = registry.counter("x");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let registry = MetricsRegistry::new();
        registry.counter("b.count").add(5);
        registry.gauge("a.size").set(9);
        registry.timer("c.time").record(Duration::from_millis(3));
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.size", "b.count", "c.time"]);
        assert_eq!(snap.get("a.size"), Some(&MetricValue::Gauge(9)));
        assert_eq!(
            snap.get("c.time"),
            Some(&MetricValue::Timer {
                total: Duration::from_millis(3),
                spans: 1
            })
        );
    }

    #[test]
    fn json_round_trip() {
        let registry = MetricsRegistry::new();
        registry.counter("extract.candidates").add(123);
        registry.gauge("vocab.words").set(4096);
        registry
            .timer("stage.segment")
            .record(Duration::from_micros(456));
        registry
            .timer("stage.segment")
            .record(Duration::from_micros(44));
        let snap = registry.snapshot();
        let text = snap.to_json_string();
        let parsed = MetricsSnapshot::from_json_str(&text).expect("round trip");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn table_lists_every_metric() {
        let registry = MetricsRegistry::new();
        registry.counter("candidates").add(7);
        registry.timer("segment").record(Duration::from_millis(12));
        let table = registry.snapshot().render_table();
        assert!(table.contains("candidates"), "{table}");
        assert!(table.contains('7'), "{table}");
        assert!(table.contains("segment"), "{table}");
        assert!(table.contains("spans"), "{table}");
    }

    #[test]
    fn empty_registry_renders() {
        let snap = MetricsRegistry::new().snapshot();
        assert!(snap.render_table().contains("metric"));
        assert_eq!(
            MetricsSnapshot::from_json_str(&snap.to_json_string()).unwrap(),
            snap
        );
    }
}
