//! Pipeline observability for the THOR reproduction.
//!
//! Dependency-free (std-only) instrumentation: lock-free [`Counter`],
//! [`Gauge`], and [`StageTimer`] primitives, a name-keyed
//! [`MetricsRegistry`] that renders snapshots as an aligned human table
//! or a machine-readable JSON document, and [`PipelineMetrics`] — the
//! pre-wired handle the enrichment pipeline threads through its stages
//! (segmentation, NP chunking, matching, refinement, slot filling).
//!
//! All primitives are a few relaxed `AtomicU64`s, so handles can be
//! cloned into the document-parallel extraction workers without locks
//! on the hot path; totals are exact once the workers are joined.

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod pipeline;
pub mod registry;

pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, Span, StageTimer, HISTOGRAM_BUCKETS};
pub use pipeline::PipelineMetrics;
pub use registry::{MetricValue, MetricsRegistry, MetricsSnapshot};
