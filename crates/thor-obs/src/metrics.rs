//! Lock-free metric primitives: [`Counter`], [`Gauge`], [`StageTimer`].
//!
//! All three are a handful of `AtomicU64`s with relaxed ordering —
//! individual updates cost one uncontended atomic RMW, so they are safe
//! to drop into hot loops and to share across the document-parallel
//! extraction workers. Relaxed ordering means a concurrent reader may
//! observe the counters of an in-flight run mid-update; totals are exact
//! once the writing threads are joined, which is the only point the
//! pipeline reads them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (sizes, cardinalities).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is higher than the current one.
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Accumulated wall-clock time of a pipeline stage: total nanoseconds
/// plus the number of recorded spans, so both totals and means are
/// available. Monotonic ([`Instant`]-based) and thread-safe.
#[derive(Debug, Default)]
pub struct StageTimer {
    nanos: AtomicU64,
    spans: AtomicU64,
}

impl StageTimer {
    /// A timer with nothing recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one span of `d`.
    pub fn record(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.spans.fetch_add(1, Ordering::Relaxed);
    }

    /// Merge a previously accumulated `(total, spans)` pair in one shot —
    /// how a resumed run absorbs the timers of its checkpointed prefix.
    pub fn record_accumulated(&self, total: Duration, spans: u64) {
        self.nanos
            .fetch_add(total.as_nanos() as u64, Ordering::Relaxed);
        self.spans.fetch_add(spans, Ordering::Relaxed);
    }

    /// Start a span that records itself when dropped.
    pub fn start(&self) -> Span<'_> {
        Span {
            timer: self,
            begun: Instant::now(),
        }
    }

    /// Run `f`, record its duration, and return the result together
    /// with the measured duration (so per-call timing fields and the
    /// accumulated metric come from the same measurement).
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> (T, Duration) {
        let t0 = Instant::now();
        let out = f();
        let d = t0.elapsed();
        self.record(d);
        (out, d)
    }

    /// Total recorded time.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Number of recorded spans.
    pub fn spans(&self) -> u64 {
        self.spans.load(Ordering::Relaxed)
    }

    /// Mean span duration (zero when nothing was recorded).
    pub fn mean(&self) -> Duration {
        let n = self.spans();
        if n == 0 {
            Duration::ZERO
        } else {
            self.total() / n as u32
        }
    }
}

/// An in-flight [`StageTimer`] span; records on drop.
#[derive(Debug)]
pub struct Span<'a> {
    timer: &'a StageTimer,
    begun: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.timer.record(self.begun.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_concurrent_increments_are_exact() {
        let counter = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                    c.add(5);
                });
            }
        });
        assert_eq!(counter.get(), 8 * 10_000 + 8 * 5);
    }

    #[test]
    fn gauge_set_and_max() {
        let g = Gauge::new();
        g.set(10);
        assert_eq!(g.get(), 10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
        g.set_max(12);
        assert_eq!(g.get(), 12);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn timer_accumulates_spans() {
        let t = StageTimer::new();
        t.record(Duration::from_micros(500));
        t.record(Duration::from_micros(1500));
        assert_eq!(t.spans(), 2);
        assert_eq!(t.total(), Duration::from_micros(2000));
        assert_eq!(t.mean(), Duration::from_micros(1000));
    }

    #[test]
    fn timer_concurrent_recording_is_exact() {
        let timer = Arc::new(StageTimer::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = Arc::clone(&timer);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        t.record(Duration::from_nanos(100));
                    }
                });
            }
        });
        assert_eq!(timer.spans(), 8000);
        assert_eq!(timer.total(), Duration::from_nanos(800_000));
    }

    #[test]
    fn span_guard_records_on_drop() {
        let t = StageTimer::new();
        {
            let _span = t.start();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(t.spans(), 1);
        assert!(t.total() >= Duration::from_millis(2));
    }

    #[test]
    fn time_returns_result_and_duration() {
        let t = StageTimer::new();
        let (value, d) = t.time(|| {
            std::thread::sleep(Duration::from_millis(1));
            42
        });
        assert_eq!(value, 42);
        assert!(d >= Duration::from_millis(1));
        assert_eq!(t.total(), d);
    }

    #[test]
    fn empty_timer_mean_is_zero() {
        assert_eq!(StageTimer::new().mean(), Duration::ZERO);
    }
}
