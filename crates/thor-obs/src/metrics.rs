//! Lock-free metric primitives: [`Counter`], [`Gauge`], [`StageTimer`].
//!
//! All three are a handful of `AtomicU64`s with relaxed ordering —
//! individual updates cost one uncontended atomic RMW, so they are safe
//! to drop into hot loops and to share across the document-parallel
//! extraction workers. Relaxed ordering means a concurrent reader may
//! observe the counters of an in-flight run mid-update; totals are exact
//! once the writing threads are joined, which is the only point the
//! pipeline reads them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (sizes, cardinalities).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is higher than the current one.
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Accumulated wall-clock time of a pipeline stage: total nanoseconds
/// plus the number of recorded spans, so both totals and means are
/// available. Monotonic ([`Instant`]-based) and thread-safe.
#[derive(Debug, Default)]
pub struct StageTimer {
    nanos: AtomicU64,
    spans: AtomicU64,
}

impl StageTimer {
    /// A timer with nothing recorded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one span of `d`.
    pub fn record(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.spans.fetch_add(1, Ordering::Relaxed);
    }

    /// Merge a previously accumulated `(total, spans)` pair in one shot —
    /// how a resumed run absorbs the timers of its checkpointed prefix.
    pub fn record_accumulated(&self, total: Duration, spans: u64) {
        self.nanos
            .fetch_add(total.as_nanos() as u64, Ordering::Relaxed);
        self.spans.fetch_add(spans, Ordering::Relaxed);
    }

    /// Start a span that records itself when dropped.
    pub fn start(&self) -> Span<'_> {
        Span {
            timer: self,
            begun: Instant::now(),
        }
    }

    /// Run `f`, record its duration, and return the result together
    /// with the measured duration (so per-call timing fields and the
    /// accumulated metric come from the same measurement).
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> (T, Duration) {
        let t0 = Instant::now();
        let out = f();
        let d = t0.elapsed();
        self.record(d);
        (out, d)
    }

    /// Total recorded time.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Number of recorded spans.
    pub fn spans(&self) -> u64 {
        self.spans.load(Ordering::Relaxed)
    }

    /// Mean span duration (zero when nothing was recorded).
    pub fn mean(&self) -> Duration {
        let n = self.spans();
        if n == 0 {
            Duration::ZERO
        } else {
            self.total() / n as u32
        }
    }
}

/// An in-flight [`StageTimer`] span; records on drop.
#[derive(Debug)]
pub struct Span<'a> {
    timer: &'a StageTimer,
    begun: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.timer.record(self.begun.elapsed());
    }
}

/// Number of buckets in a [`Histogram`] — one per power of two of the
/// recorded value, covering the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free log-bucketed histogram for latency-style distributions.
///
/// Bucket `i` holds values `v` with `floor(log2(max(v, 1))) == i`, i.e.
/// `[2^i, 2^(i+1))` (bucket 0 additionally holds 0). Recording is one
/// relaxed atomic RMW per observation, so per-request serve paths can
/// hammer a shared handle. Quantiles are answered from the bucket
/// cumulative counts and always return a bucket's *inclusive upper
/// bound*, which makes them conservative (never under-reported) and
/// monotone in the requested rank: `p50 <= p95 <= p99` by construction.
///
/// Values are unit-agnostic `u64`s; the serve layer records nanoseconds
/// via [`Histogram::record_duration`].
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The bucket index of a value: `floor(log2(max(v, 1)))`.
fn bucket_index(value: u64) -> usize {
    63 - value.max(1).leading_zeros() as usize
}

/// The inclusive upper bound of bucket `i` — what quantile queries
/// report for observations landing in that bucket.
fn bucket_upper_bound(i: usize) -> u64 {
    if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping on overflow, like the atomics).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The per-bucket counts, dense over all [`HISTOGRAM_BUCKETS`].
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0..=1.0`) as a conservative upper bound: the
    /// inclusive upper edge of the bucket containing the rank-`⌈q·n⌉`
    /// observation. Returns 0 when nothing was recorded.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Merge another histogram's observations into this one. Merging
    /// per-worker histograms is exactly equivalent to recording every
    /// observation into a single histogram (bucket counts are additive).
    pub fn merge(&self, other: &Histogram) {
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Merge a previously captured `(count, sum, bucket counts)` state —
    /// how [`crate::MetricsRegistry::absorb`] folds a snapshot back in.
    pub fn record_state(&self, count: u64, sum: u64, buckets: &[(usize, u64)]) {
        self.count.fetch_add(count, Ordering::Relaxed);
        self.sum.fetch_add(sum, Ordering::Relaxed);
        for &(i, c) in buckets {
            if i < HISTOGRAM_BUCKETS {
                self.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
    }

    /// The non-empty buckets as sorted `(index, count)` pairs — the
    /// sparse form snapshots and JSON use.
    pub fn sparse_buckets(&self) -> Vec<(usize, u64)> {
        self.bucket_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_concurrent_increments_are_exact() {
        let counter = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                    c.add(5);
                });
            }
        });
        assert_eq!(counter.get(), 8 * 10_000 + 8 * 5);
    }

    #[test]
    fn gauge_set_and_max() {
        let g = Gauge::new();
        g.set(10);
        assert_eq!(g.get(), 10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
        g.set_max(12);
        assert_eq!(g.get(), 12);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn timer_accumulates_spans() {
        let t = StageTimer::new();
        t.record(Duration::from_micros(500));
        t.record(Duration::from_micros(1500));
        assert_eq!(t.spans(), 2);
        assert_eq!(t.total(), Duration::from_micros(2000));
        assert_eq!(t.mean(), Duration::from_micros(1000));
    }

    #[test]
    fn timer_concurrent_recording_is_exact() {
        let timer = Arc::new(StageTimer::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let t = Arc::clone(&timer);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        t.record(Duration::from_nanos(100));
                    }
                });
            }
        });
        assert_eq!(timer.spans(), 8000);
        assert_eq!(timer.total(), Duration::from_nanos(800_000));
    }

    #[test]
    fn span_guard_records_on_drop() {
        let t = StageTimer::new();
        {
            let _span = t.start();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(t.spans(), 1);
        assert!(t.total() >= Duration::from_millis(2));
    }

    #[test]
    fn time_returns_result_and_duration() {
        let t = StageTimer::new();
        let (value, d) = t.time(|| {
            std::thread::sleep(Duration::from_millis(1));
            42
        });
        assert_eq!(value, 42);
        assert!(d >= Duration::from_millis(1));
        assert_eq!(t.total(), d);
    }

    #[test]
    fn empty_timer_mean_is_zero() {
        assert_eq!(StageTimer::new().mean(), Duration::ZERO);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Values land in the bucket whose range [2^i, 2^(i+1)) contains
        // them; 0 shares bucket 0 with 1.
        for (value, bucket) in [
            (0u64, 0usize),
            (1, 0),
            (2, 1),
            (3, 1),
            (4, 2),
            (7, 2),
            (8, 3),
            (1023, 9),
            (1024, 10),
            (u64::MAX, 63),
        ] {
            assert_eq!(bucket_index(value), bucket, "value {value}");
        }
        assert_eq!(bucket_upper_bound(0), 1);
        assert_eq!(bucket_upper_bound(3), 15);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_are_conservative_and_monotone() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 1000, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 6060);
        // Every quantile is >= the true value at that rank (upper edge).
        assert!(h.quantile(0.5) >= 30);
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert_eq!(Histogram::new().quantile(0.99), 0, "empty histogram");
    }

    #[test]
    fn histogram_merge_equals_single_ingestion() {
        let single = Histogram::new();
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..1000u64 {
            single.record(v * 7);
            if v % 2 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), single.count());
        assert_eq!(a.sum(), single.sum());
        assert_eq!(a.bucket_counts(), single.bucket_counts());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q), single.quantile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_concurrent_recording_is_exact() {
        let h = Arc::new(Histogram::new());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 8000);
    }

    #[test]
    fn histogram_duration_and_sparse_round_trip() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3)); // 3000ns -> bucket 11
        h.record(0);
        let sparse = h.sparse_buckets();
        assert_eq!(sparse, vec![(0, 1), (11, 1)]);
        let rebuilt = Histogram::new();
        rebuilt.record_state(h.count(), h.sum(), &sparse);
        assert_eq!(rebuilt.bucket_counts(), h.bucket_counts());
        assert_eq!(rebuilt.count(), 2);
    }
}
