//! [`PipelineMetrics`]: the pre-wired handle the THOR pipeline threads
//! through its stages.
//!
//! The handle is a cheap [`Clone`] (a bundle of `Arc`s) so the
//! document-parallel extraction workers can each own a copy and hammer
//! the same underlying atomics. Every handle is registered in a shared
//! [`MetricsRegistry`], so a snapshot taken at the end of a run sees
//! everything the stages recorded.

use std::sync::Arc;

use crate::metrics::{Counter, Gauge, StageTimer};
use crate::registry::{MetricsRegistry, MetricsSnapshot};

/// Metric handles for every instrumented THOR pipeline stage.
///
/// Construct once per run with [`PipelineMetrics::new`], clone freely
/// into worker threads, and call [`PipelineMetrics::snapshot`] when the
/// run is over.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    registry: Arc<MetricsRegistry>,

    /// Wall-clock of the preparation phase (vocabulary fine-tuning /
    /// representative-vector expansion).
    pub prepare: Arc<StageTimer>,
    /// Wall-clock of the inference phase (per-document extraction).
    pub inference: Arc<StageTimer>,
    /// Wall-clock of text segmentation, one span per document.
    pub segment: Arc<StageTimer>,
    /// Wall-clock of sentence parsing + noun-phrase chunking.
    pub chunk: Arc<StageTimer>,
    /// Wall-clock of anchored phrase matching against the concept store.
    pub match_phrase: Arc<StageTimer>,
    /// Wall-clock of candidate refinement (lexical-similarity scoring).
    pub refine: Arc<StageTimer>,
    /// Wall-clock of slot filling into the integrated table.
    pub slot_fill: Arc<StageTimer>,
    /// Wall-clock of building the structure-of-arrays vector index at
    /// fine-tune time.
    pub index_build: Arc<StageTimer>,

    /// Documents processed.
    pub docs: Arc<Counter>,
    /// Sentences parsed.
    pub sentences: Arc<Counter>,
    /// Segments produced by text segmentation.
    pub segments: Arc<Counter>,
    /// Noun phrases chunked.
    pub noun_phrases: Arc<Counter>,
    /// Subphrases enumerated and embedded during matching.
    pub subphrases: Arc<Counter>,
    /// Candidate (phrase, concept) pairs scored.
    pub candidates: Arc<Counter>,
    /// Entities surviving refinement.
    pub entities: Arc<Counter>,
    /// Candidates fully scored by syntactic refinement.
    pub refine_scored: Arc<Counter>,
    /// Candidates skipped by refinement's score-bound early abandon
    /// (their upper bound could not beat the running best).
    pub refine_pruned: Arc<Counter>,
    /// Whole concepts skipped by the index's concept-level cosine
    /// bound during candidate generation.
    pub pruned_concepts: Arc<Counter>,
    /// Row clusters skipped by their centroid+radius bound during
    /// candidate generation.
    pub pruned_clusters: Arc<Counter>,
    /// Index rows never exactly scored (covered by a skipped concept
    /// or cluster, or dropped by the quantized filter).
    pub pruned_rows: Arc<Counter>,
    /// Rows that survived the quantized approximate filter and were
    /// exactly rescored in f32/f64.
    pub rescored_rows: Arc<Counter>,
    /// Slot values newly inserted into the table.
    pub slots_inserted: Arc<Counter>,
    /// Slot values skipped as duplicates.
    pub slots_duplicate: Arc<Counter>,
    /// Words added to representative vectors during fine-tuning.
    pub expansion_words: Arc<Counter>,
    /// Phrase-cache hits during candidate generation.
    pub cache_hits: Arc<Counter>,
    /// Phrase-cache misses during candidate generation.
    pub cache_misses: Arc<Counter>,
    /// Documents quarantined by the fault-tolerant run layer.
    pub quarantine_docs: Arc<Counter>,
    /// Malformed input rows quarantined by lenient CSV parsing.
    pub quarantine_rows: Arc<Counter>,

    /// Vocabulary size visible to fine-tuning.
    pub vocab_words: Arc<Gauge>,
    /// Representative-vector count after fine-tuning.
    pub cluster_representatives: Arc<Gauge>,
    /// Rows in the vector index (representatives across all concepts).
    pub index_rows: Arc<Gauge>,
}

impl PipelineMetrics {
    /// A fresh metrics handle with every stage registered at zero.
    pub fn new() -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        Self {
            prepare: registry.timer("pipeline.prepare"),
            inference: registry.timer("pipeline.inference"),
            segment: registry.timer("stage.segment"),
            chunk: registry.timer("stage.chunk"),
            match_phrase: registry.timer("stage.match"),
            refine: registry.timer("stage.refine"),
            slot_fill: registry.timer("stage.slot_fill"),
            index_build: registry.timer("index.build"),
            docs: registry.counter("docs"),
            sentences: registry.counter("sentences"),
            segments: registry.counter("segments"),
            noun_phrases: registry.counter("noun_phrases"),
            subphrases: registry.counter("subphrases"),
            candidates: registry.counter("candidates"),
            entities: registry.counter("entities"),
            refine_scored: registry.counter("refine.scored"),
            refine_pruned: registry.counter("refine.pruned"),
            pruned_concepts: registry.counter("index.pruned.concepts"),
            pruned_clusters: registry.counter("index.pruned.clusters"),
            pruned_rows: registry.counter("index.pruned.rows"),
            rescored_rows: registry.counter("index.rescored"),
            slots_inserted: registry.counter("slots.inserted"),
            slots_duplicate: registry.counter("slots.duplicate"),
            expansion_words: registry.counter("expansion.words"),
            cache_hits: registry.counter("cache.hit"),
            cache_misses: registry.counter("cache.miss"),
            quarantine_docs: registry.counter("quarantine.docs"),
            quarantine_rows: registry.counter("quarantine.rows"),
            vocab_words: registry.gauge("vocab.words"),
            cluster_representatives: registry.gauge("cluster.representatives"),
            index_rows: registry.gauge("index.rows"),
            registry,
        }
    }

    /// The registry backing this handle, for registering extra
    /// run-specific metrics alongside the standard set.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A point-in-time copy of every metric recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Merge a previously captured snapshot into the live metrics (see
    /// [`MetricsRegistry::absorb`]) — used when resuming a checkpointed
    /// run so counters cover the whole logical run.
    pub fn absorb(&self, snapshot: &MetricsSnapshot) {
        self.registry.absorb(snapshot);
    }

    /// Render the current values as an aligned human-readable table.
    pub fn render_table(&self) -> String {
        self.snapshot().render_table()
    }

    /// Render the current values as a machine-readable JSON document.
    pub fn render_json(&self) -> String {
        self.snapshot().to_json_string()
    }
}

impl Default for PipelineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn clones_share_counters() {
        let metrics = PipelineMetrics::new();
        let clone = metrics.clone();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = metrics.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.candidates.inc();
                    }
                });
            }
        });
        clone.candidates.add(10);
        assert_eq!(metrics.snapshot().count("candidates"), 4010);
    }

    #[test]
    fn snapshot_contains_standard_set() {
        let metrics = PipelineMetrics::new();
        metrics.docs.add(3);
        metrics.segment.record(Duration::from_millis(5));
        metrics.vocab_words.set(1234);
        let snap = metrics.snapshot();
        for name in [
            "pipeline.prepare",
            "pipeline.inference",
            "stage.segment",
            "stage.chunk",
            "stage.match",
            "stage.refine",
            "stage.slot_fill",
            "index.build",
            "docs",
            "sentences",
            "segments",
            "noun_phrases",
            "subphrases",
            "candidates",
            "entities",
            "refine.scored",
            "refine.pruned",
            "index.pruned.concepts",
            "index.pruned.clusters",
            "index.pruned.rows",
            "index.rescored",
            "slots.inserted",
            "slots.duplicate",
            "expansion.words",
            "cache.hit",
            "cache.miss",
            "quarantine.docs",
            "quarantine.rows",
            "vocab.words",
            "cluster.representatives",
            "index.rows",
        ] {
            assert!(snap.get(name).is_some(), "missing metric `{name}`");
        }
        assert_eq!(snap.count("docs"), 3);
        assert_eq!(snap.count("vocab.words"), 1234);
    }

    #[test]
    fn absorb_merges_checkpointed_prefix() {
        let before = PipelineMetrics::new();
        before.docs.add(5);
        before.quarantine_docs.add(2);
        before.vocab_words.set(100);
        before.segment.record(Duration::from_millis(8));
        let json = before.render_json();
        let snapshot = crate::registry::MetricsSnapshot::from_json_str(&json).unwrap();

        let resumed = PipelineMetrics::new();
        resumed.docs.add(3);
        resumed.absorb(&snapshot);
        let snap = resumed.snapshot();
        assert_eq!(snap.count("docs"), 8);
        assert_eq!(snap.count("quarantine.docs"), 2);
        assert_eq!(snap.count("vocab.words"), 100);
        match snap.get("stage.segment") {
            Some(crate::registry::MetricValue::Timer { total, spans }) => {
                assert_eq!(*spans, 1);
                assert_eq!(*total, Duration::from_millis(8));
            }
            other => panic!("{other:?}"),
        }
    }

    /// The serve-layer robustness metrics (hot reload, supervision,
    /// deadline budgets) survive the JSON round trip `/metrics` relies
    /// on — counters and the health gauge keep exact values.
    #[test]
    fn serve_robustness_metrics_round_trip() {
        let metrics = PipelineMetrics::new();
        let registry = metrics.registry();
        registry.counter("reload.ok").add(7);
        registry.counter("reload.rejected").add(2);
        registry.counter("worker.restarts").add(3);
        registry.counter("deadline.exceeded").add(11);
        registry.gauge("serve.health").set(2); // degraded

        let json = metrics.render_json();
        let parsed = crate::registry::MetricsSnapshot::from_json_str(&json).expect("valid json");
        assert_eq!(parsed.count("reload.ok"), 7);
        assert_eq!(parsed.count("reload.rejected"), 2);
        assert_eq!(parsed.count("worker.restarts"), 3);
        assert_eq!(parsed.count("deadline.exceeded"), 11);
        match parsed.get("serve.health") {
            Some(crate::registry::MetricValue::Gauge(2)) => {}
            other => panic!("serve.health round-tripped as {other:?}"),
        }
        // And they merge (the resume/absorb path) like any other metric.
        let resumed = PipelineMetrics::new();
        resumed.registry().counter("reload.ok").add(1);
        resumed.absorb(&parsed);
        assert_eq!(resumed.snapshot().count("reload.ok"), 8);
        assert_eq!(resumed.snapshot().count("serve.health"), 2);
    }

    /// The incremental-engine metrics (delta application, chain
    /// compaction, chain depth) behave like the rest of the registry:
    /// exact values through the JSON round trip and through absorb.
    #[test]
    fn delta_metrics_round_trip() {
        let metrics = PipelineMetrics::new();
        let registry = metrics.registry();
        registry.counter("delta.applied").add(4);
        registry.counter("delta.rejected").add(1);
        registry.counter("compact.runs").add(2);
        registry.gauge("engine.chain_depth").set(3);

        let json = metrics.render_json();
        let parsed = crate::registry::MetricsSnapshot::from_json_str(&json).expect("valid json");
        assert_eq!(parsed.count("delta.applied"), 4);
        assert_eq!(parsed.count("delta.rejected"), 1);
        assert_eq!(parsed.count("compact.runs"), 2);
        match parsed.get("engine.chain_depth") {
            Some(crate::registry::MetricValue::Gauge(3)) => {}
            other => panic!("engine.chain_depth round-tripped as {other:?}"),
        }

        let resumed = PipelineMetrics::new();
        resumed.registry().counter("delta.applied").add(1);
        resumed.absorb(&parsed);
        let snap = resumed.snapshot();
        assert_eq!(snap.count("delta.applied"), 5);
        assert_eq!(snap.count("engine.chain_depth"), 3);
    }

    /// The prune-effectiveness counters of sub-linear candidate
    /// generation round-trip through JSON and merge through absorb
    /// exactly, so `--metrics` and `/metrics` report true totals even
    /// across checkpoint resumes.
    #[test]
    fn prune_metrics_round_trip() {
        let metrics = PipelineMetrics::new();
        metrics.pruned_concepts.add(120);
        metrics.pruned_clusters.add(45);
        metrics.pruned_rows.add(9_000);
        metrics.rescored_rows.add(17);

        let json = metrics.render_json();
        let parsed = crate::registry::MetricsSnapshot::from_json_str(&json).expect("valid json");
        assert_eq!(parsed.count("index.pruned.concepts"), 120);
        assert_eq!(parsed.count("index.pruned.clusters"), 45);
        assert_eq!(parsed.count("index.pruned.rows"), 9_000);
        assert_eq!(parsed.count("index.rescored"), 17);

        let resumed = PipelineMetrics::new();
        resumed.pruned_rows.add(1_000);
        resumed.rescored_rows.add(3);
        resumed.absorb(&parsed);
        let snap = resumed.snapshot();
        assert_eq!(snap.count("index.pruned.rows"), 10_000);
        assert_eq!(snap.count("index.rescored"), 20);
        assert_eq!(snap.count("index.pruned.concepts"), 120);
    }

    #[test]
    fn renders_both_formats() {
        let metrics = PipelineMetrics::new();
        metrics.entities.add(9);
        assert!(metrics.render_table().contains("entities"));
        let json = metrics.render_json();
        let parsed = crate::registry::MetricsSnapshot::from_json_str(&json).expect("valid json");
        assert_eq!(parsed.count("entities"), 9);
    }
}
