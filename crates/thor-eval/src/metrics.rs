//! Aggregate metrics: SemEval P/R/F1, raw counts, per-concept breakdown,
//! sensitivity.

use std::collections::BTreeMap;

use crate::align::{align, Annotation, MatchClass};

/// Per-concept counts and scores (Tables VII, VIII, Fig 10).
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptReport {
    /// Concept label (lowercase).
    pub concept: String,
    /// Gold entities of this concept.
    pub gold: usize,
    /// Predictions labeled with this concept.
    pub predicted: usize,
    /// Predictions of this concept that hit a gold entity of the same
    /// concept (exactly or partially) — the paper's per-concept TP.
    pub tp: usize,
    /// Gold entities of this concept not recognized by any same-concept
    /// prediction — the paper's per-concept FN.
    pub fn_: usize,
    /// Precision (partial-credit).
    pub precision: f64,
    /// Recall (partial-credit).
    pub recall: f64,
    /// F1 (harmonic mean of partial-credit P and R).
    pub f1: f64,
    /// Sensitivity = TP / gold, counting partial hits as recognized.
    pub sensitivity: f64,
}

/// Full evaluation report.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Exact boundary+type matches.
    pub correct: usize,
    /// Boundary-overlap same-type matches.
    pub partial: usize,
    /// Boundary-overlap wrong-type matches.
    pub incorrect: usize,
    /// Predictions with no gold counterpart.
    pub spurious: usize,
    /// Gold entities with no prediction.
    pub missing: usize,
    /// Number of gold entities.
    pub gold_total: usize,
    /// Number of predictions.
    pub predicted_total: usize,
    /// Partial-credit precision.
    pub precision: f64,
    /// Partial-credit recall.
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
    /// Raw true positives (correct + partial) — Table VI's "Correct
    /// Predictions (TP)".
    pub tp: usize,
    /// Raw false positives (incorrect + spurious) — Table VI's
    /// "Incorrect Predictions (FP)".
    pub fp: usize,
    /// Raw false negatives — gold entities not recognized.
    pub fn_: usize,
    /// Overall sensitivity (TP / gold).
    pub sensitivity: f64,
    /// Per-concept breakdown, sorted by concept name.
    pub per_concept: Vec<ConceptReport>,
}

fn f1(p: f64, r: f64) -> f64 {
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Evaluate `predictions` against `gold` (SemEval-2013 partial-match).
pub fn evaluate(predictions: &[Annotation], gold: &[Annotation]) -> EvalReport {
    let (aligned, missing_idx) = align(predictions, gold);

    let mut correct = 0usize;
    let mut partial = 0usize;
    let mut incorrect = 0usize;
    let mut spurious = 0usize;
    for a in &aligned {
        match a.class {
            MatchClass::Correct => correct += 1,
            MatchClass::Partial => partial += 1,
            MatchClass::Incorrect => incorrect += 1,
            MatchClass::Spurious => spurious += 1,
        }
    }
    let missing = missing_idx.len();
    let possible = (correct + partial + incorrect + missing) as f64;
    let actual = predictions.len() as f64;
    let credit = correct as f64 + 0.5 * partial as f64;
    let precision = if actual == 0.0 { 0.0 } else { credit / actual };
    let recall = if possible == 0.0 {
        0.0
    } else {
        credit / possible
    };

    // ---- per-concept ----
    // Index sets by concept.
    let mut concepts: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new(); // gold, pred, tp
    for g in gold {
        concepts.entry(g.concept.clone()).or_default().0 += 1;
    }
    for p in predictions {
        concepts.entry(p.concept.clone()).or_default().1 += 1;
    }
    for a in &aligned {
        if matches!(a.class, MatchClass::Correct | MatchClass::Partial) {
            let c = &predictions[a.prediction].concept;
            concepts.entry(c.clone()).or_default().2 += 1;
        }
    }
    let per_concept: Vec<ConceptReport> = concepts
        .into_iter()
        .map(|(concept, (g, p, tp))| {
            let prec = if p == 0 { 0.0 } else { tp as f64 / p as f64 };
            let rec = if g == 0 { 0.0 } else { tp as f64 / g as f64 };
            ConceptReport {
                concept,
                gold: g,
                predicted: p,
                tp,
                fn_: g.saturating_sub(tp),
                precision: prec,
                recall: rec,
                f1: f1(prec, rec),
                sensitivity: rec,
            }
        })
        .collect();

    let tp = correct + partial;
    let gold_total = gold.len();
    EvalReport {
        correct,
        partial,
        incorrect,
        spurious,
        missing,
        gold_total,
        predicted_total: predictions.len(),
        precision,
        recall,
        f1: f1(precision, recall),
        tp,
        fp: predictions.len() - tp,
        fn_: gold_total.saturating_sub(tp),
        sensitivity: if gold_total == 0 {
            0.0
        } else {
            tp as f64 / gold_total as f64
        },
        per_concept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ann(doc: &str, concept: &str, phrase: &str) -> Annotation {
        Annotation::new(doc, concept, phrase)
    }

    #[test]
    fn perfect_predictions() {
        let gold = vec![
            ann("d", "anatomy", "lungs"),
            ann("d", "complication", "empyema"),
        ];
        let r = evaluate(&gold, &gold);
        assert_eq!(r.correct, 2);
        assert_eq!((r.precision, r.recall, r.f1), (1.0, 1.0, 1.0));
        assert_eq!(r.fp, 0);
        assert_eq!(r.fn_, 0);
        assert_eq!(r.sensitivity, 1.0);
    }

    #[test]
    fn no_predictions() {
        let gold = vec![ann("d", "anatomy", "lungs")];
        let r = evaluate(&[], &gold);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.f1, 0.0);
        assert_eq!(r.missing, 1);
        assert_eq!(r.fn_, 1);
    }

    #[test]
    fn empty_gold_all_spurious() {
        let preds = vec![ann("d", "anatomy", "lungs")];
        let r = evaluate(&preds, &[]);
        assert_eq!(r.spurious, 1);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.recall, 0.0);
    }

    #[test]
    fn partial_gets_half_credit() {
        let gold = vec![ann("d", "anatomy", "main vestibular nerve")];
        let preds = vec![ann("d", "anatomy", "vestibular")];
        let r = evaluate(&preds, &gold);
        assert_eq!(r.partial, 1);
        assert_eq!(r.precision, 0.5);
        assert_eq!(r.recall, 0.5);
        assert_eq!(r.tp, 1, "partial counts as recognized for raw TP");
        assert_eq!(r.sensitivity, 1.0, "sensitivity counts partial hits");
    }

    #[test]
    fn semeval_mixed_example() {
        // 2 gold; 1 exact, 1 spurious, 1 missing.
        let gold = vec![ann("d", "anatomy", "lungs"), ann("d", "anatomy", "heart")];
        let preds = vec![ann("d", "anatomy", "lungs"), ann("d", "anatomy", "kidney")];
        let r = evaluate(&preds, &gold);
        assert_eq!((r.correct, r.spurious, r.missing), (1, 1, 1));
        assert_eq!(r.precision, 0.5);
        assert_eq!(r.recall, 0.5);
    }

    #[test]
    fn per_concept_breakdown() {
        let gold = vec![
            ann("d", "anatomy", "lungs"),
            ann("d", "anatomy", "heart"),
            ann("d", "complication", "empyema"),
        ];
        let preds = vec![
            ann("d", "anatomy", "lungs"),
            ann("d", "complication", "empyema"),
            ann("d", "complication", "nonsense"),
        ];
        let r = evaluate(&preds, &gold);
        let anatomy = r
            .per_concept
            .iter()
            .find(|c| c.concept == "anatomy")
            .unwrap();
        assert_eq!(
            (anatomy.gold, anatomy.predicted, anatomy.tp, anatomy.fn_),
            (2, 1, 1, 1)
        );
        assert_eq!(anatomy.sensitivity, 0.5);
        let compl = r
            .per_concept
            .iter()
            .find(|c| c.concept == "complication")
            .unwrap();
        assert_eq!((compl.gold, compl.predicted, compl.tp), (1, 2, 1));
        assert!((compl.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wrong_type_counts_against_both() {
        let gold = vec![ann("d", "anatomy", "blood vessels")];
        let preds = vec![ann("d", "complication", "blood")];
        let r = evaluate(&preds, &gold);
        assert_eq!(r.incorrect, 1);
        assert_eq!(r.precision, 0.0);
        assert_eq!(r.recall, 0.0);
        assert_eq!(r.fp, 1);
    }

    proptest! {
        #[test]
        fn metrics_in_unit_interval(
            gold_phrases in prop::collection::vec("[a-d]{1,3}", 0..8),
            pred_phrases in prop::collection::vec("[a-d]{1,3}", 0..8),
        ) {
            let gold: Vec<Annotation> =
                gold_phrases.iter().map(|p| ann("d", "c", p)).collect();
            let preds: Vec<Annotation> =
                pred_phrases.iter().map(|p| ann("d", "c", p)).collect();
            let r = evaluate(&preds, &gold);
            prop_assert!((0.0..=1.0).contains(&r.precision));
            prop_assert!((0.0..=1.0).contains(&r.recall));
            prop_assert!((0.0..=1.0).contains(&r.f1));
            prop_assert!(r.tp <= r.predicted_total);
            prop_assert!(r.tp <= r.gold_total + r.partial); // tp bounded
            prop_assert_eq!(r.tp + r.fp, r.predicted_total);
            prop_assert_eq!(r.correct + r.partial + r.incorrect + r.missing, r.gold_total);
        }

        #[test]
        fn f1_is_harmonic_mean(
            gold_phrases in prop::collection::vec("[a-c]{1,2}", 1..6),
            pred_phrases in prop::collection::vec("[a-c]{1,2}", 1..6),
        ) {
            let gold: Vec<Annotation> =
                gold_phrases.iter().map(|p| ann("d", "c", p)).collect();
            let preds: Vec<Annotation> =
                pred_phrases.iter().map(|p| ann("d", "c", p)).collect();
            let r = evaluate(&preds, &gold);
            if r.precision + r.recall > 0.0 {
                let expect = 2.0 * r.precision * r.recall / (r.precision + r.recall);
                prop_assert!((r.f1 - expect).abs() < 1e-12);
            } else {
                prop_assert_eq!(r.f1, 0.0);
            }
        }

        #[test]
        fn identical_sets_score_one(phrases in prop::collection::vec("[a-e]{1,4}", 1..10)) {
            // Deduplicate: identical annotations would otherwise leave
            // surplus copies spurious.
            let mut unique = phrases.clone();
            unique.sort();
            unique.dedup();
            let set: Vec<Annotation> = unique.iter().map(|p| ann("d", "c", p)).collect();
            let r = evaluate(&set, &set);
            prop_assert_eq!(r.f1, 1.0);
        }
    }
}
