//! Prediction–gold alignment.

use thor_text::{is_stopword, normalize_phrase};

/// One annotation: a conceptualized phrase in a document. Both gold
/// annotations and system predictions use this shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Annotation {
    /// Source document id.
    pub doc_id: String,
    /// Concept label.
    pub concept: String,
    /// Entity phrase.
    pub phrase: String,
}

impl Annotation {
    /// Create an annotation; concept and phrase are normalized.
    pub fn new(doc_id: impl Into<String>, concept: &str, phrase: &str) -> Self {
        Self {
            doc_id: doc_id.into(),
            concept: concept.to_lowercase(),
            phrase: normalize_phrase(phrase),
        }
    }
}

/// SemEval match classes for one prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchClass {
    /// Exact boundary and type match.
    Correct,
    /// Boundary overlap, same type.
    Partial,
    /// Boundary overlap, wrong type.
    Incorrect,
    /// No gold counterpart.
    Spurious,
}

/// Do two normalized phrases overlap? True when they share a
/// non-stop-word word, or one is a substring of the other. This mirrors
/// the paper's 'main (vestibular) nerve' example: predicting only
/// 'vestibular' still counts as a partial hit.
pub fn phrases_overlap(a: &str, b: &str) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    if a == b || a.contains(b) || b.contains(a) {
        return true;
    }
    let words_b: std::collections::HashSet<&str> =
        b.split_whitespace().filter(|w| !is_stopword(w)).collect();
    a.split_whitespace()
        .filter(|w| !is_stopword(w))
        .any(|w| words_b.contains(w))
}

/// The alignment of one prediction, with the index of the gold
/// annotation it consumed (if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aligned {
    /// Index into the predictions slice.
    pub prediction: usize,
    /// Match class.
    pub class: MatchClass,
    /// Index into the gold slice, for non-spurious classes.
    pub gold: Option<usize>,
    /// Whether the aligned pair has byte-identical (normalized)
    /// boundaries — needed by the boundary-only SemEval schemas
    /// (`exact`, `partial`), where a wrong-type pair with exact
    /// boundaries still scores.
    pub boundary_exact: bool,
}

/// Align predictions to gold annotations.
///
/// Greedy, highest-quality-first: all exact (boundary+type) matches are
/// taken first, then partial same-type overlaps, then wrong-type
/// overlaps; each gold annotation is consumed at most once. Remaining
/// predictions are spurious; unconsumed gold annotations are the missing
/// set (returned as indices).
pub fn align(predictions: &[Annotation], gold: &[Annotation]) -> (Vec<Aligned>, Vec<usize>) {
    let mut gold_used = vec![false; gold.len()];
    let mut result: Vec<Option<Aligned>> = vec![None; predictions.len()];

    // Pass 1: exact matches.
    for (pi, p) in predictions.iter().enumerate() {
        for (gi, g) in gold.iter().enumerate() {
            if gold_used[gi] || result[pi].is_some() {
                continue;
            }
            if p.doc_id == g.doc_id && p.concept == g.concept && p.phrase == g.phrase {
                gold_used[gi] = true;
                result[pi] = Some(Aligned {
                    prediction: pi,
                    class: MatchClass::Correct,
                    gold: Some(gi),
                    boundary_exact: true,
                });
            }
        }
    }
    // Pass 2: partial same-type.
    for (pi, p) in predictions.iter().enumerate() {
        if result[pi].is_some() {
            continue;
        }
        for (gi, g) in gold.iter().enumerate() {
            if gold_used[gi] {
                continue;
            }
            if p.doc_id == g.doc_id
                && p.concept == g.concept
                && phrases_overlap(&p.phrase, &g.phrase)
            {
                gold_used[gi] = true;
                result[pi] = Some(Aligned {
                    prediction: pi,
                    class: MatchClass::Partial,
                    gold: Some(gi),
                    boundary_exact: p.phrase == g.phrase,
                });
                break;
            }
        }
    }
    // Pass 3: overlapping but wrong type.
    for (pi, p) in predictions.iter().enumerate() {
        if result[pi].is_some() {
            continue;
        }
        for (gi, g) in gold.iter().enumerate() {
            if gold_used[gi] {
                continue;
            }
            if p.doc_id == g.doc_id && phrases_overlap(&p.phrase, &g.phrase) {
                gold_used[gi] = true;
                result[pi] = Some(Aligned {
                    prediction: pi,
                    class: MatchClass::Incorrect,
                    gold: Some(gi),
                    boundary_exact: p.phrase == g.phrase,
                });
                break;
            }
        }
    }
    // Rest: spurious.
    let aligned: Vec<Aligned> = result
        .into_iter()
        .enumerate()
        .map(|(pi, a)| {
            a.unwrap_or(Aligned {
                prediction: pi,
                class: MatchClass::Spurious,
                gold: None,
                boundary_exact: false,
            })
        })
        .collect();
    let missing: Vec<usize> = gold_used
        .iter()
        .enumerate()
        .filter_map(|(gi, &used)| (!used).then_some(gi))
        .collect();
    (aligned, missing)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(doc: &str, concept: &str, phrase: &str) -> Annotation {
        Annotation::new(doc, concept, phrase)
    }

    #[test]
    fn overlap_rules() {
        assert!(phrases_overlap("vestibular", "main vestibular nerve"));
        assert!(phrases_overlap("brain tumor", "tumor"));
        assert!(phrases_overlap("hearing loss", "loss of hearing"));
        assert!(!phrases_overlap("brain", "lungs"));
        assert!(!phrases_overlap("", "lungs"));
        // Stop-word-only overlap doesn't count.
        assert!(!phrases_overlap("loss of balance", "shortness of breath"));
    }

    #[test]
    fn exact_match_preferred_over_partial() {
        let gold = vec![
            ann("d", "anatomy", "nerve"),
            ann("d", "anatomy", "vestibular nerve"),
        ];
        let preds = vec![ann("d", "anatomy", "vestibular nerve")];
        let (aligned, missing) = align(&preds, &gold);
        assert_eq!(aligned[0].class, MatchClass::Correct);
        assert_eq!(aligned[0].gold, Some(1));
        assert_eq!(missing, vec![0]);
    }

    #[test]
    fn partial_same_type() {
        let gold = vec![ann("d", "anatomy", "main vestibular nerve")];
        let preds = vec![ann("d", "anatomy", "vestibular")];
        let (aligned, missing) = align(&preds, &gold);
        assert_eq!(aligned[0].class, MatchClass::Partial);
        assert!(missing.is_empty());
    }

    #[test]
    fn wrong_type_overlap_is_incorrect() {
        let gold = vec![ann("d", "anatomy", "blood vessels")];
        let preds = vec![ann("d", "complication", "blood")];
        let (aligned, _) = align(&preds, &gold);
        assert_eq!(aligned[0].class, MatchClass::Incorrect);
    }

    #[test]
    fn spurious_and_missing() {
        let gold = vec![ann("d", "anatomy", "lungs")];
        let preds = vec![ann("d", "anatomy", "xyzzy")];
        let (aligned, missing) = align(&preds, &gold);
        assert_eq!(aligned[0].class, MatchClass::Spurious);
        assert_eq!(missing, vec![0]);
    }

    #[test]
    fn doc_boundaries_respected() {
        let gold = vec![ann("d1", "anatomy", "lungs")];
        let preds = vec![ann("d2", "anatomy", "lungs")];
        let (aligned, missing) = align(&preds, &gold);
        assert_eq!(aligned[0].class, MatchClass::Spurious);
        assert_eq!(missing.len(), 1);
    }

    #[test]
    fn each_gold_consumed_once() {
        let gold = vec![ann("d", "anatomy", "lungs")];
        let preds = vec![ann("d", "anatomy", "lungs"), ann("d", "anatomy", "lungs")];
        let (aligned, _) = align(&preds, &gold);
        assert_eq!(aligned[0].class, MatchClass::Correct);
        assert_eq!(aligned[1].class, MatchClass::Spurious);
    }
}
