//! The four SemEval-2013 evaluation schemas, as in `nervaluate`:
//!
//! | schema     | boundaries        | type        |
//! |------------|-------------------|-------------|
//! | `strict`   | exact             | must match  |
//! | `exact`    | exact             | ignored     |
//! | `partial`  | overlap ½-credit  | ignored     |
//! | `ent_type` | any overlap       | must match  |
//!
//! The headline metric of [`crate::metrics::evaluate`] corresponds to a
//! typed partial schema; this module provides the full breakdown for
//! completeness and for analyses that separate boundary errors from
//! labeling errors.

use crate::align::{align, Annotation, MatchClass};

/// Precision/recall/F1 triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prf {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1 score.
    pub f1: f64,
}

impl Prf {
    fn new(credit: f64, actual: f64, possible: f64) -> Self {
        let precision = if actual == 0.0 { 0.0 } else { credit / actual };
        let recall = if possible == 0.0 {
            0.0
        } else {
            credit / possible
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
        }
    }
}

/// Scores under all four schemas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemaScores {
    /// Exact boundary + correct type.
    pub strict: Prf,
    /// Exact boundary, type ignored.
    pub exact: Prf,
    /// Boundary overlap with half credit, type ignored.
    pub partial: Prf,
    /// Correct type with any overlap.
    pub ent_type: Prf,
}

/// Score `predictions` against `gold` under all four SemEval schemas.
pub fn schema_scores(predictions: &[Annotation], gold: &[Annotation]) -> SchemaScores {
    let (aligned, missing) = align(predictions, gold);
    let actual = predictions.len() as f64;
    let matched = aligned.iter().filter(|a| a.gold.is_some()).count();
    let possible = (matched + missing.len()) as f64;

    let mut strict = 0.0f64;
    let mut exact_b = 0.0f64;
    let mut partial = 0.0f64;
    let mut ent_type = 0.0f64;
    for a in &aligned {
        match a.class {
            MatchClass::Correct => {
                strict += 1.0;
                exact_b += 1.0;
                partial += 1.0;
                ent_type += 1.0;
            }
            MatchClass::Partial => {
                // Same type, overlapping boundary.
                if a.boundary_exact {
                    exact_b += 1.0;
                    partial += 1.0;
                } else {
                    partial += 0.5;
                }
                ent_type += 1.0;
            }
            MatchClass::Incorrect => {
                // Wrong type; boundary may still be exact.
                if a.boundary_exact {
                    exact_b += 1.0;
                    partial += 1.0;
                } else {
                    partial += 0.5;
                }
            }
            MatchClass::Spurious => {}
        }
    }

    SchemaScores {
        strict: Prf::new(strict, actual, possible),
        exact: Prf::new(exact_b, actual, possible),
        partial: Prf::new(partial, actual, possible),
        ent_type: Prf::new(ent_type, actual, possible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ann(doc: &str, concept: &str, phrase: &str) -> Annotation {
        Annotation::new(doc, concept, phrase)
    }

    #[test]
    fn perfect_predictions_score_one_everywhere() {
        let gold = vec![ann("d", "a", "lungs"), ann("d", "b", "heart")];
        let s = schema_scores(&gold, &gold);
        for prf in [s.strict, s.exact, s.partial, s.ent_type] {
            assert_eq!(prf.f1, 1.0);
        }
    }

    #[test]
    fn wrong_type_exact_boundary() {
        // Boundary schemas score; typed schemas don't.
        let gold = vec![ann("d", "anatomy", "blood vessels")];
        let preds = vec![ann("d", "complication", "blood vessels")];
        let s = schema_scores(&preds, &gold);
        assert_eq!(s.strict.f1, 0.0);
        assert_eq!(s.ent_type.f1, 0.0);
        assert_eq!(s.exact.f1, 1.0);
        assert_eq!(s.partial.f1, 1.0);
    }

    #[test]
    fn right_type_partial_boundary() {
        // Typed overlap scores fully on ent_type, half on partial,
        // zero on the exact-boundary schemas.
        let gold = vec![ann("d", "anatomy", "main vestibular nerve")];
        let preds = vec![ann("d", "anatomy", "vestibular")];
        let s = schema_scores(&preds, &gold);
        assert_eq!(s.strict.f1, 0.0);
        assert_eq!(s.exact.f1, 0.0);
        assert_eq!(s.ent_type.f1, 1.0);
        assert!((s.partial.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn schema_ordering_invariant_concrete() {
        let gold = vec![
            ann("d", "a", "one two"),
            ann("d", "a", "three"),
            ann("d", "b", "four"),
        ];
        let preds = vec![
            ann("d", "a", "one two"), // strict
            ann("d", "a", "two"),     // would partial-overlap (consumed above? no, different gold)
            ann("d", "b", "three"),   // wrong type, exact boundary
            ann("d", "a", "nonsense"),
        ];
        let s = schema_scores(&preds, &gold);
        assert!(s.strict.f1 <= s.exact.f1 + 1e-12);
        assert!(s.exact.f1 <= s.partial.f1 + 1e-12);
        assert!(s.strict.f1 <= s.ent_type.f1 + 1e-12);
    }

    proptest! {
        /// strict ≤ exact ≤ partial, and strict ≤ ent_type, always.
        #[test]
        fn schema_dominance(
            gold_items in prop::collection::vec(("[ab]", "[a-c]{1,2}( [a-c]{1,2})?"), 0..8),
            pred_items in prop::collection::vec(("[ab]", "[a-c]{1,2}( [a-c]{1,2})?"), 0..8),
        ) {
            let gold: Vec<Annotation> =
                gold_items.iter().map(|(c, p)| ann("d", c, p)).collect();
            let preds: Vec<Annotation> =
                pred_items.iter().map(|(c, p)| ann("d", c, p)).collect();
            let s = schema_scores(&preds, &gold);
            prop_assert!(s.strict.f1 <= s.exact.f1 + 1e-9);
            prop_assert!(s.exact.f1 <= s.partial.f1 + 1e-9);
            prop_assert!(s.strict.f1 <= s.ent_type.f1 + 1e-9);
            for prf in [s.strict, s.exact, s.partial, s.ent_type] {
                prop_assert!((0.0..=1.0).contains(&prf.precision));
                prop_assert!((0.0..=1.0).contains(&prf.recall));
            }
        }
    }
}
