#![warn(missing_docs)]
//! # thor-eval
//!
//! Evaluation machinery for the entity-centric slot-filling task.
//!
//! The paper scores systems with the SemEval-2013 Task 9 metric (as
//! implemented by `nervaluate`): predictions are aligned to ground-truth
//! entities and classified as **COR**rect (boundary and type match),
//! **PAR**tial (boundary overlap, same type), **INC**orrect (boundary
//! overlap, wrong type), **SPU**rious (no gold counterpart), with
//! unmatched gold entities counted **MIS**sing. Precision and recall
//! award partial matches half credit:
//!
//! ```text
//! P = (COR + 0.5·PAR) / (COR + INC + PAR + SPU)
//! R = (COR + 0.5·PAR) / (COR + INC + PAR + MIS)
//! ```
//!
//! The crate also computes the *sensitivity* score of Table VIII
//! (recognized gold entities per concept, counting partial hits), the
//! raw TP/FP/FN counts of Tables VI/VII, and precision–recall curve
//! points for Fig. 5.

pub mod align;
pub mod curve;
pub mod metrics;
pub mod schemas;

pub use align::{Annotation, MatchClass};
pub use curve::{PrCurve, PrPoint};
pub use metrics::{evaluate, ConceptReport, EvalReport};
pub use schemas::{schema_scores, Prf, SchemaScores};
