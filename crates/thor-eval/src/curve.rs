//! Precision–recall curve points (Fig. 5).

/// One labeled point on a precision–recall plot.
#[derive(Debug, Clone, PartialEq)]
pub struct PrPoint {
    /// Point label (e.g. `THOR (τ=0.7)` or a competitor name).
    pub label: String,
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
}

/// A collection of PR points with dominance queries.
#[derive(Debug, Clone, Default)]
pub struct PrCurve {
    points: Vec<PrPoint>,
}

impl PrCurve {
    /// Empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a point.
    pub fn push(&mut self, label: impl Into<String>, precision: f64, recall: f64) {
        self.points.push(PrPoint {
            label: label.into(),
            precision,
            recall,
        });
    }

    /// All points, in insertion order.
    pub fn points(&self) -> &[PrPoint] {
        &self.points
    }

    /// Does point `a` dominate point `b` (≥ on both axes, > on one)?
    pub fn dominates(a: &PrPoint, b: &PrPoint) -> bool {
        a.precision >= b.precision
            && a.recall >= b.recall
            && (a.precision > b.precision || a.recall > b.recall)
    }

    /// Labels of points not dominated by any other point (the Pareto
    /// frontier of Fig. 5).
    pub fn pareto_front(&self) -> Vec<&str> {
        self.points
            .iter()
            .filter(|p| !self.points.iter().any(|q| Self::dominates(q, p)))
            .map(|p| p.label.as_str())
            .collect()
    }

    /// Render as a fixed-width text table (for experiment binaries).
    pub fn to_table(&self) -> String {
        let mut out = format!("{:<24} {:>9} {:>9}\n", "series", "P", "R");
        for p in &self.points {
            out.push_str(&format!(
                "{:<24} {:>9.3} {:>9.3}\n",
                p.label, p.precision, p.recall
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_front_excludes_dominated() {
        let mut c = PrCurve::new();
        c.push("good", 0.6, 0.6);
        c.push("dominated", 0.5, 0.5);
        c.push("high-p", 0.9, 0.2);
        c.push("high-r", 0.2, 0.9);
        let front = c.pareto_front();
        assert!(front.contains(&"good"));
        assert!(front.contains(&"high-p"));
        assert!(front.contains(&"high-r"));
        assert!(!front.contains(&"dominated"));
    }

    #[test]
    fn equal_points_both_on_front() {
        let mut c = PrCurve::new();
        c.push("a", 0.5, 0.5);
        c.push("b", 0.5, 0.5);
        let front = c.pareto_front();
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn table_rendering() {
        let mut c = PrCurve::new();
        c.push("THOR (tau=0.7)", 0.49, 0.64);
        let t = c.to_table();
        assert!(t.contains("THOR"));
        assert!(t.contains("0.490"));
    }
}
